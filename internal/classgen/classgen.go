// Package classgen provides a programmatic builder for Java classfiles:
// a constant-pool-interning class builder and a method assembler with
// labels, automatic max_stack/max_locals computation, and convenience
// emitters that choose optimal encodings (iconst_n vs bipush vs sipush vs
// ldc, load_n vs load).
//
// The DVM uses it to synthesize the benchmark workloads of the paper's
// evaluation (Figure 5's applications and Figure 11's applets) as real,
// runnable classfiles, and throughout the test suite to construct inputs
// for the verifier, rewriter, and interpreter.
package classgen

import (
	"fmt"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// ClassBuilder accumulates a class under construction.
type ClassBuilder struct {
	cf      *classfile.ClassFile
	methods []*MethodBuilder
	err     error
}

// NewClass starts a public class with the given internal name and
// superclass ("java/lang/Object" for most classes).
func NewClass(name, super string) *ClassBuilder {
	pool := classfile.NewConstPool()
	cf := &classfile.ClassFile{
		MinorVersion: 3,
		MajorVersion: 45, // JDK 1.0.2-compatible version, per the paper's era
		Pool:         pool,
		AccessFlags:  classfile.AccPublic | classfile.AccSuper,
	}
	cf.ThisClass = pool.AddClass(name)
	if super != "" {
		cf.SuperClass = pool.AddClass(super)
	}
	return &ClassBuilder{cf: cf}
}

// SetFlags replaces the class access flags.
func (b *ClassBuilder) SetFlags(flags uint16) *ClassBuilder {
	b.cf.AccessFlags = flags
	return b
}

// AddInterface declares that the class implements the named interface.
func (b *ClassBuilder) AddInterface(name string) *ClassBuilder {
	b.cf.Interfaces = append(b.cf.Interfaces, b.cf.Pool.AddClass(name))
	return b
}

// Pool exposes the constant pool for direct interning.
func (b *ClassBuilder) Pool() *classfile.ConstPool { return b.cf.Pool }

// Name returns the internal name of the class under construction.
func (b *ClassBuilder) Name() string { return b.cf.Name() }

// Field adds a field with the given flags, name, and type descriptor.
func (b *ClassBuilder) Field(flags uint16, name, desc string) *ClassBuilder {
	b.cf.Fields = append(b.cf.Fields, &classfile.Member{
		AccessFlags:     flags,
		NameIndex:       b.cf.Pool.AddUtf8(name),
		DescriptorIndex: b.cf.Pool.AddUtf8(desc),
	})
	return b
}

// ConstField adds a static final field with a ConstantValue attribute.
func (b *ClassBuilder) ConstField(name, desc string, constIdx uint16) *ClassBuilder {
	m := &classfile.Member{
		AccessFlags:     classfile.AccPublic | classfile.AccStatic | classfile.AccFinal,
		NameIndex:       b.cf.Pool.AddUtf8(name),
		DescriptorIndex: b.cf.Pool.AddUtf8(desc),
	}
	payload := []byte{byte(constIdx >> 8), byte(constIdx)}
	m.Attributes = append(m.Attributes, &classfile.Attribute{
		NameIndex: b.cf.Pool.AddUtf8(classfile.AttrConstantValue),
		Info:      payload,
	})
	b.cf.Fields = append(b.cf.Fields, m)
	return b
}

// Method starts a method body. Abstract/native methods should instead use
// AbstractMethod.
func (b *ClassBuilder) Method(flags uint16, name, desc string) *MethodBuilder {
	mt, err := bytecode.ParseMethodType(desc)
	if err != nil && b.err == nil {
		b.err = fmt.Errorf("classgen: method %s%s: %v", name, desc, err)
	}
	locals := mt.ParamSlots()
	if flags&classfile.AccStatic == 0 {
		locals++ // receiver
	}
	mb := &MethodBuilder{
		class:     b,
		flags:     flags,
		name:      name,
		desc:      desc,
		maxLocals: locals,
	}
	b.methods = append(b.methods, mb)
	return mb
}

// AbstractMethod declares a method without a body.
func (b *ClassBuilder) AbstractMethod(flags uint16, name, desc string) *ClassBuilder {
	b.cf.Methods = append(b.cf.Methods, &classfile.Member{
		AccessFlags:     flags,
		NameIndex:       b.cf.Pool.AddUtf8(name),
		DescriptorIndex: b.cf.Pool.AddUtf8(desc),
	})
	return b
}

// DefaultInit emits the canonical no-argument constructor that invokes
// the superclass constructor.
func (b *ClassBuilder) DefaultInit() *ClassBuilder {
	super := b.cf.SuperName()
	if super == "" {
		super = "java/lang/Object"
	}
	m := b.Method(classfile.AccPublic, "<init>", "()V")
	m.ALoad(0)
	m.InvokeSpecial(super, "<init>", "()V")
	m.Return()
	return b
}

// Build finalizes every method body (resolving labels, computing
// max_stack/max_locals, encoding Code attributes) and returns the
// finished classfile. Build may be called again after adding more
// methods; already-finalized bodies are not re-emitted.
func (b *ClassBuilder) Build() (*classfile.ClassFile, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, mb := range b.methods {
		if mb.done {
			continue
		}
		if err := mb.finish(); err != nil {
			return nil, fmt.Errorf("classgen: %s.%s%s: %w", b.cf.Name(), mb.name, mb.desc, err)
		}
		mb.done = true
	}
	return b.cf, nil
}

// MustBuild is Build for tests and generators with static inputs; it
// panics on error.
func (b *ClassBuilder) MustBuild() *classfile.ClassFile {
	cf, err := b.Build()
	if err != nil {
		panic(err)
	}
	return cf
}

// BuildBytes builds the class and serializes it.
func (b *ClassBuilder) BuildBytes() ([]byte, error) {
	cf, err := b.Build()
	if err != nil {
		return nil, err
	}
	return cf.Encode()
}
