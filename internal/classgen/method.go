package classgen

import (
	"fmt"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// Label identifies a forward- or backward-referenced position in a method
// body under construction.
type Label int

// MethodBuilder assembles one method body. Emitters append instructions;
// labels mark join points; Build on the owning ClassBuilder resolves
// everything and computes max_stack / max_locals.
type MethodBuilder struct {
	class *ClassBuilder
	flags uint16
	name  string
	desc  string

	insts     []bytecode.Inst
	usesLabel []bool // parallel to insts: Target/Switch hold Label values
	marks     []int  // label -> instruction index (-1 = unbound)
	handlers  []handlerRec
	maxLocals int
	err       error
	done      bool
}

type handlerRec struct {
	start, end, handler Label
	catchType           string // "" for catch-all
}

func (m *MethodBuilder) fail(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf(format, args...)
	}
}

// NewLabel allocates an unbound label.
func (m *MethodBuilder) NewLabel() Label {
	m.marks = append(m.marks, -1)
	return Label(len(m.marks) - 1)
}

// Mark binds the label to the position of the next emitted instruction.
func (m *MethodBuilder) Mark(l Label) {
	if int(l) >= len(m.marks) {
		m.fail("mark of unallocated label %d", l)
		return
	}
	if m.marks[l] != -1 {
		m.fail("label %d marked twice", l)
		return
	}
	m.marks[l] = len(m.insts)
}

// Here allocates a label bound at the current position (for back edges).
func (m *MethodBuilder) Here() Label {
	l := m.NewLabel()
	m.Mark(l)
	return l
}

func (m *MethodBuilder) emit(in bytecode.Inst) {
	in.Target = -1
	m.insts = append(m.insts, in)
	m.usesLabel = append(m.usesLabel, false)
}

func (m *MethodBuilder) emitBranch(op bytecode.Opcode, l Label) {
	m.insts = append(m.insts, bytecode.Inst{Op: op, Target: int(l)})
	m.usesLabel = append(m.usesLabel, true)
}

func (m *MethodBuilder) touchLocal(idx uint16, slots int) {
	if n := int(idx) + slots; n > m.maxLocals {
		m.maxLocals = n
	}
}

// Raw emits an arbitrary pre-built instruction (no label resolution on
// its Target). Escape hatch for opcodes without a dedicated emitter.
func (m *MethodBuilder) Raw(in bytecode.Inst) *MethodBuilder {
	if in.Op.IsSwitch() || in.Op.IsBranch() {
		m.fail("Raw cannot emit control transfer %s; use Branch/Goto/switch builders", in.Op.Name())
		return m
	}
	switch in.Op.OperandKind() {
	case bytecode.KindLocal:
		slots := 1
		switch in.Op {
		case bytecode.Lload, bytecode.Dload, bytecode.Lstore, bytecode.Dstore:
			slots = 2
		}
		m.touchLocal(in.Index, slots)
	case bytecode.KindIinc:
		m.touchLocal(in.Index, 1)
	default:
		// Short-form load/store opcodes imply their local index.
		if idx, slots, ok := impliedLocal(in.Op); ok {
			m.touchLocal(idx, slots)
		}
	}
	m.emit(in)
	return m
}

// impliedLocal reports the local variable slot touched by the short-form
// load/store opcodes (iload_0 ... astore_3).
func impliedLocal(op bytecode.Opcode) (idx uint16, slots int, ok bool) {
	families := []struct {
		base  bytecode.Opcode
		slots int
	}{
		{bytecode.Iload0, 1}, {bytecode.Lload0, 2}, {bytecode.Fload0, 1},
		{bytecode.Dload0, 2}, {bytecode.Aload0, 1},
		{bytecode.Istore0, 1}, {bytecode.Lstore0, 2}, {bytecode.Fstore0, 1},
		{bytecode.Dstore0, 2}, {bytecode.Astore0, 1},
	}
	for _, f := range families {
		if op >= f.base && op <= f.base+3 {
			return uint16(op - f.base), f.slots, true
		}
	}
	return 0, 0, false
}

// Inst emits a zero-operand instruction.
func (m *MethodBuilder) Inst(op bytecode.Opcode) *MethodBuilder {
	m.emit(bytecode.Inst{Op: op})
	return m
}

// Nop, stack and arithmetic conveniences.
func (m *MethodBuilder) Nop() *MethodBuilder    { return m.Inst(bytecode.Nop) }
func (m *MethodBuilder) Pop() *MethodBuilder    { return m.Inst(bytecode.Pop) }
func (m *MethodBuilder) Dup() *MethodBuilder    { return m.Inst(bytecode.Dup) }
func (m *MethodBuilder) Swap() *MethodBuilder   { return m.Inst(bytecode.Swap) }
func (m *MethodBuilder) IAdd() *MethodBuilder   { return m.Inst(bytecode.Iadd) }
func (m *MethodBuilder) ISub() *MethodBuilder   { return m.Inst(bytecode.Isub) }
func (m *MethodBuilder) IMul() *MethodBuilder   { return m.Inst(bytecode.Imul) }
func (m *MethodBuilder) IDiv() *MethodBuilder   { return m.Inst(bytecode.Idiv) }
func (m *MethodBuilder) IRem() *MethodBuilder   { return m.Inst(bytecode.Irem) }
func (m *MethodBuilder) Return() *MethodBuilder { return m.Inst(bytecode.Return) }
func (m *MethodBuilder) IReturn() *MethodBuilder {
	return m.Inst(bytecode.Ireturn)
}
func (m *MethodBuilder) AReturn() *MethodBuilder {
	return m.Inst(bytecode.Areturn)
}
func (m *MethodBuilder) LReturn() *MethodBuilder {
	return m.Inst(bytecode.Lreturn)
}
func (m *MethodBuilder) AThrow() *MethodBuilder { return m.Inst(bytecode.Athrow) }
func (m *MethodBuilder) ArrayLength() *MethodBuilder {
	return m.Inst(bytecode.Arraylength)
}
func (m *MethodBuilder) AConstNull() *MethodBuilder {
	return m.Inst(bytecode.AconstNull)
}

// IConst pushes an int constant using the smallest encoding.
func (m *MethodBuilder) IConst(v int32) *MethodBuilder {
	switch {
	case v >= -1 && v <= 5:
		m.emit(bytecode.Inst{Op: bytecode.Opcode(int32(bytecode.Iconst0) + v)})
	case v >= -128 && v <= 127:
		m.emit(bytecode.Inst{Op: bytecode.Bipush, Const: v})
	case v >= -32768 && v <= 32767:
		m.emit(bytecode.Inst{Op: bytecode.Sipush, Const: v})
	default:
		idx := m.class.Pool().AddInteger(v)
		m.emit(bytecode.Inst{Op: bytecode.Ldc, Index: idx})
	}
	return m
}

// LConst pushes a long constant.
func (m *MethodBuilder) LConst(v int64) *MethodBuilder {
	switch v {
	case 0:
		m.emit(bytecode.Inst{Op: bytecode.Lconst0})
	case 1:
		m.emit(bytecode.Inst{Op: bytecode.Lconst1})
	default:
		idx := m.class.Pool().AddLong(v)
		m.emit(bytecode.Inst{Op: bytecode.Ldc2W, Index: idx})
	}
	return m
}

// FConst pushes a float constant.
func (m *MethodBuilder) FConst(v float32) *MethodBuilder {
	switch v {
	case 0:
		m.emit(bytecode.Inst{Op: bytecode.Fconst0})
	case 1:
		m.emit(bytecode.Inst{Op: bytecode.Fconst1})
	case 2:
		m.emit(bytecode.Inst{Op: bytecode.Fconst2})
	default:
		idx := m.class.Pool().AddFloat(v)
		m.emit(bytecode.Inst{Op: bytecode.Ldc, Index: idx})
	}
	return m
}

// DConst pushes a double constant.
func (m *MethodBuilder) DConst(v float64) *MethodBuilder {
	switch v {
	case 0:
		m.emit(bytecode.Inst{Op: bytecode.Dconst0})
	case 1:
		m.emit(bytecode.Inst{Op: bytecode.Dconst1})
	default:
		idx := m.class.Pool().AddDouble(v)
		m.emit(bytecode.Inst{Op: bytecode.Ldc2W, Index: idx})
	}
	return m
}

// LdcString pushes a String constant.
func (m *MethodBuilder) LdcString(s string) *MethodBuilder {
	idx := m.class.Pool().AddString(s)
	m.emit(bytecode.Inst{Op: bytecode.Ldc, Index: idx})
	return m
}

func (m *MethodBuilder) load(base, short0 bytecode.Opcode, idx uint16, slots int) {
	m.touchLocal(idx, slots)
	if idx < 4 {
		m.emit(bytecode.Inst{Op: short0 + bytecode.Opcode(idx)})
		return
	}
	m.emit(bytecode.Inst{Op: base, Index: idx})
}

// ILoad/LLoad/FLoad/DLoad/ALoad load a local variable.
func (m *MethodBuilder) ILoad(idx uint16) *MethodBuilder {
	m.load(bytecode.Iload, bytecode.Iload0, idx, 1)
	return m
}
func (m *MethodBuilder) LLoad(idx uint16) *MethodBuilder {
	m.load(bytecode.Lload, bytecode.Lload0, idx, 2)
	return m
}
func (m *MethodBuilder) FLoad(idx uint16) *MethodBuilder {
	m.load(bytecode.Fload, bytecode.Fload0, idx, 1)
	return m
}
func (m *MethodBuilder) DLoad(idx uint16) *MethodBuilder {
	m.load(bytecode.Dload, bytecode.Dload0, idx, 2)
	return m
}
func (m *MethodBuilder) ALoad(idx uint16) *MethodBuilder {
	m.load(bytecode.Aload, bytecode.Aload0, idx, 1)
	return m
}

// IStore/LStore/FStore/DStore/AStore store into a local variable.
func (m *MethodBuilder) IStore(idx uint16) *MethodBuilder {
	m.load(bytecode.Istore, bytecode.Istore0, idx, 1)
	return m
}
func (m *MethodBuilder) LStore(idx uint16) *MethodBuilder {
	m.load(bytecode.Lstore, bytecode.Lstore0, idx, 2)
	return m
}
func (m *MethodBuilder) FStore(idx uint16) *MethodBuilder {
	m.load(bytecode.Fstore, bytecode.Fstore0, idx, 1)
	return m
}
func (m *MethodBuilder) DStore(idx uint16) *MethodBuilder {
	m.load(bytecode.Dstore, bytecode.Dstore0, idx, 2)
	return m
}
func (m *MethodBuilder) AStore(idx uint16) *MethodBuilder {
	m.load(bytecode.Astore, bytecode.Astore0, idx, 1)
	return m
}

// IInc increments local idx by delta.
func (m *MethodBuilder) IInc(idx uint16, delta int32) *MethodBuilder {
	m.touchLocal(idx, 1)
	m.emit(bytecode.Inst{Op: bytecode.Iinc, Index: idx, Const: delta})
	return m
}

// Branch emits a conditional or unconditional branch to a label.
func (m *MethodBuilder) Branch(op bytecode.Opcode, l Label) *MethodBuilder {
	if !op.IsBranch() {
		m.fail("Branch with non-branch opcode %s", op.Name())
		return m
	}
	m.emitBranch(op, l)
	return m
}

// Goto emits an unconditional jump to a label.
func (m *MethodBuilder) Goto(l Label) *MethodBuilder {
	m.emitBranch(bytecode.Goto, l)
	return m
}

// TableSwitch emits a tableswitch covering keys low..low+len(arms)-1.
func (m *MethodBuilder) TableSwitch(low int32, def Label, arms ...Label) *MethodBuilder {
	sw := &bytecode.Switch{Low: low, Default: int(def)}
	for _, a := range arms {
		sw.Targets = append(sw.Targets, int(a))
	}
	m.insts = append(m.insts, bytecode.Inst{Op: bytecode.Tableswitch, Switch: sw})
	m.usesLabel = append(m.usesLabel, true)
	return m
}

// LookupSwitch emits a lookupswitch with the given sorted keys.
func (m *MethodBuilder) LookupSwitch(def Label, keys []int32, arms []Label) *MethodBuilder {
	if len(keys) != len(arms) {
		m.fail("LookupSwitch keys/arms length mismatch")
		return m
	}
	sw := &bytecode.Switch{Default: int(def), Keys: append([]int32(nil), keys...)}
	for _, a := range arms {
		sw.Targets = append(sw.Targets, int(a))
	}
	m.insts = append(m.insts, bytecode.Inst{Op: bytecode.Lookupswitch, Switch: sw})
	m.usesLabel = append(m.usesLabel, true)
	return m
}

// GetStatic/PutStatic/GetField/PutField emit field accesses.
func (m *MethodBuilder) GetStatic(class, name, desc string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Getstatic, Index: m.class.Pool().AddFieldref(class, name, desc)})
	return m
}
func (m *MethodBuilder) PutStatic(class, name, desc string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Putstatic, Index: m.class.Pool().AddFieldref(class, name, desc)})
	return m
}
func (m *MethodBuilder) GetField(class, name, desc string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Getfield, Index: m.class.Pool().AddFieldref(class, name, desc)})
	return m
}
func (m *MethodBuilder) PutField(class, name, desc string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Putfield, Index: m.class.Pool().AddFieldref(class, name, desc)})
	return m
}

// InvokeVirtual/InvokeSpecial/InvokeStatic/InvokeInterface emit calls.
func (m *MethodBuilder) InvokeVirtual(class, name, desc string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Invokevirtual, Index: m.class.Pool().AddMethodref(class, name, desc)})
	return m
}
func (m *MethodBuilder) InvokeSpecial(class, name, desc string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Invokespecial, Index: m.class.Pool().AddMethodref(class, name, desc)})
	return m
}
func (m *MethodBuilder) InvokeStatic(class, name, desc string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Invokestatic, Index: m.class.Pool().AddMethodref(class, name, desc)})
	return m
}
func (m *MethodBuilder) InvokeInterface(class, name, desc string) *MethodBuilder {
	mt, err := bytecode.ParseMethodType(desc)
	if err != nil {
		m.fail("InvokeInterface %s.%s%s: %v", class, name, desc, err)
		return m
	}
	m.emit(bytecode.Inst{
		Op:    bytecode.Invokeinterface,
		Index: m.class.Pool().AddInterfaceMethodref(class, name, desc),
		Count: uint8(mt.ParamSlots() + 1),
	})
	return m
}

// New emits object allocation (without constructor call).
func (m *MethodBuilder) New(class string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.New, Index: m.class.Pool().AddClass(class)})
	return m
}

// NewObject emits new + dup + <init> invocation for a no-extra-argument
// pattern: callers push constructor arguments between NewDup and
// InvokeSpecial themselves when needed.
func (m *MethodBuilder) NewDup(class string) *MethodBuilder {
	m.New(class)
	m.Dup()
	return m
}

// NewArray emits a primitive array allocation.
func (m *MethodBuilder) NewArray(atype uint8) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Newarray, ArrayType: atype})
	return m
}

// ANewArray emits a reference array allocation.
func (m *MethodBuilder) ANewArray(class string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Anewarray, Index: m.class.Pool().AddClass(class)})
	return m
}

// CheckCast / InstanceOf emit type tests.
func (m *MethodBuilder) CheckCast(class string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Checkcast, Index: m.class.Pool().AddClass(class)})
	return m
}
func (m *MethodBuilder) InstanceOf(class string) *MethodBuilder {
	m.emit(bytecode.Inst{Op: bytecode.Instanceof, Index: m.class.Pool().AddClass(class)})
	return m
}

// Handler registers an exception handler over the region [start, end)
// with the handler entry at h; catchType "" catches everything.
func (m *MethodBuilder) Handler(start, end, h Label, catchType string) *MethodBuilder {
	m.handlers = append(m.handlers, handlerRec{start: start, end: end, handler: h, catchType: catchType})
	return m
}

// finish resolves labels, encodes the body, computes max_stack, and
// installs the method into the class.
func (m *MethodBuilder) finish() error {
	if m.err != nil {
		return m.err
	}
	if len(m.insts) == 0 {
		return fmt.Errorf("empty method body")
	}
	// resolveEnd additionally accepts a label bound exactly at the end of
	// the code (legal only as an exception-handler range end).
	resolveEnd := func(l int) (int, error) {
		if l < 0 || l >= len(m.marks) {
			return 0, fmt.Errorf("reference to unallocated label %d", l)
		}
		idx := m.marks[l]
		if idx < 0 {
			return 0, fmt.Errorf("reference to unbound label %d", l)
		}
		if idx > len(m.insts) {
			return 0, fmt.Errorf("label %d bound past end of code", l)
		}
		return idx, nil
	}
	resolve := func(l int) (int, error) {
		idx, err := resolveEnd(l)
		if err != nil {
			return 0, err
		}
		if idx >= len(m.insts) {
			return 0, fmt.Errorf("label %d bound past end of code", l)
		}
		return idx, nil
	}
	insts := make([]bytecode.Inst, len(m.insts))
	copy(insts, m.insts)
	for i := range insts {
		if !m.usesLabel[i] {
			continue
		}
		in := &insts[i]
		if in.Op.IsBranch() {
			idx, err := resolve(in.Target)
			if err != nil {
				return err
			}
			in.Target = idx
		} else if in.Op.IsSwitch() {
			sw := *in.Switch
			idx, err := resolve(sw.Default)
			if err != nil {
				return err
			}
			sw.Default = idx
			sw.Targets = append([]int(nil), in.Switch.Targets...)
			for k, t := range sw.Targets {
				idx, err := resolve(t)
				if err != nil {
					return err
				}
				sw.Targets[k] = idx
			}
			in.Switch = &sw
		}
	}

	var handlerStarts []int
	type rhandler struct{ s, e, h int }
	rhandlers := make([]rhandler, 0, len(m.handlers))
	for _, h := range m.handlers {
		s, err := resolve(int(h.start))
		if err != nil {
			return err
		}
		e, err := resolveEnd(int(h.end))
		if err != nil {
			return err
		}
		hh, err := resolve(int(h.handler))
		if err != nil {
			return err
		}
		rhandlers = append(rhandlers, rhandler{s, e, hh})
		handlerStarts = append(handlerStarts, hh)
	}

	code, pcs, err := bytecode.Encode(insts)
	if err != nil {
		return err
	}
	maxStack, err := bytecode.MaxStack(insts, m.class.Pool(), handlerStarts)
	if err != nil {
		return err
	}
	codeAttr := &classfile.Code{
		MaxStack:  uint16(maxStack),
		MaxLocals: uint16(m.maxLocals),
		Bytecode:  code,
	}
	for i, h := range rhandlers {
		var catchIdx uint16
		if m.handlers[i].catchType != "" {
			catchIdx = m.class.Pool().AddClass(m.handlers[i].catchType)
		}
		// The protected range is [startPC, endPC): the end label marks the
		// first instruction no longer covered (or the end of the code).
		endPC := uint16(len(code))
		if h.e < len(pcs) {
			endPC = uint16(pcs[h.e])
		}
		codeAttr.Handlers = append(codeAttr.Handlers, classfile.ExceptionHandler{
			StartPC:   uint16(pcs[h.s]),
			EndPC:     endPC,
			HandlerPC: uint16(pcs[h.h]),
			CatchType: catchIdx,
		})
	}
	member := &classfile.Member{
		AccessFlags:     m.flags,
		NameIndex:       m.class.Pool().AddUtf8(m.name),
		DescriptorIndex: m.class.Pool().AddUtf8(m.desc),
	}
	if err := m.class.cf.SetCode(member, codeAttr); err != nil {
		return err
	}
	m.class.cf.Methods = append(m.class.cf.Methods, member)
	return nil
}
