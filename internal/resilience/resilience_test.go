package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func testBreaker(th int, cd time.Duration, c *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{Threshold: th, Cooldown: cd, Now: c.now})
}

// TestBreakerTransitions drives the full closed -> open -> half-open ->
// closed cycle, plus the half-open -> open failure path, table-driven
// over a scripted sequence of events.
func TestBreakerTransitions(t *testing.T) {
	type step struct {
		do   string // "fail", "ok", "advance", "allow-ok", "allow-open"
		want BreakerState
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"closed stays closed under sparse failures", []step{
			{"fail", Closed}, {"fail", Closed}, {"ok", Closed}, {"fail", Closed}, {"fail", Closed},
		}},
		{"threshold consecutive failures trip open", []step{
			{"fail", Closed}, {"fail", Closed}, {"fail", Open}, {"allow-open", Open},
		}},
		{"open admits probe after cooldown, success closes", []step{
			{"fail", Closed}, {"fail", Closed}, {"fail", Open},
			{"advance", HalfOpen}, {"allow-ok", HalfOpen}, {"ok", Closed}, {"allow-ok", Closed},
		}},
		{"half-open probe failure re-opens", []step{
			{"fail", Closed}, {"fail", Closed}, {"fail", Open},
			{"advance", HalfOpen}, {"allow-ok", HalfOpen}, {"fail", Open}, {"allow-open", Open},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			b := testBreaker(3, time.Minute, clk)
			for i, s := range tc.steps {
				switch s.do {
				case "fail":
					_ = b.Allow() // consume an admission when one is available
					b.Failure()
				case "ok":
					b.Success()
				case "advance":
					clk.advance(time.Minute)
				case "allow-ok":
					if err := b.Allow(); err != nil {
						t.Fatalf("step %d: Allow() = %v, want nil", i, err)
					}
				case "allow-open":
					if err := b.Allow(); !errors.Is(err, ErrOpen) {
						t.Fatalf("step %d: Allow() = %v, want ErrOpen", i, err)
					}
				}
				if got := b.State(); got != s.want {
					t.Fatalf("step %d (%s): state = %v, want %v", i, s.do, got, s.want)
				}
			}
		})
	}
}

func TestBreakerCounts(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(2, time.Minute, clk)
	b.Failure()
	b.Failure() // trips
	clk.advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Failure() // half-open failure: second trip
	c := b.Counts()
	if c.Trips != 2 || c.Failures != 3 || c.State != "open" {
		t.Fatalf("counts = %+v, want 2 trips, 3 failures, open", c)
	}
	clk.advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Success()
	c = b.Counts()
	if c.State != "closed" || c.Successes != 1 {
		t.Fatalf("counts after recovery = %+v, want closed, 1 success", c)
	}
}

func TestBreakerHalfOpenLimitsProbes(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, HalfOpenProbes: 1, Now: clk.now})
	b.Failure()
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe allowed (err=%v), want ErrOpen", err)
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	var nilB *Breaker
	if err := nilB.Allow(); err != nil {
		t.Fatalf("nil breaker refused: %v", err)
	}
	nilB.Success()
	nilB.Failure()
	off := NewBreaker(BreakerConfig{Threshold: -1})
	for i := 0; i < 100; i++ {
		off.Failure()
	}
	if err := off.Allow(); err != nil {
		t.Fatalf("disabled breaker refused after failures: %v", err)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{Attempts: 6, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.5, Seed: 42}
	var prevNoJitter time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := p.Backoff(attempt)
		d2 := p.Backoff(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		base := 10 * time.Millisecond << (attempt - 1)
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d1 < base || d1 > base+base/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d1, base, base+base/2)
		}
		if base > prevNoJitter {
			prevNoJitter = base
		}
	}
	// Different seeds give a different jitter sequence.
	q := p
	q.Seed = 43
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		if p.Backoff(attempt) != q.Backoff(attempt) {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical jitter sequences")
	}
}

func TestHopRetriesUntilSuccess(t *testing.T) {
	calls := 0
	h := Hop{Retry: RetryPolicy{Attempts: 4, Base: time.Microsecond, Jitter: 0}}
	err := h.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil after 3", err, calls)
	}
}

func TestHopPermanentStopsRetry(t *testing.T) {
	calls := 0
	sentinel := errors.New("not found")
	h := Hop{Retry: RetryPolicy{Attempts: 5, Base: time.Microsecond}}
	err := h.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestHopTimeoutSurfacesDeadline(t *testing.T) {
	h := Hop{Timeout: 5 * time.Millisecond, Retry: RetryPolicy{Attempts: 1}}
	err := h.Do(context.Background(), func(ctx context.Context) error {
		<-ctx.Done()
		return fmt.Errorf("upstream hung: %w", ctx.Err())
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestHopBreakerOpenFailsFast(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(1, time.Minute, clk)
	b.Failure() // trip
	calls := 0
	h := Hop{Breaker: b, Retry: RetryPolicy{Attempts: 5, Base: time.Microsecond}}
	err := h.Do(context.Background(), func(context.Context) error { calls++; return nil })
	if calls != 0 {
		t.Fatalf("open breaker let %d calls through", calls)
	}
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
}

func TestHopPermanentDoesNotTripBreaker(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(1, time.Minute, clk)
	h := Hop{Breaker: b, Retry: RetryPolicy{Attempts: 1}}
	_ = h.Do(context.Background(), func(context.Context) error {
		return Permanent(errors.New("404"))
	})
	if got := b.State(); got != Closed {
		t.Fatalf("breaker state after permanent error = %v, want closed", got)
	}
}

// TestHopCallerCancelDoesNotTripBreaker is the overload regression:
// clients abandoning in-flight calls (canceled parent contexts) must
// not count as upstream failures, or a burst of impatient clients
// trips the breaker and blacks out a healthy origin.
func TestHopCallerCancelDoesNotTripBreaker(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(2, time.Minute, clk)
	h := Hop{Breaker: b, Retry: RetryPolicy{Attempts: 1}}
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		err := h.Do(ctx, func(actx context.Context) error {
			cancel() // the caller walks away mid-call
			<-actx.Done()
			return actx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	}
	if got := b.State(); got != Closed {
		t.Fatalf("breaker state after 10 caller cancels = %v, want closed", got)
	}
	if c := b.Counts(); c.Failures != 0 {
		t.Fatalf("breaker failures after caller cancels = %d, want 0", c.Failures)
	}
	// Attempt-deadline expiry (the upstream being slow) still counts.
	slow := Hop{Breaker: b, Timeout: time.Millisecond, Retry: RetryPolicy{Attempts: 1}}
	for i := 0; i < 2; i++ {
		_ = slow.Do(context.Background(), func(actx context.Context) error {
			<-actx.Done()
			return actx.Err()
		})
	}
	if got := b.State(); got == Closed {
		t.Fatal("breaker still closed after repeated upstream timeouts")
	}
}

func TestHopParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := Hop{Retry: RetryPolicy{Attempts: 3, Base: time.Hour}}
	calls := 0
	err := h.Do(ctx, func(context.Context) error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if calls > 0 {
		t.Fatalf("cancelled ctx still ran op %d times", calls)
	}
}

// TestBreakerOnStateChange: the observer hook fires once per actual
// transition — not on repeated failures inside a state — and sees the
// full closed -> open -> half-open -> closed cycle in order. The
// cluster's failure detector hangs off this hook (a trip raises a
// membership suspicion), so spurious or missing notifications would
// surface as membership flapping.
func TestBreakerOnStateChange(t *testing.T) {
	clk := newFakeClock()
	type hop struct{ from, to BreakerState }
	var got []hop
	b := NewBreaker(BreakerConfig{
		Threshold: 2, Cooldown: time.Minute, Now: clk.now,
		OnStateChange: func(from, to BreakerState) { got = append(got, hop{from, to}) },
	})
	b.Failure()
	b.Failure() // trips
	b.Failure() // already open: no notification
	clk.advance(time.Minute)
	if err := b.Allow(); err != nil { // probe admission: open -> half-open
		t.Fatalf("Allow() after cooldown = %v", err)
	}
	b.Success() // half-open -> closed
	b.Success() // already closed: no notification
	want := []hop{{Closed, Open}, {Open, HalfOpen}, {HalfOpen, Closed}}
	if len(got) != len(want) {
		t.Fatalf("observed %d transitions %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %v -> %v, want %v -> %v", i, got[i].from, got[i].to, want[i].from, want[i].to)
		}
	}
}
