// Package resilience is the fault-tolerance layer threaded through every
// cross-service hop of the DVM: deadlines, retries with exponential
// backoff and deterministic jitter, and per-upstream circuit breakers.
//
// The paper moves VM services onto the network (§3), which makes a
// client's correctness and availability depend on remote verification,
// security, monitoring, and proxy servers that can stall, flap, or die.
// Every network hop in this repo therefore goes through a Hop: a
// per-attempt deadline, a bounded retry policy, and a circuit breaker
// that stops hammering (and stops waiting on) an upstream that is down.
//
// What happens *after* the hop fails is service-specific and lives with
// each service: verification and security fail closed (deny), monitoring
// and profiling fail open (drop and continue), the proxy serves stale
// cache entries (stale-if-error). See DESIGN.md "Failure semantics".
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dvm/internal/telemetry"
)

// ErrOpen is returned by a breaker that is refusing calls. Callers map
// it to their degradation path (503 Retry-After on the proxy, deny on
// the security manager, drop on the monitor).
var ErrOpen = errors.New("resilience: circuit open")

// permanentError marks an error that retrying cannot fix (e.g. a 404
// from the origin): Do returns it immediately and the breaker does not
// count it as an upstream failure.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so retry loops stop and breakers ignore it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryPolicy is exponential backoff with deterministic jitter:
// attempt n (1-based) sleeps Base*2^(n-1), capped at Max, with up to
// Jitter fraction added. Jitter is derived from (Seed, attempt) by a
// splitmix hash, so a given policy replays identically — chaos tests
// must be reproducible run-to-run.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retry; 0 means 1).
	Attempts int
	// Base is the first backoff delay (default 50ms when retrying).
	Base time.Duration
	// Max caps a single backoff delay (default 2s).
	Max time.Duration
	// Jitter in [0,1] is the fraction of the delay randomized (default 0.2).
	Jitter float64
	// Seed makes the jitter sequence deterministic.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	return p
}

// Backoff returns the delay before retry attempt+1, attempt being the
// 1-based attempt that just failed. Pure: same inputs, same delay.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.Max {
			d = p.Max
			break
		}
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		// splitmix64 over (seed, attempt): deterministic, allocation-free.
		z := p.Seed + uint64(attempt)*0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		frac := float64(z>>11) / float64(1<<53) // uniform [0,1)
		d += time.Duration(frac * p.Jitter * float64(d))
	}
	return d
}

// BreakerState is the classic three-state circuit breaker state.
type BreakerState int32

const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker open (default 5; <0 disables the breaker entirely).
	Threshold int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probes half-open admits
	// (default 1).
	HalfOpenProbes int
	// Now is a clock hook for deterministic tests (default time.Now).
	Now func() time.Time
	// OpenDurations, when non-nil, observes how long each open episode
	// lasted, recorded when the breaker closes again. Outage-length
	// histograms merge across nodes like any other telemetry histogram.
	OpenDurations *telemetry.Histogram
	// OnStateChange, when set, observes every state transition after it
	// happens (called outside the breaker lock, on the goroutine whose
	// call caused the transition). The cluster membership layer bridges
	// peer-breaker trips into failure suspicion through this hook.
	OnStateChange func(from, to BreakerState)
}

// BreakerCounts is a snapshot of breaker statistics for /healthz and
// Stats surfaces.
type BreakerCounts struct {
	State     string
	Trips     int64 // closed/half-open -> open transitions
	Successes int64
	Failures  int64
}

// Breaker is a per-upstream circuit breaker: Threshold consecutive
// failures open it; after Cooldown it admits HalfOpenProbes trial calls;
// a probe success closes it, a probe failure re-opens it.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probes      int // in-flight half-open probes

	trips     int64
	successes int64
	failures  int64
}

// NewBreaker builds a breaker; zero-value config gets defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold == 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// disabled reports whether the breaker is configured off (Threshold<0).
func (b *Breaker) disabled() bool { return b != nil && b.cfg.Threshold < 0 }

// Allow reports whether a call may proceed now; ErrOpen means the
// upstream is presumed down. An allowed call MUST be followed by exactly
// one Success or Failure.
func (b *Breaker) Allow() error {
	if b == nil || b.disabled() {
		return nil
	}
	b.mu.Lock()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return nil
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			return ErrOpen
		}
		b.state = HalfOpen
		b.probes = 1
		b.mu.Unlock()
		b.notify(Open, HalfOpen)
		return nil
	default: // HalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			b.mu.Unlock()
			return ErrOpen
		}
		b.probes++
		b.mu.Unlock()
		return nil
	}
}

// notify fires the OnStateChange hook (outside the lock).
func (b *Breaker) notify(from, to BreakerState) {
	if b.cfg.OnStateChange != nil && from != to {
		b.cfg.OnStateChange(from, to)
	}
}

// Success records a successful call: half-open closes, consecutive
// failures reset.
func (b *Breaker) Success() {
	if b == nil || b.disabled() {
		return
	}
	b.mu.Lock()
	b.successes++
	b.consecFails = 0
	closed := false
	if b.state == HalfOpen {
		b.state = Closed
		b.probes = 0
		closed = true
		if !b.openedAt.IsZero() {
			b.cfg.OpenDurations.Observe(b.cfg.Now().Sub(b.openedAt))
		}
	}
	b.mu.Unlock()
	if closed {
		b.notify(HalfOpen, Closed)
	}
}

// Failure records a failed call: a half-open probe failure re-opens
// immediately; Threshold consecutive closed-state failures trip open.
func (b *Breaker) Failure() {
	if b == nil || b.disabled() {
		return
	}
	b.mu.Lock()
	b.failures++
	b.consecFails++
	from := b.state
	tripped := false
	switch b.state {
	case HalfOpen:
		b.trip()
		tripped = true
	case Closed:
		if b.consecFails >= b.cfg.Threshold {
			b.trip()
			tripped = true
		}
	}
	b.mu.Unlock()
	if tripped {
		b.notify(from, Open)
	}
}

// trip moves to Open (caller holds b.mu).
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.probes = 0
	b.trips++
}

// State returns the current state, applying the open->half-open
// transition lazily so observers see the same state a caller would.
func (b *Breaker) State() BreakerState {
	if b == nil || b.disabled() {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Counts snapshots the breaker statistics.
func (b *Breaker) Counts() BreakerCounts {
	if b == nil || b.disabled() {
		return BreakerCounts{State: Closed.String()}
	}
	state := b.State().String()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerCounts{State: state, Trips: b.trips, Successes: b.successes, Failures: b.failures}
}

// Hop bundles the per-hop policy every cross-service call uses: a
// per-attempt deadline, a retry policy, and a shared per-upstream
// breaker. The zero value (no timeout, one attempt, nil breaker) is a
// plain call.
type Hop struct {
	// Timeout bounds each individual attempt (0 = caller's deadline only).
	Timeout time.Duration
	// Retry is the backoff policy across attempts.
	Retry RetryPolicy
	// Breaker, when non-nil, gates every attempt. It is shared by all
	// hops to the same upstream.
	Breaker *Breaker
	// OnRetry, when set, observes each scheduled retry (metrics).
	OnRetry func(attempt int, err error)
	// Retries, when non-nil, counts every scheduled retry.
	Retries *telemetry.Counter
}

// Do runs op under the hop policy. Each attempt gets its own deadline
// and its own breaker admission; ErrOpen and permanent errors stop the
// retry loop immediately. The parent ctx cancels everything.
func (h Hop) Do(ctx context.Context, op func(context.Context) error) error {
	retry := h.Retry.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = h.attempt(ctx, op)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrOpen) || IsPermanent(err) || attempt >= retry.Attempts {
			return err
		}
		h.Retries.Inc()
		if h.OnRetry != nil {
			h.OnRetry(attempt, err)
		}
		t := time.NewTimer(retry.Backoff(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// attempt is one breaker-gated, deadline-bounded try.
func (h Hop) attempt(ctx context.Context, op func(context.Context) error) error {
	if err := h.Breaker.Allow(); err != nil {
		return err
	}
	actx := ctx
	if h.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, h.Timeout)
		defer cancel()
	}
	err := op(actx)
	if err == nil {
		h.Breaker.Success()
		return nil
	}
	// A permanent error (e.g. not-found) is an answer from the upstream,
	// not evidence it is down; don't count it against the breaker.
	if IsPermanent(err) {
		h.Breaker.Success()
		return err
	}
	// A canceled parent context means the caller gave up (client
	// disconnect, abandoned coalesced flight) — that says nothing about
	// the upstream's health. Recording it as a failure would let a wave
	// of impatient clients trip the breaker and black out a healthy
	// origin, turning overload into an outage. Attempt-deadline expiry
	// (upstream too slow) still counts.
	if errors.Is(ctx.Err(), context.Canceled) {
		return err
	}
	h.Breaker.Failure()
	// Surface the attempt deadline as the canonical context error so
	// callers can map it (proxy: 504).
	if actx.Err() != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		err = fmt.Errorf("%w (%v)", actx.Err(), err)
	}
	return err
}
