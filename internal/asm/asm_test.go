package asm_test

import (
	"bytes"
	"strings"
	"testing"

	"dvm/internal/asm"
	"dvm/internal/classfile"
	"dvm/internal/jvm"
	"dvm/internal/verifier"
	"dvm/internal/workload"
)

const helloSrc = `
; a classic
.class public demo/Hello
.super java/lang/Object

.method public static main ([Ljava/lang/String;)V
    getstatic java/lang/System out Ljava/io/PrintStream;
    ldc "hello, assembler"   ; string operand
    invokevirtual java/io/PrintStream println (Ljava/lang/String;)V
    return
.end method
`

func TestAssembleHelloAndRun(t *testing.T) {
	data, err := asm.AssembleBytes(helloSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.Verify(cf); err != nil {
		t.Fatalf("assembled class fails verification: %v", err)
	}
	var out bytes.Buffer
	vm, err := jvm.New(jvm.MapLoader{"demo/Hello": data}, &out)
	if err != nil {
		t.Fatal(err)
	}
	thrown, err := vm.RunMain("demo/Hello", nil)
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if out.String() != "hello, assembler\n" {
		t.Errorf("output = %q", out.String())
	}
}

const controlFlowSrc = `
.class public demo/Flow
.super java/lang/Object

.field private static counter I

.method public static classify (I)I
    iload 0
    lookupswitch
        -1 : Lneg
        0 : Lzero
        default : Ldef
Lneg:
    iconst_m1
    ireturn
Lzero:
    iconst_0
    ireturn
Ldef:
    iload 0
    tableswitch 10
        Lten
        Leleven
        default : Lbig
Lten:
    bipush 10
    ireturn
Leleven:
    bipush 11
    ireturn
Lbig:
    sipush 999
    ireturn
.end method

.method public static guarded (II)I
    .catch java/lang/ArithmeticException from Ltry to Lend using Lhandler
Ltry:
    iload 0
    iload 1
    idiv
    ireturn
Lend:
Lhandler:
    pop
    iconst_m1
    ireturn
.end method

.method public static loop (I)I
    iconst_0
    istore 1
    iconst_0
    istore 2
Lhead:
    iload 2
    iload 0
    if_icmpge Lout
    iload 1
    iload 2
    iadd
    istore 1
    iinc 2 1
    goto Lhead
Lout:
    iload 1
    ireturn
.end method
`

func TestAssembleControlFlow(t *testing.T) {
	data, err := asm.AssembleBytes(controlFlowSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	cf, _ := classfile.Parse(data)
	if _, err := verifier.Verify(cf); err != nil {
		t.Fatalf("verification: %v", err)
	}
	vm, err := jvm.New(jvm.MapLoader{"demo/Flow": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	call := func(name, desc string, args ...jvm.Value) int32 {
		t.Helper()
		v, thrown, err := vm.MainThread().InvokeByName("demo/Flow", name, desc, args)
		if err != nil || thrown != nil {
			t.Fatalf("%s: %v %v", name, err, jvm.DescribeThrowable(thrown))
		}
		return v.Int()
	}
	cases := []struct{ in, want int32 }{
		{-1, -1}, {0, 0}, {10, 10}, {11, 11}, {5, 999}, {100, 999},
	}
	for _, c := range cases {
		if got := call("classify", "(I)I", jvm.IntV(c.in)); got != c.want {
			t.Errorf("classify(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := call("guarded", "(II)I", jvm.IntV(10), jvm.IntV(2)); got != 5 {
		t.Errorf("guarded(10,2) = %d", got)
	}
	if got := call("guarded", "(II)I", jvm.IntV(10), jvm.IntV(0)); got != -1 {
		t.Errorf("guarded(10,0) = %d (handler)", got)
	}
	if got := call("loop", "(I)I", jvm.IntV(10)); got != 45 {
		t.Errorf("loop(10) = %d", got)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"no class":        ".super java/lang/Object\n.field public x I\n",
		"unknown instr":   ".class public a/B\n.method public static f ()V\n    frobnicate\n.end method\n",
		"unbound label":   ".class public a/B\n.method public static f ()V\n    goto Lnope\n    return\n.end method\n",
		"missing end":     ".class public a/B\n.method public static f ()V\n    return\n",
		"bad catch":       ".class public a/B\n.method public static f ()V\n    .catch from to\n    return\n.end method\n",
		"bad operand":     ".class public a/B\n.method public static f ()V\n    bipush notanint\n    return\n.end method\n",
		"unterminated sw": ".class public a/B\n.method public static f ()V\n    lookupswitch\n        1 : L\n",
		"unquoted string": ".class public a/B\n.method public static f ()V\n    ldc \"oops\n    return\n.end method\n",
	}
	for name, src := range cases {
		if _, err := asm.AssembleBytes(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPrintAssembleRoundTrip(t *testing.T) {
	// Generated workload classes exercise every printable construct.
	spec := workload.Benchmarks()[3] // Instantdb: handlers, switches, strings
	spec.Classes = 4
	spec.TargetBytes = 24 * 1024
	app, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range app.Classes {
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		text, err := asm.Print(cf)
		if err != nil {
			t.Fatalf("%s: Print: %v", name, err)
		}
		back, err := asm.Assemble(text)
		if err != nil {
			t.Fatalf("%s: re-Assemble: %v\n%s", name, err, text)
		}
		// Text fixpoint: printing the reassembled class reproduces the
		// same text.
		text2, err := asm.Print(back)
		if err != nil {
			t.Fatalf("%s: re-Print: %v", name, err)
		}
		if text != text2 {
			t.Errorf("%s: print/assemble text not a fixpoint", name)
		}
		// And it still verifies.
		if _, err := verifier.Verify(back); err != nil {
			t.Errorf("%s: reassembled class fails verification: %v", name, err)
		}
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	spec := workload.Benchmarks()[0]
	spec.Classes = 3
	spec.TargetBytes = 12 * 1024
	app, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func(classes map[string][]byte) string {
		var out bytes.Buffer
		vm, err := jvm.New(jvm.MapLoader(classes), &out)
		if err != nil {
			t.Fatal(err)
		}
		if thrown, err := vm.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
			t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
		}
		return out.String()
	}
	want := run(app.Classes)

	round := make(map[string][]byte, len(app.Classes))
	for name, data := range app.Classes {
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		text, err := asm.Print(cf)
		if err != nil {
			t.Fatal(err)
		}
		out, err := asm.AssembleBytes(text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		round[name] = out
	}
	if got := run(round); got != want {
		t.Errorf("round-tripped output %q != original %q", got, want)
	}
}

func TestAssembleAbstractAndInterface(t *testing.T) {
	src := `
.class public interface abstract demo/Iface
.super java/lang/Object
.method public abstract run ()V
.end method
`
	data, err := asm.AssembleBytes(src)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !cf.IsInterface() {
		t.Error("not an interface")
	}
	if _, err := verifier.Verify(cf); err != nil {
		t.Errorf("interface fails verification: %v", err)
	}
	if !strings.Contains(mustPrint(t, cf), ".implements") == false {
		_ = cf
	}
}

func mustPrint(t *testing.T, cf *classfile.ClassFile) string {
	t.Helper()
	s, err := asm.Print(cf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
