package asm

import (
	"strconv"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classgen"
)

// mnemonics maps instruction names to opcodes, built from the opcode
// table so the two can never drift.
var mnemonics = buildMnemonics()

func buildMnemonics() map[string]bytecode.Opcode {
	m := make(map[string]bytecode.Opcode, 256)
	for op := 0; op < 256; op++ {
		o := bytecode.Opcode(op)
		if o.Valid() && o.Name() != "" && o != bytecode.Wide {
			m[o.Name()] = o
		}
	}
	return m
}

// methodLine assembles one line inside a method body.
func (a *assembler) methodLine(toks []string, next func() ([]string, bool, error)) error {
	// Label definition: "name:" possibly followed by an instruction.
	if strings.HasSuffix(toks[0], ":") && !isQuoted(toks[0]) {
		name := strings.TrimSuffix(toks[0], ":")
		if name == "" {
			return a.fail("empty label")
		}
		// Double binding is caught by classgen at Build time.
		a.m.Mark(a.label(name))
		if len(toks) == 1 {
			return nil
		}
		toks = toks[1:]
	}

	switch toks[0] {
	case ".limit":
		return nil // stack/locals are computed; accept and ignore
	case ".catch":
		// .catch <class|all> from L1 to L2 using L3
		if len(toks) != 8 || toks[2] != "from" || toks[4] != "to" || toks[6] != "using" {
			return a.fail(".catch wants: .catch <class|all> from L1 to L2 using L3")
		}
		catch := toks[1]
		if catch == "all" {
			catch = ""
		}
		a.m.Handler(a.label(toks[3]), a.label(toks[5]), a.label(toks[7]), catch)
		return nil
	}

	op, ok := mnemonics[toks[0]]
	if !ok {
		return a.fail("unknown instruction %q", toks[0])
	}
	args := toks[1:]

	switch op {
	case bytecode.Tableswitch:
		return a.tableswitch(args, next)
	case bytecode.Lookupswitch:
		return a.lookupswitch(args, next)
	}

	switch op.OperandKind() {
	case bytecode.KindNone:
		if len(args) != 0 {
			return a.fail("%s takes no operands", op.Name())
		}
		a.m.Raw(bytecode.Inst{Op: op})
		return nil

	case bytecode.KindS1, bytecode.KindS2:
		v, err := a.intArg(args, op.Name())
		if err != nil {
			return err
		}
		a.m.Raw(bytecode.Inst{Op: op, Const: int32(v)})
		return nil

	case bytecode.KindLocal:
		v, err := a.intArg(args, op.Name())
		if err != nil {
			return err
		}
		a.m.Raw(bytecode.Inst{Op: op, Index: uint16(v)})
		return nil

	case bytecode.KindIinc:
		if len(args) != 2 {
			return a.fail("iinc wants: iinc <local> <delta>")
		}
		idx, err := strconv.ParseUint(args[0], 10, 16)
		if err != nil {
			return a.fail("iinc local: %v", err)
		}
		d, err := strconv.ParseInt(args[1], 10, 32)
		if err != nil {
			return a.fail("iinc delta: %v", err)
		}
		a.m.Raw(bytecode.Inst{Op: bytecode.Iinc, Index: uint16(idx), Const: int32(d)})
		return nil

	case bytecode.KindBranch2, bytecode.KindBranch4:
		if len(args) != 1 {
			return a.fail("%s wants a label", op.Name())
		}
		a.m.Branch(op, a.label(args[0]))
		return nil

	case bytecode.KindCPU1, bytecode.KindCPU2:
		return a.cpOperand(op, args)

	case bytecode.KindIfaceRef:
		if len(args) != 3 {
			return a.fail("invokeinterface wants: class method descriptor")
		}
		a.m.InvokeInterface(args[0], args[1], args[2])
		return nil

	case bytecode.KindAType:
		if len(args) != 1 {
			return a.fail("newarray wants an element type")
		}
		t, ok := atypes[args[0]]
		if !ok {
			return a.fail("newarray: unknown element type %q", args[0])
		}
		a.m.Raw(bytecode.Inst{Op: bytecode.Newarray, ArrayType: t})
		return nil

	case bytecode.KindMultiNew:
		if len(args) != 2 {
			return a.fail("multianewarray wants: class dims")
		}
		dims, err := strconv.ParseUint(args[1], 10, 8)
		if err != nil {
			return a.fail("multianewarray dims: %v", err)
		}
		a.m.Raw(bytecode.Inst{
			Op:    bytecode.Multianewarray,
			Index: a.builder.Pool().AddClass(args[0]),
			Dims:  uint8(dims),
		})
		return nil
	}
	return a.fail("cannot assemble %s", op.Name())
}

var atypes = map[string]uint8{
	"boolean": bytecode.TBoolean,
	"char":    bytecode.TChar,
	"float":   bytecode.TFloat,
	"double":  bytecode.TDouble,
	"byte":    bytecode.TByte,
	"short":   bytecode.TShort,
	"int":     bytecode.TInt,
	"long":    bytecode.TLong,
}

func (a *assembler) intArg(args []string, what string) (int64, error) {
	if len(args) != 1 {
		return 0, a.fail("%s wants one integer operand", what)
	}
	v, err := strconv.ParseInt(args[0], 10, 32)
	if err != nil {
		return 0, a.fail("%s: %v", what, err)
	}
	return v, nil
}

// cpOperand assembles instructions with constant pool operands.
func (a *assembler) cpOperand(op bytecode.Opcode, args []string) error {
	pool := a.builder.Pool()
	switch op {
	case bytecode.Ldc, bytecode.LdcW:
		if len(args) != 1 {
			return a.fail("ldc wants one literal")
		}
		tok := args[0]
		if isQuoted(tok) {
			a.m.LdcString(unquote(tok))
			return nil
		}
		if strings.ContainsAny(tok, ".eE") && !strings.HasPrefix(tok, "0x") {
			f, err := strconv.ParseFloat(strings.TrimSuffix(tok, "f"), 32)
			if err != nil {
				return a.fail("ldc float: %v", err)
			}
			a.m.Raw(bytecode.Inst{Op: bytecode.Ldc, Index: pool.AddFloat(float32(f))})
			return nil
		}
		v, err := strconv.ParseInt(tok, 0, 32)
		if err != nil {
			return a.fail("ldc int: %v", err)
		}
		a.m.Raw(bytecode.Inst{Op: bytecode.Ldc, Index: pool.AddInteger(int32(v))})
		return nil

	case bytecode.Ldc2W:
		if len(args) != 1 {
			return a.fail("ldc2_w wants one literal")
		}
		tok := args[0]
		if strings.ContainsAny(tok, ".eE") {
			d, err := strconv.ParseFloat(strings.TrimSuffix(tok, "d"), 64)
			if err != nil {
				return a.fail("ldc2_w double: %v", err)
			}
			a.m.Raw(bytecode.Inst{Op: bytecode.Ldc2W, Index: pool.AddDouble(d)})
			return nil
		}
		v, err := strconv.ParseInt(strings.TrimSuffix(tok, "L"), 0, 64)
		if err != nil {
			return a.fail("ldc2_w long: %v", err)
		}
		a.m.Raw(bytecode.Inst{Op: bytecode.Ldc2W, Index: pool.AddLong(v)})
		return nil

	case bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield:
		if len(args) != 3 {
			return a.fail("%s wants: class field descriptor", op.Name())
		}
		a.m.Raw(bytecode.Inst{Op: op, Index: pool.AddFieldref(args[0], args[1], args[2])})
		return nil

	case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic:
		if len(args) != 3 {
			return a.fail("%s wants: class method descriptor", op.Name())
		}
		a.m.Raw(bytecode.Inst{Op: op, Index: pool.AddMethodref(args[0], args[1], args[2])})
		return nil

	case bytecode.New, bytecode.Anewarray, bytecode.Checkcast, bytecode.Instanceof:
		if len(args) != 1 {
			return a.fail("%s wants a class name", op.Name())
		}
		a.m.Raw(bytecode.Inst{Op: op, Index: pool.AddClass(args[0])})
		return nil
	}
	return a.fail("cannot assemble %s", op.Name())
}

// tableswitch parses:
//
//	tableswitch <low>
//	    LabelA
//	    LabelB
//	    default : LabelD
func (a *assembler) tableswitch(args []string, next func() ([]string, bool, error)) error {
	if len(args) != 1 {
		return a.fail("tableswitch wants its low key on the same line")
	}
	low, err := strconv.ParseInt(args[0], 10, 32)
	if err != nil {
		return a.fail("tableswitch low: %v", err)
	}
	var arms []classgen.Label
	for {
		toks, ok, err := next()
		if err != nil {
			return err
		}
		if !ok {
			return a.fail("unterminated tableswitch")
		}
		if toks[0] == "default" {
			if len(toks) != 3 || toks[1] != ":" {
				return a.fail("tableswitch default wants: default : Label")
			}
			if len(arms) == 0 {
				return a.fail("tableswitch needs at least one arm")
			}
			a.m.TableSwitch(int32(low), a.label(toks[2]), arms...)
			return nil
		}
		if len(toks) != 1 {
			return a.fail("tableswitch arm wants a single label")
		}
		arms = append(arms, a.label(toks[0]))
	}
}

// lookupswitch parses:
//
//	lookupswitch
//	    <key> : Label
//	    default : Label
func (a *assembler) lookupswitch(args []string, next func() ([]string, bool, error)) error {
	if len(args) != 0 {
		return a.fail("lookupswitch takes no operands on its line")
	}
	var keys []int32
	var arms []classgen.Label
	for {
		toks, ok, err := next()
		if err != nil {
			return err
		}
		if !ok {
			return a.fail("unterminated lookupswitch")
		}
		if len(toks) != 3 || toks[1] != ":" {
			return a.fail("lookupswitch entry wants: <key|default> : Label")
		}
		if toks[0] == "default" {
			a.m.LookupSwitch(a.label(toks[2]), keys, arms)
			return nil
		}
		k, err := strconv.ParseInt(toks[0], 10, 32)
		if err != nil {
			return a.fail("lookupswitch key: %v", err)
		}
		keys = append(keys, int32(k))
		arms = append(arms, a.label(toks[2]))
	}
}
