package asm

import (
	"fmt"
	"strconv"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// Print renders a classfile as assembly text that Assemble accepts,
// giving the DVM a round-trippable, human-readable interchange format.
// Classes containing DVM native-format extension opcodes cannot be
// printed (they have no strict-JVM text form) and return an error.
func Print(cf *classfile.ClassFile) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, ".class%s %s\n", flagText(cf.AccessFlags&^classfile.AccSuper, false), cf.Name())
	if s := cf.SuperName(); s != "" {
		fmt.Fprintf(&b, ".super %s\n", s)
	}
	for _, ifc := range cf.InterfaceNames() {
		fmt.Fprintf(&b, ".implements %s\n", ifc)
	}
	b.WriteByte('\n')
	for _, f := range cf.Fields {
		// Service-injected guard flags (dvm$...) print like any field and
		// reassemble unchanged.
		fmt.Fprintf(&b, ".field%s %s %s\n", flagText(f.AccessFlags, true), cf.MemberName(f), cf.MemberDescriptor(f))
	}
	if len(cf.Fields) > 0 {
		b.WriteByte('\n')
	}
	for _, m := range cf.Methods {
		if err := printMethod(&b, cf, m); err != nil {
			return "", err
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// flagText renders access flags in the order the parser accepts.
func flagText(flags uint16, member bool) string {
	var out []string
	add := func(mask uint16, name string) {
		if flags&mask != 0 {
			out = append(out, name)
		}
	}
	add(classfile.AccPublic, "public")
	add(classfile.AccPrivate, "private")
	add(classfile.AccProtected, "protected")
	add(classfile.AccStatic, "static")
	add(classfile.AccFinal, "final")
	if member {
		add(classfile.AccSynchronized, "synchronized")
		add(classfile.AccVolatile, "volatile")
		add(classfile.AccTransient, "transient")
		add(classfile.AccNative, "native")
	}
	add(classfile.AccInterface, "interface")
	add(classfile.AccAbstract, "abstract")
	if len(out) == 0 {
		return ""
	}
	return " " + strings.Join(out, " ")
}

func printMethod(b *strings.Builder, cf *classfile.ClassFile, m *classfile.Member) error {
	fmt.Fprintf(b, ".method%s %s %s\n", flagText(m.AccessFlags, true), cf.MemberName(m), cf.MemberDescriptor(m))
	code, err := cf.CodeOf(m)
	if err != nil {
		return err
	}
	if code == nil {
		fmt.Fprintf(b, ".end method\n")
		return nil
	}
	insts, err := bytecode.Decode(code.Bytecode)
	if err != nil {
		return fmt.Errorf("asm: %s.%s: %w", cf.Name(), cf.MemberName(m), err)
	}
	pcIdx := bytecode.PCMap(insts)

	// Collect label positions: branch/switch targets and handler bounds.
	labelAt := map[int]string{} // instruction index (or len(insts)) -> label
	need := func(idx int) string {
		if name, ok := labelAt[idx]; ok {
			return name
		}
		var name string
		if idx == len(insts) {
			name = "Lend"
		} else {
			name = "L" + strconv.Itoa(insts[idx].PC)
		}
		labelAt[idx] = name
		return name
	}
	for _, in := range insts {
		if in.Op.IsBranch() {
			need(in.Target)
		}
		if in.Op.IsSwitch() {
			need(in.Switch.Default)
			for _, t := range in.Switch.Targets {
				need(t)
			}
		}
	}
	type hnd struct {
		s, e, h string
		catch   string
	}
	var handlers []hnd
	for _, h := range code.Handlers {
		si, ok1 := pcIdx[int(h.StartPC)]
		hi, ok3 := pcIdx[int(h.HandlerPC)]
		ei := len(insts)
		ok2 := int(h.EndPC) == len(code.Bytecode)
		if !ok2 {
			ei, ok2 = pcIdx[int(h.EndPC)]
		}
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("asm: %s.%s: exception table off instruction boundaries", cf.Name(), cf.MemberName(m))
		}
		catch := "all"
		if h.CatchType != 0 {
			catch, err = cf.Pool.ClassName(h.CatchType)
			if err != nil {
				return err
			}
		}
		handlers = append(handlers, hnd{need(si), need(ei), need(hi), catch})
	}
	for _, h := range handlers {
		fmt.Fprintf(b, "    .catch %s from %s to %s using %s\n", h.catch, h.s, h.e, h.h)
	}

	for i, in := range insts {
		if name, ok := labelAt[i]; ok {
			fmt.Fprintf(b, "%s:\n", name)
		}
		line, err := printInst(cf, insts, in, labelAt)
		if err != nil {
			return err
		}
		fmt.Fprintf(b, "    %s\n", line)
		_ = i
	}
	if name, ok := labelAt[len(insts)]; ok {
		// End-of-code label (handler range end): bind it, then .end.
		fmt.Fprintf(b, "%s:\n", name)
	}
	fmt.Fprintf(b, ".end method\n")
	return nil
}

func printInst(cf *classfile.ClassFile, insts []bytecode.Inst, in bytecode.Inst, labelAt map[int]string) (string, error) {
	pool := cf.Pool
	name := in.Op.Name()
	switch {
	case in.Op == bytecode.Tableswitch:
		var b strings.Builder
		fmt.Fprintf(&b, "tableswitch %d", in.Switch.Low)
		for _, t := range in.Switch.Targets {
			fmt.Fprintf(&b, "\n        %s", labelAt[t])
		}
		fmt.Fprintf(&b, "\n        default : %s", labelAt[in.Switch.Default])
		return b.String(), nil
	case in.Op == bytecode.Lookupswitch:
		var b strings.Builder
		b.WriteString("lookupswitch")
		for k, t := range in.Switch.Targets {
			fmt.Fprintf(&b, "\n        %d : %s", in.Switch.Keys[k], labelAt[t])
		}
		fmt.Fprintf(&b, "\n        default : %s", labelAt[in.Switch.Default])
		return b.String(), nil
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s", name, labelAt[in.Target]), nil
	}

	switch in.Op.OperandKind() {
	case bytecode.KindNone:
		return name, nil
	case bytecode.KindS1, bytecode.KindS2:
		return fmt.Sprintf("%s %d", name, in.Const), nil
	case bytecode.KindLocal:
		return fmt.Sprintf("%s %d", name, in.Index), nil
	case bytecode.KindIinc:
		return fmt.Sprintf("iinc %d %d", in.Index, in.Const), nil
	case bytecode.KindAType:
		for n, t := range atypes {
			if t == in.ArrayType {
				return fmt.Sprintf("newarray %s", n), nil
			}
		}
		return "", fmt.Errorf("asm: unknown array type %d", in.ArrayType)
	case bytecode.KindMultiNew:
		cn, err := pool.ClassName(in.Index)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("multianewarray %s %d", cn, in.Dims), nil
	case bytecode.KindIfaceRef:
		ref, err := pool.Ref(in.Index)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("invokeinterface %s %s %s", ref.Class, ref.Name, ref.Desc), nil
	case bytecode.KindCPU1, bytecode.KindCPU2:
		switch in.Op {
		case bytecode.Ldc, bytecode.LdcW:
			e, err := pool.Entry(in.Index)
			if err != nil {
				return "", err
			}
			switch e.Tag {
			case classfile.TagString:
				s, _ := pool.StringValue(in.Index)
				return "ldc " + quote(s), nil
			case classfile.TagInteger:
				return fmt.Sprintf("ldc %d", e.Int), nil
			case classfile.TagFloat:
				return "ldc " + floatText(float64(e.Float)), nil
			}
			return "", fmt.Errorf("asm: ldc of %s", e.Tag)
		case bytecode.Ldc2W:
			e, err := pool.Entry(in.Index)
			if err != nil {
				return "", err
			}
			if e.Tag == classfile.TagLong {
				return fmt.Sprintf("ldc2_w %d", e.Long), nil
			}
			return "ldc2_w " + floatText(e.Double), nil
		case bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield,
			bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic:
			ref, err := pool.Ref(in.Index)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s %s %s %s", name, ref.Class, ref.Name, ref.Desc), nil
		case bytecode.New, bytecode.Anewarray, bytecode.Checkcast, bytecode.Instanceof:
			cn, err := pool.ClassName(in.Index)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s %s", name, cn), nil
		}
	}
	return "", fmt.Errorf("asm: cannot print %s", name)
}

// quote renders a string literal in the assembler's syntax.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(s[i])
		}
	}
	b.WriteByte('"')
	return b.String()
}

// floatText renders a float so the parser reads it back as a float.
func floatText(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
