// Package asm implements a Jasmin-style assembler and matching
// disassembler for Java classfiles — the authoring tool for handwritten
// test inputs and a human-readable interchange format for everything the
// DVM's services produce.
//
// The source format:
//
//	.class public demo/Hello
//	.super java/lang/Object
//	.implements java/lang/Runnable
//
//	.field private count I
//
//	.method public static main ([Ljava/lang/String;)V
//	    getstatic java/lang/System out Ljava/io/PrintStream;
//	    ldc "hello world"
//	    invokevirtual java/io/PrintStream println (Ljava/lang/String;)V
//	    return
//	.end method
//
// Labels are identifiers followed by ':'; branch operands name labels.
// Exception handlers use `.catch <class|all> from L1 to L2 using L3`
// inside a method. Switches span multiple lines:
//
//	lookupswitch
//	    1 : Lone
//	    5 : Lfive
//	    default : Ldef
//
//	tableswitch 10
//	    Lten
//	    Leleven
//	    default : Ldef
//
// ';' starts a comment (outside string literals). max_stack and
// max_locals are computed automatically.
package asm

import (
	"fmt"
	"strings"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// SyntaxError reports an assembly failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// Assemble compiles assembly text into a classfile.
func Assemble(src string) (*classfile.ClassFile, error) {
	a := &assembler{}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.builder.Build()
}

// AssembleBytes compiles assembly text into serialized classfile bytes.
func AssembleBytes(src string) ([]byte, error) {
	cf, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	return cf.Encode()
}

type assembler struct {
	builder *classgen.ClassBuilder

	// class-level accumulation before the builder exists
	className  string
	superName  string
	classFlags uint16
	implements []string

	// current method state
	m      *classgen.MethodBuilder
	labels map[string]classgen.Label

	line int
}

func (a *assembler) fail(format string, args ...any) error {
	return &SyntaxError{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

// stripComment removes a ';' comment, respecting double-quoted strings.
// Because type descriptors contain semicolons (Ljava/lang/String;), a
// comment ';' must begin the line or follow whitespace.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case ';':
			if !inStr && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// fields splits a line into tokens, keeping double-quoted strings (with
// escapes) as single tokens.
func fields(s string) ([]string, error) {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '"' {
			j := i + 1
			var b strings.Builder
			for j < len(s) {
				if s[j] == '\\' && j+1 < len(s) {
					switch s[j+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '"':
						b.WriteByte('"')
					case '\\':
						b.WriteByte('\\')
					default:
						b.WriteByte(s[j+1])
					}
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				b.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated string literal")
			}
			out = append(out, "\x00"+b.String()) // \x00 marks "was quoted"
			i = j + 1
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		out = append(out, s[i:j])
		i = j
	}
	return out, nil
}

func isQuoted(tok string) bool { return strings.HasPrefix(tok, "\x00") }
func unquote(tok string) string {
	return strings.TrimPrefix(tok, "\x00")
}

var flagNames = map[string]uint16{
	"public":       classfile.AccPublic,
	"private":      classfile.AccPrivate,
	"protected":    classfile.AccProtected,
	"static":       classfile.AccStatic,
	"final":        classfile.AccFinal,
	"super":        classfile.AccSuper,
	"synchronized": classfile.AccSynchronized,
	"volatile":     classfile.AccVolatile,
	"transient":    classfile.AccTransient,
	"native":       classfile.AccNative,
	"interface":    classfile.AccInterface,
	"abstract":     classfile.AccAbstract,
}

// parseFlags consumes leading flag tokens, returning (flags, rest).
func parseFlags(toks []string) (uint16, []string) {
	var flags uint16
	i := 0
	for ; i < len(toks); i++ {
		f, ok := flagNames[toks[i]]
		if !ok {
			break
		}
		flags |= f
	}
	return flags, toks[i:]
}

func (a *assembler) run(src string) error {
	lines := strings.Split(src, "\n")
	i := 0
	next := func() (toks []string, ok bool, err error) {
		for i < len(lines) {
			a.line = i + 1
			raw := stripComment(lines[i])
			i++
			toks, err := fields(raw)
			if err != nil {
				return nil, false, a.fail("%v", err)
			}
			if len(toks) == 0 {
				continue
			}
			return toks, true, nil
		}
		return nil, false, nil
	}

	for {
		toks, ok, err := next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		switch toks[0] {
		case ".class":
			flags, rest := parseFlags(toks[1:])
			if len(rest) != 1 {
				return a.fail(".class wants flags and a name")
			}
			a.classFlags = flags
			if a.classFlags&classfile.AccInterface == 0 {
				a.classFlags |= classfile.AccSuper
			}
			a.className = rest[0]
		case ".super":
			if len(toks) != 2 {
				return a.fail(".super wants one class name")
			}
			a.superName = toks[1]
		case ".implements":
			if len(toks) != 2 {
				return a.fail(".implements wants one interface name")
			}
			a.implements = append(a.implements, toks[1])
		case ".field":
			if err := a.ensureBuilder(); err != nil {
				return err
			}
			flags, rest := parseFlags(toks[1:])
			if len(rest) != 2 {
				return a.fail(".field wants flags, name, descriptor")
			}
			a.builder.Field(flags, rest[0], rest[1])
		case ".method":
			if err := a.ensureBuilder(); err != nil {
				return err
			}
			if err := a.method(toks[1:], next); err != nil {
				return err
			}
		default:
			return a.fail("unexpected %q at top level", toks[0])
		}
	}
	if err := a.ensureBuilder(); err != nil {
		return err
	}
	return nil
}

func (a *assembler) ensureBuilder() error {
	if a.builder != nil {
		return nil
	}
	if a.className == "" {
		return a.fail("missing .class directive")
	}
	super := a.superName
	if super == "" && a.className != "java/lang/Object" {
		super = "java/lang/Object"
	}
	a.builder = classgen.NewClass(a.className, super)
	a.builder.SetFlags(a.classFlags)
	for _, ifc := range a.implements {
		a.builder.AddInterface(ifc)
	}
	return nil
}

// method assembles one .method ... .end method block.
func (a *assembler) method(header []string, next func() ([]string, bool, error)) error {
	flags, rest := parseFlags(header)
	if len(rest) != 2 {
		return a.fail(".method wants flags, name, descriptor")
	}
	name, desc := rest[0], rest[1]
	if flags&(classfile.AccAbstract|classfile.AccNative) != 0 {
		// Body-less method; expect .end method immediately.
		toks, ok, err := next()
		if err != nil {
			return err
		}
		if !ok || len(toks) != 2 || toks[0] != ".end" || toks[1] != "method" {
			return a.fail("abstract/native method must be followed by .end method")
		}
		a.builder.AbstractMethod(flags, name, desc)
		return nil
	}

	a.m = a.builder.Method(flags, name, desc)
	a.labels = make(map[string]classgen.Label)
	for {
		toks, ok, err := next()
		if err != nil {
			return err
		}
		if !ok {
			return a.fail("missing .end method")
		}
		if toks[0] == ".end" {
			if len(toks) != 2 || toks[1] != "method" {
				return a.fail("malformed .end")
			}
			a.m = nil
			a.labels = nil
			return nil
		}
		if err := a.methodLine(toks, next); err != nil {
			return err
		}
	}
}

// label returns (creating if needed) the classgen label for a name.
func (a *assembler) label(name string) classgen.Label {
	if l, ok := a.labels[name]; ok {
		return l
	}
	l := a.m.NewLabel()
	a.labels[name] = l
	return l
}
