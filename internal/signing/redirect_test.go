package signing_test

import (
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/jvm"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/signing"
	"dvm/internal/verifier"
)

func TestRedirectLoaderAcceptsSignedDirect(t *testing.T) {
	s := signing.NewSigner([]byte("org-key"))
	cf, _ := classfile.Parse(sampleClass(t))
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	signed, _ := cf.Encode()
	rl := &signing.RedirectLoader{
		Signer: s,
		Direct: jvm.MapLoader{"app/S": signed},
		Service: jvm.FuncLoader(func(string) ([]byte, error) {
			t.Fatal("service consulted for validly signed direct code")
			return nil, nil
		}),
	}
	data, err := rl.Load("app/S")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(signed) || rl.Redirects != 0 {
		t.Errorf("bytes=%d redirects=%d", len(data), rl.Redirects)
	}
}

func TestRedirectLoaderReroutesUnsigned(t *testing.T) {
	s := signing.NewSigner([]byte("org-key"))
	raw := sampleClass(t)
	// The service proxy transforms and signs.
	p := proxy.New(proxy.MapOrigin{"app/S": raw}, proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter(), s.Filter()),
		CacheEnabled: true,
	})
	rl := &signing.RedirectLoader{
		Signer:  s,
		Direct:  jvm.MapLoader{"app/S": raw}, // unsigned direct copy
		Service: p.Loader("client", "dvm"),
	}
	data, err := rl.Load("app/S")
	if err != nil {
		t.Fatal(err)
	}
	if rl.Redirects != 1 {
		t.Errorf("redirects = %d, want 1", rl.Redirects)
	}
	if err := s.VerifyBytes(data); err != nil {
		t.Errorf("rerouted class not signed: %v", err)
	}
	// The rerouted class runs.
	vm, err := jvm.New(jvm.MapLoader{"app/S": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, thrown, err := vm.MainThread().InvokeByName("app/S", "f", "()I", nil)
	if err != nil || thrown != nil || v.Int() != 7 {
		t.Errorf("f = %d, %v, %v", v.Int(), err, jvm.DescribeThrowable(thrown))
	}
}

func TestRedirectLoaderReroutesTampered(t *testing.T) {
	s := signing.NewSigner([]byte("org-key"))
	raw := sampleClass(t)
	cf, _ := classfile.Parse(raw)
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	signed, _ := cf.Encode()
	tampered := append([]byte(nil), signed...)
	tampered[len(tampered)-1] ^= 0xFF // corrupt the signature bytes

	p := proxy.New(proxy.MapOrigin{"app/S": raw}, proxy.Config{
		Pipeline: rewrite.NewPipeline(s.Filter()),
	})
	rl := &signing.RedirectLoader{
		Signer:  s,
		Direct:  jvm.MapLoader{"app/S": tampered},
		Service: p.Loader("client", "dvm"),
	}
	data, err := rl.Load("app/S")
	if err != nil {
		t.Fatal(err)
	}
	if rl.Redirects != 1 {
		t.Errorf("redirects = %d", rl.Redirects)
	}
	if err := s.VerifyBytes(data); err != nil {
		t.Errorf("service copy not verifiable: %v", err)
	}
}

func TestRedirectLoaderRejectsForgedService(t *testing.T) {
	s := signing.NewSigner([]byte("org-key"))
	forged := signing.NewSigner([]byte("attacker-key"))
	raw := sampleClass(t)
	cf, _ := classfile.Parse(raw)
	if err := forged.Sign(cf); err != nil {
		t.Fatal(err)
	}
	bad, _ := cf.Encode()
	rl := &signing.RedirectLoader{
		Signer:  s,
		Service: jvm.MapLoader{"app/S": bad},
	}
	if _, err := rl.Load("app/S"); err == nil {
		t.Fatal("forged service signature accepted")
	}
}
