// Package signing implements the integrity option of the DVM
// architecture (paper §2): "In some environments, the integrity of the
// transformed applications cannot be guaranteed between the server and
// the clients ... digital signatures attached by the static service
// components can ensure that the checks are inseparable from
// applications, and clients can be instructed to redirect incorrectly
// signed or unsigned code to the centralized services."
//
// The paper used MD5/RSA; this implementation uses stdlib SHA-256 HMAC,
// which preserves the property that matters to the architecture — checks
// riding with the code, unforgeable without the service key.
package signing

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"

	"dvm/internal/classfile"
	"dvm/internal/rewrite"
)

// AttrSignature is the class attribute carrying the service signature.
const AttrSignature = classfile.AttrDVMSignature

// ErrUnsigned marks classes with no signature attribute; clients
// configured to require signatures redirect these back to the proxy.
var ErrUnsigned = errors.New("signing: class carries no service signature")

// ErrBadSignature marks tampered or foreign-key signatures.
var ErrBadSignature = errors.New("signing: signature verification failed")

// Signer holds the static services' signing key.
type Signer struct {
	key []byte
}

// NewSigner creates a signer over a shared service key.
func NewSigner(key []byte) *Signer {
	return &Signer{key: append([]byte(nil), key...)}
}

// digest computes the MAC over the class serialized WITHOUT its
// signature attribute, so signing is idempotent and verification can
// recompute the same bytes. It encodes a shallow view with a filtered
// attribute slice and never mutates cf: proxies verify classes straight
// out of a shared cache, concurrently, so this must be side-effect-free.
func (s *Signer) digest(cf *classfile.ClassFile) ([]byte, error) {
	view := *cf
	view.Attributes = make([]*classfile.Attribute, 0, len(cf.Attributes))
	for _, a := range cf.Attributes {
		if cf.AttrName(a) != AttrSignature {
			view.Attributes = append(view.Attributes, a)
		}
	}
	// The view's attribute list no longer matches the parsed bytes, so
	// the zero-copy encoder must not splice the original attribute range.
	view.MarkAttrsDirty()
	data, err := view.Encode()
	if err != nil {
		return nil, err
	}
	mac := hmac.New(sha256.New, s.key)
	mac.Write(data)
	return mac.Sum(nil), nil
}

// Sign attaches (or replaces) the signature attribute on the class.
func (s *Signer) Sign(cf *classfile.ClassFile) error {
	// Intern the attribute name before digesting: attaching the
	// signature afterwards must not change the constant pool (and hence
	// the signed bytes).
	cf.Pool.AddUtf8(AttrSignature)
	cf.RemoveAttribute(AttrSignature)
	sum, err := s.digest(cf)
	if err != nil {
		return err
	}
	cf.AddAttribute(AttrSignature, sum)
	return nil
}

// Verify checks a parsed class's signature. It is read-only: safe to
// call concurrently on one instance, including one shared with readers.
func (s *Signer) Verify(cf *classfile.ClassFile) error {
	a := cf.FindAttr(cf.Attributes, AttrSignature)
	if a == nil {
		return ErrUnsigned
	}
	sum, err := s.digest(cf)
	if err != nil {
		return err
	}
	if !hmac.Equal(a.Info, sum) {
		return ErrBadSignature
	}
	return nil
}

// sealDomain separates detached seals from class-attribute signatures
// computed under the same service key.
const sealDomain = "dvm-seal-v1\x00"

// SealBytes returns the service MAC over an arbitrary message — the
// detached form used for attestation records, where the sealed object
// is metadata about class bytes rather than the class itself.
func (s *Signer) SealBytes(msg []byte) []byte {
	mac := hmac.New(sha256.New, s.key)
	mac.Write([]byte(sealDomain))
	mac.Write(msg)
	return mac.Sum(nil)
}

// VerifySeal reports whether mac is this service's seal over msg.
func (s *Signer) VerifySeal(msg, mac []byte) bool {
	return hmac.Equal(s.SealBytes(msg), mac)
}

// VerifyBytes parses and verifies serialized class bytes.
func (s *Signer) VerifyBytes(data []byte) error {
	cf, err := classfile.Parse(data)
	if err != nil {
		return err
	}
	return s.Verify(cf)
}

// Filter returns the signing step as the final pipeline filter: it signs
// whatever the preceding static services produced.
func (s *Signer) Filter() rewrite.Filter {
	return rewrite.FilterFunc{FilterName: "signer", Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
		return s.Sign(cf)
	}}
}
