// Package signing implements the integrity option of the DVM
// architecture (paper §2): "In some environments, the integrity of the
// transformed applications cannot be guaranteed between the server and
// the clients ... digital signatures attached by the static service
// components can ensure that the checks are inseparable from
// applications, and clients can be instructed to redirect incorrectly
// signed or unsigned code to the centralized services."
//
// The paper used MD5/RSA; this implementation uses stdlib SHA-256 HMAC,
// which preserves the property that matters to the architecture — checks
// riding with the code, unforgeable without the service key.
package signing

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"

	"dvm/internal/classfile"
	"dvm/internal/rewrite"
)

// AttrSignature is the class attribute carrying the service signature.
const AttrSignature = classfile.AttrDVMSignature

// ErrUnsigned marks classes with no signature attribute; clients
// configured to require signatures redirect these back to the proxy.
var ErrUnsigned = errors.New("signing: class carries no service signature")

// ErrBadSignature marks tampered or foreign-key signatures.
var ErrBadSignature = errors.New("signing: signature verification failed")

// Signer holds the static services' signing key.
type Signer struct {
	key []byte
}

// NewSigner creates a signer over a shared service key.
func NewSigner(key []byte) *Signer {
	return &Signer{key: append([]byte(nil), key...)}
}

// digest computes the MAC over the class serialized WITHOUT its
// signature attribute, so signing is idempotent and verification can
// recompute the same bytes.
func (s *Signer) digest(cf *classfile.ClassFile) ([]byte, error) {
	// Intern the attribute name up front: attaching the signature later
	// must not change the constant pool (and hence the signed bytes).
	cf.Pool.AddUtf8(AttrSignature)
	cf.RemoveAttribute(AttrSignature)
	data, err := cf.Encode()
	if err != nil {
		return nil, err
	}
	mac := hmac.New(sha256.New, s.key)
	mac.Write(data)
	return mac.Sum(nil), nil
}

// Sign attaches (or replaces) the signature attribute on the class.
func (s *Signer) Sign(cf *classfile.ClassFile) error {
	sum, err := s.digest(cf)
	if err != nil {
		return err
	}
	cf.AddAttribute(AttrSignature, sum)
	return nil
}

// Verify checks a parsed class's signature. It restores the class to its
// signed state regardless of outcome.
func (s *Signer) Verify(cf *classfile.ClassFile) error {
	a := cf.FindAttr(cf.Attributes, AttrSignature)
	if a == nil {
		return ErrUnsigned
	}
	claimed := append([]byte(nil), a.Info...)
	sum, err := s.digest(cf) // removes the attribute
	cf.AddAttribute(AttrSignature, claimed)
	if err != nil {
		return err
	}
	if !hmac.Equal(claimed, sum) {
		return ErrBadSignature
	}
	return nil
}

// VerifyBytes parses and verifies serialized class bytes.
func (s *Signer) VerifyBytes(data []byte) error {
	cf, err := classfile.Parse(data)
	if err != nil {
		return err
	}
	return s.Verify(cf)
}

// Filter returns the signing step as the final pipeline filter: it signs
// whatever the preceding static services produced.
func (s *Signer) Filter() rewrite.Filter {
	return rewrite.FilterFunc{FilterName: "signer", Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
		return s.Sign(cf)
	}}
}
