package signing

import (
	"dvm/internal/jvm"
)

// RedirectLoader implements the §2 deployment rule: "clients can be
// instructed to redirect incorrectly signed or unsigned code to the
// centralized services."
//
// It wraps two class sources: Direct (wherever the client would
// naturally load from — a local disk, an origin server) and Service (the
// DVM proxy). Classes arriving from Direct must carry a valid service
// signature; anything unsigned or tampered is refetched through the
// proxy, which transforms and signs it. Code from the Service path is
// verified too — a compromised network cannot forge the service key.
type RedirectLoader struct {
	Signer  *Signer
	Direct  jvm.ClassLoader
	Service jvm.ClassLoader

	// Redirects counts classes that had to be rerouted to the service.
	Redirects int64
}

// Load implements jvm.ClassLoader.
func (r *RedirectLoader) Load(name string) ([]byte, error) {
	if r.Direct != nil {
		data, err := r.Direct.Load(name)
		if err == nil && r.Signer.VerifyBytes(data) == nil {
			return data, nil
		}
	}
	r.Redirects++
	data, err := r.Service.Load(name)
	if err != nil {
		return nil, err
	}
	if err := r.Signer.VerifyBytes(data); err != nil {
		return nil, err
	}
	return data, nil
}

var _ jvm.ClassLoader = (*RedirectLoader)(nil)
