package signing_test

import (
	"errors"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/rewrite"
	"dvm/internal/signing"
)

func sampleClass(t *testing.T) []byte {
	t.Helper()
	b := classgen.NewClass("app/S", "java/lang/Object")
	b.DefaultInit()
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()I")
	m.IConst(7).IReturn()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s := signing.NewSigner([]byte("org-service-key"))
	cf, err := classfile.Parse(sampleClass(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyBytes(data); err != nil {
		t.Fatalf("Verify of freshly signed class: %v", err)
	}
	// Signing must be idempotent (re-sign replaces, not stacks).
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range cf.Attributes {
		if cf.AttrName(a) == signing.AttrSignature {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d signature attributes after re-sign", count)
	}
}

func TestVerifyRejectsUnsigned(t *testing.T) {
	s := signing.NewSigner([]byte("k"))
	if err := s.VerifyBytes(sampleClass(t)); !errors.Is(err, signing.ErrUnsigned) {
		t.Errorf("err = %v, want ErrUnsigned", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	s := signing.NewSigner([]byte("k"))
	cf, _ := classfile.Parse(sampleClass(t))
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	data, _ := cf.Encode()

	// Flip a byte in the method body region (the injected checks must be
	// inseparable from the code).
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)/2] ^= 0x01
	err := s.VerifyBytes(tampered)
	if err == nil {
		t.Fatal("tampered class verified")
	}
	// Either the parse fails or the MAC does; both block execution.
}

func TestVerifyRejectsForeignKey(t *testing.T) {
	orgA := signing.NewSigner([]byte("key-A"))
	orgB := signing.NewSigner([]byte("key-B"))
	cf, _ := classfile.Parse(sampleClass(t))
	if err := orgA.Sign(cf); err != nil {
		t.Fatal(err)
	}
	data, _ := cf.Encode()
	if err := orgB.VerifyBytes(data); !errors.Is(err, signing.ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestSignerFilterSignsPipelineOutput(t *testing.T) {
	s := signing.NewSigner([]byte("pipeline-key"))
	p := rewrite.NewPipeline(s.Filter())
	out, err := p.Process(sampleClass(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyBytes(out); err != nil {
		t.Fatalf("pipeline output does not verify: %v", err)
	}
}
