package signing_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/rewrite"
	"dvm/internal/signing"
)

func sampleClass(t *testing.T) []byte {
	t.Helper()
	b := classgen.NewClass("app/S", "java/lang/Object")
	b.DefaultInit()
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()I")
	m.IConst(7).IReturn()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s := signing.NewSigner([]byte("org-service-key"))
	cf, err := classfile.Parse(sampleClass(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyBytes(data); err != nil {
		t.Fatalf("Verify of freshly signed class: %v", err)
	}
	// Signing must be idempotent (re-sign replaces, not stacks).
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range cf.Attributes {
		if cf.AttrName(a) == signing.AttrSignature {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d signature attributes after re-sign", count)
	}
}

func TestVerifyRejectsUnsigned(t *testing.T) {
	s := signing.NewSigner([]byte("k"))
	if err := s.VerifyBytes(sampleClass(t)); !errors.Is(err, signing.ErrUnsigned) {
		t.Errorf("err = %v, want ErrUnsigned", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	s := signing.NewSigner([]byte("k"))
	cf, _ := classfile.Parse(sampleClass(t))
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	data, _ := cf.Encode()

	// Flip a byte in the method body region (the injected checks must be
	// inseparable from the code).
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)/2] ^= 0x01
	err := s.VerifyBytes(tampered)
	if err == nil {
		t.Fatal("tampered class verified")
	}
	// Either the parse fails or the MAC does; both block execution.
}

func TestVerifyRejectsForeignKey(t *testing.T) {
	orgA := signing.NewSigner([]byte("key-A"))
	orgB := signing.NewSigner([]byte("key-B"))
	cf, _ := classfile.Parse(sampleClass(t))
	if err := orgA.Sign(cf); err != nil {
		t.Fatal(err)
	}
	data, _ := cf.Encode()
	if err := orgB.VerifyBytes(data); !errors.Is(err, signing.ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

// TestVerifyConcurrentSharedInstance is the regression test for the
// digest side effect: Verify used to RemoveAttribute/AddAttribute on the
// class it checked, so two goroutines verifying one cached *ClassFile
// raced (and could observe the signature missing). Run under -race.
func TestVerifyConcurrentSharedInstance(t *testing.T) {
	s := signing.NewSigner([]byte("shared-cache-key"))
	cf, err := classfile.Parse(sampleClass(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sign(cf); err != nil {
		t.Fatal(err)
	}
	before, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := s.Verify(cf); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Verify: %v", err)
	}
	after, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("Verify mutated the class it checked")
	}
}

func TestSealRoundTrip(t *testing.T) {
	s := signing.NewSigner([]byte("seal-key"))
	msg := []byte("arch\x00net/Applet001\x00deadbeef\x002")
	mac := s.SealBytes(msg)
	if !s.VerifySeal(msg, mac) {
		t.Fatal("seal does not verify")
	}
	if s.VerifySeal(append([]byte("x"), msg...), mac) {
		t.Fatal("seal verified a different message")
	}
	if signing.NewSigner([]byte("other-key")).VerifySeal(msg, mac) {
		t.Fatal("seal verified under a foreign key")
	}
}

func TestSignerFilterSignsPipelineOutput(t *testing.T) {
	s := signing.NewSigner([]byte("pipeline-key"))
	p := rewrite.NewPipeline(s.Filter())
	out, err := p.Process(sampleClass(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyBytes(out); err != nil {
		t.Fatalf("pipeline output does not verify: %v", err)
	}
}
