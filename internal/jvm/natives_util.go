package jvm

// java/util subset: Hashtable, Vector, and a deterministic Random. The
// benchmark workloads (the Instantdb TPC-A analog in particular) lean on
// these, as the paper's originals did.

// hashKey keys a Hashtable entry: strings hash by content, everything
// else by identity — sufficient for the runtime's collection semantics
// without re-entering the interpreter for user hashCode/equals.
type hashKey struct {
	str   string
	isStr bool
	obj   *Object
}

func makeHashKey(o *Object) hashKey {
	if o != nil && o.Class.Name == "java/lang/String" {
		return hashKey{str: GoString(o), isStr: true}
	}
	return hashKey{obj: o}
}

type javaHashtable struct {
	m map[hashKey]Value
	// keep inserted objects reachable for the collector
	refs map[hashKey]*Object
}

type javaVector struct {
	elems []Value
}

// splitmix64 is the deterministic PRNG behind java/util/Random: the
// evaluation must be reproducible run-to-run, so the runtime trades
// Java-faithful LCG output for a fixed, well-distributed stream.
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (vm *VM) registerUtilNatives() {
	// java/util/Hashtable
	vm.RegisterNative("java/util/Hashtable", "<init>", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			args[0].Ref().Native = &javaHashtable{m: map[hashKey]Value{}, refs: map[hashKey]*Object{}}
			return nilRet()
		})
	ht := func(t *Thread, o *Object) (*javaHashtable, *Object) {
		h, ok := o.Native.(*javaHashtable)
		if !ok {
			return nil, t.vm.Throw("java/lang/IllegalStateException", "Hashtable not initialized")
		}
		return h, nil
	}
	vm.RegisterNative("java/util/Hashtable", "put", "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h, ex := ht(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			if args[1].Ref() == nil || args[2].Ref() == nil {
				return Value{}, t.vm.Throw("java/lang/NullPointerException", "Hashtable.put"), nil
			}
			k := makeHashKey(args[1].Ref())
			old, had := h.m[k]
			h.m[k] = args[2]
			h.refs[k] = args[1].Ref()
			if !had {
				return NullV(), nil, nil
			}
			return old, nil, nil
		})
	vm.RegisterNative("java/util/Hashtable", "get", "(Ljava/lang/Object;)Ljava/lang/Object;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h, ex := ht(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			v, ok := h.m[makeHashKey(args[1].Ref())]
			if !ok {
				return NullV(), nil, nil
			}
			return v, nil, nil
		})
	vm.RegisterNative("java/util/Hashtable", "remove", "(Ljava/lang/Object;)Ljava/lang/Object;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h, ex := ht(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			k := makeHashKey(args[1].Ref())
			v, ok := h.m[k]
			if !ok {
				return NullV(), nil, nil
			}
			delete(h.m, k)
			delete(h.refs, k)
			return v, nil, nil
		})
	vm.RegisterNative("java/util/Hashtable", "containsKey", "(Ljava/lang/Object;)Z",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h, ex := ht(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			_, ok := h.m[makeHashKey(args[1].Ref())]
			return boolRet(ok)
		})
	vm.RegisterNative("java/util/Hashtable", "size", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h, ex := ht(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			return IntV(int32(len(h.m))), nil, nil
		})

	// java/util/Vector
	vm.RegisterNative("java/util/Vector", "<init>", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			args[0].Ref().Native = &javaVector{}
			return nilRet()
		})
	vec := func(t *Thread, o *Object) (*javaVector, *Object) {
		v, ok := o.Native.(*javaVector)
		if !ok {
			return nil, t.vm.Throw("java/lang/IllegalStateException", "Vector not initialized")
		}
		return v, nil
	}
	vm.RegisterNative("java/util/Vector", "addElement", "(Ljava/lang/Object;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			v, ex := vec(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			v.elems = append(v.elems, args[1])
			return nilRet()
		})
	vm.RegisterNative("java/util/Vector", "elementAt", "(I)Ljava/lang/Object;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			v, ex := vec(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			i := int(args[1].Int())
			if i < 0 || i >= len(v.elems) {
				return Value{}, t.vm.Throw("java/lang/ArrayIndexOutOfBoundsException", "Vector.elementAt"), nil
			}
			return v.elems[i], nil, nil
		})
	vm.RegisterNative("java/util/Vector", "setElementAt", "(Ljava/lang/Object;I)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			v, ex := vec(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			i := int(args[2].Int())
			if i < 0 || i >= len(v.elems) {
				return Value{}, t.vm.Throw("java/lang/ArrayIndexOutOfBoundsException", "Vector.setElementAt"), nil
			}
			v.elems[i] = args[1]
			return nilRet()
		})
	vm.RegisterNative("java/util/Vector", "size", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			v, ex := vec(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			return IntV(int32(len(v.elems))), nil, nil
		})

	// java/util/Random
	vm.RegisterNative("java/util/Random", "<init>", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			args[0].Ref().Native = &splitmix64{state: 0x5DEECE66D}
			return nilRet()
		})
	vm.RegisterNative("java/util/Random", "<init>", "(J)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			args[0].Ref().Native = &splitmix64{state: uint64(args[1].Long())}
			return nilRet()
		})
	rng := func(t *Thread, o *Object) (*splitmix64, *Object) {
		r, ok := o.Native.(*splitmix64)
		if !ok {
			return nil, t.vm.Throw("java/lang/IllegalStateException", "Random not initialized")
		}
		return r, nil
	}
	vm.RegisterNative("java/util/Random", "nextInt", "(I)I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			r, ex := rng(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			bound := args[1].Int()
			if bound <= 0 {
				return Value{}, t.vm.Throw("java/lang/IllegalArgumentException", "bound must be positive"), nil
			}
			return IntV(int32(r.next() % uint64(bound))), nil, nil
		})
	vm.RegisterNative("java/util/Random", "nextInt", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			r, ex := rng(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			return IntV(int32(r.next())), nil, nil
		})
	vm.RegisterNative("java/util/Random", "nextDouble", "()D",
		func(t *Thread, args []Value) (Value, *Object, error) {
			r, ex := rng(t, args[0].Ref())
			if ex != nil {
				return Value{}, ex, nil
			}
			return DoubleV(float64(r.next()>>11) / float64(1<<53)), nil, nil
		})
}
