package jvm

import (
	"bytes"
	"strings"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// newTestVM builds a VM over the given generated classes.
func newTestVM(t *testing.T, out *bytes.Buffer, builders ...*classgen.ClassBuilder) *VM {
	t.Helper()
	loader := MapLoader{}
	for _, b := range builders {
		data, err := b.BuildBytes()
		if err != nil {
			t.Fatalf("building class: %v", err)
		}
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Fatalf("parsing generated class: %v", err)
		}
		loader[cf.Name()] = data
	}
	var w *bytes.Buffer
	if out != nil {
		w = out
	} else {
		w = &bytes.Buffer{}
	}
	vm, err := New(loader, w)
	if err != nil {
		t.Fatalf("New VM: %v", err)
	}
	return vm
}

// callStatic invokes a static method and fails the test on VM errors.
func callStatic(t *testing.T, vm *VM, class, name, desc string, args ...Value) (Value, *Object) {
	t.Helper()
	v, thrown, err := vm.MainThread().InvokeByName(class, name, desc, args)
	if err != nil {
		t.Fatalf("%s.%s%s: vm error: %v", class, name, desc, err)
	}
	return v, thrown
}

func TestHelloWorld(t *testing.T) {
	b := classgen.NewClass("demo/Hello", "java/lang/Object")
	b.DefaultInit()
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	m.GetStatic("java/lang/System", "out", "Ljava/io/PrintStream;")
	m.LdcString("hello world")
	m.InvokeVirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
	m.Return()

	var out bytes.Buffer
	vm := newTestVM(t, &out, b)
	thrown, err := vm.RunMain("demo/Hello", nil)
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if thrown != nil {
		t.Fatalf("uncaught: %s", DescribeThrowable(thrown))
	}
	if got := out.String(); got != "hello world\n" {
		t.Errorf("output = %q", got)
	}
}

func TestArithmeticLoop(t *testing.T) {
	b := classgen.NewClass("demo/Sum", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "sum", "(I)I")
	m.IConst(0).IStore(1)
	m.IConst(0).IStore(2)
	head := m.Here()
	exit := m.NewLabel()
	m.ILoad(2).ILoad(0).Branch(bytecode.IfIcmpge, exit)
	m.ILoad(1).ILoad(2).IAdd().IStore(1)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(exit)
	m.ILoad(1).IReturn()

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/Sum", "sum", "(I)I", IntV(100))
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 4950 {
		t.Errorf("sum(100) = %d, want 4950", v.Int())
	}
}

func TestIntegerEdgeCases(t *testing.T) {
	b := classgen.NewClass("demo/Edge", "java/lang/Object")
	div := b.Method(classfile.AccPublic|classfile.AccStatic, "div", "(II)I")
	div.ILoad(0).ILoad(1).IDiv().IReturn()
	rem := b.Method(classfile.AccPublic|classfile.AccStatic, "rem", "(II)I")
	rem.ILoad(0).ILoad(1).IRem().IReturn()
	shift := b.Method(classfile.AccPublic|classfile.AccStatic, "ushr", "(II)I")
	shift.ILoad(0).ILoad(1).Inst(bytecode.Iushr).IReturn()

	vm := newTestVM(t, nil, b)

	// MinInt / -1 must not trap.
	v, thrown := callStatic(t, vm, "demo/Edge", "div", "(II)I", IntV(-2147483648), IntV(-1))
	if thrown != nil || v.Int() != -2147483648 {
		t.Errorf("MinInt/-1 = %v thrown=%v", v, thrown)
	}
	v, thrown = callStatic(t, vm, "demo/Edge", "rem", "(II)I", IntV(-2147483648), IntV(-1))
	if thrown != nil || v.Int() != 0 {
		t.Errorf("MinInt%%-1 = %v thrown=%v", v, thrown)
	}
	// Division by zero throws.
	_, thrown = callStatic(t, vm, "demo/Edge", "div", "(II)I", IntV(1), IntV(0))
	if thrown == nil || thrown.Class.Name != "java/lang/ArithmeticException" {
		t.Errorf("1/0 thrown = %v", DescribeThrowable(thrown))
	}
	// Unsigned shift and shift-distance masking.
	v, _ = callStatic(t, vm, "demo/Edge", "ushr", "(II)I", IntV(-1), IntV(28))
	if v.Int() != 15 {
		t.Errorf("-1 >>> 28 = %d, want 15", v.Int())
	}
	v, _ = callStatic(t, vm, "demo/Edge", "ushr", "(II)I", IntV(-1), IntV(33))
	if v.Int() != int32(uint32(0xFFFFFFFF)>>1) {
		t.Errorf("-1 >>> 33 = %d (shift distance must be masked to 1)", v.Int())
	}
}

func TestLongAndDoubleArithmetic(t *testing.T) {
	b := classgen.NewClass("demo/Wide", "java/lang/Object")
	lm := b.Method(classfile.AccPublic|classfile.AccStatic, "lmul", "(JJ)J")
	lm.LLoad(0).LLoad(2).Inst(bytecode.Lmul).LReturn()
	dm := b.Method(classfile.AccPublic|classfile.AccStatic, "davg", "(DD)D")
	dm.DLoad(0).DLoad(2).Inst(bytecode.Dadd).DConst(2).Inst(bytecode.Ddiv).Inst(bytecode.Dreturn)
	conv := b.Method(classfile.AccPublic|classfile.AccStatic, "l2i", "(J)I")
	conv.LLoad(0).Inst(bytecode.L2i).IReturn()

	vm := newTestVM(t, nil, b)
	v, _ := callStatic(t, vm, "demo/Wide", "lmul", "(JJ)J", LongV(1<<31), LongV(4))
	if v.Long() != 1<<33 {
		t.Errorf("lmul = %d", v.Long())
	}
	v, _ = callStatic(t, vm, "demo/Wide", "davg", "(DD)D", DoubleV(1.5), DoubleV(2.5))
	if v.Double() != 2.0 {
		t.Errorf("davg = %g", v.Double())
	}
	v, _ = callStatic(t, vm, "demo/Wide", "l2i", "(J)I", LongV(1<<33|7))
	if v.Int() != 7 {
		t.Errorf("l2i = %d", v.Int())
	}
}

func TestFieldsAndInheritance(t *testing.T) {
	base := classgen.NewClass("demo/Base", "java/lang/Object")
	base.Field(classfile.AccProtected, "x", "I")
	base.DefaultInit()
	getx := base.Method(classfile.AccPublic, "getX", "()I")
	getx.ALoad(0).GetField("demo/Base", "x", "I").IReturn()
	name := base.Method(classfile.AccPublic, "name", "()I")
	name.IConst(1).IReturn()

	sub := classgen.NewClass("demo/Sub", "demo/Base")
	sub.Field(classfile.AccPrivate, "y", "I")
	sub.DefaultInit()
	name2 := sub.Method(classfile.AccPublic, "name", "()I")
	name2.IConst(2).IReturn()

	driver := classgen.NewClass("demo/Drv", "java/lang/Object")
	run := driver.Method(classfile.AccPublic|classfile.AccStatic, "run", "()I")
	run.NewDup("demo/Sub")
	run.InvokeSpecial("demo/Sub", "<init>", "()V")
	run.AStore(0)
	// set inherited field through subclass reference
	run.ALoad(0).IConst(40).PutField("demo/Base", "x", "I")
	// virtual dispatch: name() resolves to Sub.name -> 2
	run.ALoad(0).InvokeVirtual("demo/Base", "name", "()I")
	// + getX() -> 40
	run.ALoad(0).InvokeVirtual("demo/Base", "getX", "()I")
	run.IAdd().IReturn()

	vm := newTestVM(t, nil, base, sub, driver)
	v, thrown := callStatic(t, vm, "demo/Drv", "run", "()I")
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 42 {
		t.Errorf("run = %d, want 42", v.Int())
	}
}

func TestStaticFieldsAndClinit(t *testing.T) {
	b := classgen.NewClass("demo/Stat", "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "counter", "I")
	cl := b.Method(classfile.AccStatic, "<clinit>", "()V")
	cl.IConst(7).PutStatic("demo/Stat", "counter", "I")
	cl.Return()
	get := b.Method(classfile.AccPublic|classfile.AccStatic, "get", "()I")
	get.GetStatic("demo/Stat", "counter", "I").IReturn()
	bump := b.Method(classfile.AccPublic|classfile.AccStatic, "bump", "()I")
	bump.GetStatic("demo/Stat", "counter", "I").IConst(1).IAdd()
	bump.Dup().PutStatic("demo/Stat", "counter", "I")
	bump.IReturn()

	vm := newTestVM(t, nil, b)
	v, _ := callStatic(t, vm, "demo/Stat", "get", "()I")
	if v.Int() != 7 {
		t.Errorf("clinit did not run: counter = %d", v.Int())
	}
	v, _ = callStatic(t, vm, "demo/Stat", "bump", "()I")
	if v.Int() != 8 {
		t.Errorf("bump = %d", v.Int())
	}
	// clinit must not run twice.
	v, _ = callStatic(t, vm, "demo/Stat", "get", "()I")
	if v.Int() != 8 {
		t.Errorf("counter reset by second clinit: %d", v.Int())
	}
}

func TestInterfaceDispatch(t *testing.T) {
	iface := classgen.NewClass("demo/Greeter", "java/lang/Object")
	iface.SetFlags(classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract)
	iface.AbstractMethod(classfile.AccPublic|classfile.AccAbstract, "greet", "()I")

	impl := classgen.NewClass("demo/English", "java/lang/Object")
	impl.AddInterface("demo/Greeter")
	impl.DefaultInit()
	g := impl.Method(classfile.AccPublic, "greet", "()I")
	g.IConst(99).IReturn()

	drv := classgen.NewClass("demo/IDrv", "java/lang/Object")
	run := drv.Method(classfile.AccPublic|classfile.AccStatic, "run", "()I")
	run.NewDup("demo/English")
	run.InvokeSpecial("demo/English", "<init>", "()V")
	run.InvokeInterface("demo/Greeter", "greet", "()I")
	run.IReturn()

	vm := newTestVM(t, nil, iface, impl, drv)
	v, thrown := callStatic(t, vm, "demo/IDrv", "run", "()I")
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 99 {
		t.Errorf("greet = %d", v.Int())
	}
	// instanceof through the interface
	eng, _ := vm.Class("demo/English")
	gr, _ := vm.Class("demo/Greeter")
	if !eng.AssignableTo(gr) {
		t.Error("English not assignable to Greeter")
	}
}

func TestExceptionsThrowCatch(t *testing.T) {
	b := classgen.NewClass("demo/Exc", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	start := m.Here()
	// if (x == 0) throw new RuntimeException("boom"); return 10;
	skip := m.NewLabel()
	m.ILoad(0).Branch(bytecode.Ifne, skip)
	m.NewDup("java/lang/RuntimeException")
	m.LdcString("boom")
	m.InvokeSpecial("java/lang/RuntimeException", "<init>", "(Ljava/lang/String;)V")
	m.AThrow()
	m.Mark(skip)
	m.IConst(10).IReturn()
	end := m.NewLabel()
	m.Mark(end)
	handler := m.Here()
	m.Pop()
	m.IConst(20).IReturn()
	m.Handler(start, end, handler, "java/lang/RuntimeException")

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/Exc", "f", "(I)I", IntV(0))
	if thrown != nil {
		t.Fatalf("should have been caught: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 20 {
		t.Errorf("caught path = %d, want 20", v.Int())
	}
	v, thrown = callStatic(t, vm, "demo/Exc", "f", "(I)I", IntV(1))
	if thrown != nil || v.Int() != 10 {
		t.Errorf("normal path = %d thrown=%v", v.Int(), thrown)
	}
}

func TestExceptionPropagatesAcrossFrames(t *testing.T) {
	b := classgen.NewClass("demo/Prop", "java/lang/Object")
	inner := b.Method(classfile.AccPublic|classfile.AccStatic, "inner", "()V")
	inner.NewDup("java/lang/IllegalStateException")
	inner.LdcString("deep")
	inner.InvokeSpecial("java/lang/IllegalStateException", "<init>", "(Ljava/lang/String;)V")
	inner.AThrow()
	outer := b.Method(classfile.AccPublic|classfile.AccStatic, "outer", "()I")
	s := outer.Here()
	outer.InvokeStatic("demo/Prop", "inner", "()V")
	outer.IConst(0).IReturn()
	e := outer.NewLabel()
	outer.Mark(e)
	h := outer.Here()
	// Return the message length to prove we caught the right object.
	outer.InvokeVirtual("java/lang/Throwable", "getMessage", "()Ljava/lang/String;")
	outer.InvokeVirtual("java/lang/String", "length", "()I")
	outer.IReturn()
	outer.Handler(s, e, h, "java/lang/RuntimeException")

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/Prop", "outer", "()I")
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 4 {
		t.Errorf("message length = %d, want 4", v.Int())
	}
}

func TestUncaughtExceptionSurfaces(t *testing.T) {
	b := classgen.NewClass("demo/Unc", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()V")
	m.AConstNull()
	m.InvokeVirtual("java/lang/Object", "hashCode", "()I")
	m.Pop()
	m.Return()
	vm := newTestVM(t, nil, b)
	_, thrown := callStatic(t, vm, "demo/Unc", "f", "()V")
	if thrown == nil || thrown.Class.Name != "java/lang/NullPointerException" {
		t.Errorf("thrown = %v", DescribeThrowable(thrown))
	}
}

func TestArrays(t *testing.T) {
	b := classgen.NewClass("demo/Arr", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "sumSquares", "(I)I")
	// int[] a = new int[n]; for i: a[i] = i*i; sum
	m.ILoad(0).NewArray(bytecode.TInt).AStore(1)
	m.IConst(0).IStore(2)
	head := m.Here()
	fill := m.NewLabel()
	m.ILoad(2).ILoad(0).Branch(bytecode.IfIcmpge, fill)
	m.ALoad(1).ILoad(2).ILoad(2).ILoad(2).IMul().Inst(bytecode.Iastore)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(fill)
	m.IConst(0).IStore(3) // sum
	m.IConst(0).IStore(2)
	head2 := m.Here()
	done := m.NewLabel()
	m.ILoad(2).ALoad(1).ArrayLength().Branch(bytecode.IfIcmpge, done)
	m.ILoad(3).ALoad(1).ILoad(2).Inst(bytecode.Iaload).IAdd().IStore(3)
	m.IInc(2, 1)
	m.Goto(head2)
	m.Mark(done)
	m.ILoad(3).IReturn()

	oob := b.Method(classfile.AccPublic|classfile.AccStatic, "oob", "()I")
	oob.IConst(3).NewArray(bytecode.TInt).AStore(0)
	oob.ALoad(0).IConst(5).Inst(bytecode.Iaload).IReturn()

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/Arr", "sumSquares", "(I)I", IntV(10))
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 285 {
		t.Errorf("sumSquares(10) = %d, want 285", v.Int())
	}
	_, thrown = callStatic(t, vm, "demo/Arr", "oob", "()I")
	if thrown == nil || thrown.Class.Name != "java/lang/ArrayIndexOutOfBoundsException" {
		t.Errorf("oob thrown = %v", DescribeThrowable(thrown))
	}
}

func TestMultiANewArray(t *testing.T) {
	b := classgen.NewClass("demo/MArr", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "grid", "()I")
	m.IConst(3).IConst(4)
	m.Raw(bytecode.Inst{Op: bytecode.Multianewarray, Index: b.Pool().AddClass("[[I"), Dims: 2})
	m.AStore(0)
	m.ALoad(0).IConst(2).Inst(bytecode.Aaload).ArrayLength().IReturn()

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/MArr", "grid", "()I")
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 4 {
		t.Errorf("inner length = %d, want 4", v.Int())
	}
}

func TestStringsAndStringBuffer(t *testing.T) {
	b := classgen.NewClass("demo/Str", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "build", "(I)Ljava/lang/String;")
	m.NewDup("java/lang/StringBuffer")
	m.InvokeSpecial("java/lang/StringBuffer", "<init>", "()V")
	m.LdcString("n=")
	m.InvokeVirtual("java/lang/StringBuffer", "append", "(Ljava/lang/String;)Ljava/lang/StringBuffer;")
	m.ILoad(0)
	m.InvokeVirtual("java/lang/StringBuffer", "append", "(I)Ljava/lang/StringBuffer;")
	m.InvokeVirtual("java/lang/StringBuffer", "toString", "()Ljava/lang/String;")
	m.AReturn()

	eq := b.Method(classfile.AccPublic|classfile.AccStatic, "eq", "()Z")
	eq.LdcString("abc")
	eq.LdcString("ab")
	eq.LdcString("c")
	eq.InvokeVirtual("java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;")
	eq.InvokeVirtual("java/lang/String", "equals", "(Ljava/lang/Object;)Z")
	eq.IReturn()

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/Str", "build", "(I)Ljava/lang/String;", IntV(42))
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if got := GoString(v.Ref()); got != "n=42" {
		t.Errorf("build = %q", got)
	}
	v, _ = callStatic(t, vm, "demo/Str", "eq", "()Z")
	if v.Int() != 1 {
		t.Error("\"abc\".equals(\"ab\".concat(\"c\")) = false")
	}
}

func TestSwitchExecution(t *testing.T) {
	b := classgen.NewClass("demo/Sw", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "t", "(I)I")
	def := m.NewLabel()
	a1 := m.NewLabel()
	a2 := m.NewLabel()
	m.ILoad(0)
	m.TableSwitch(5, def, a1, a2)
	m.Mark(a1)
	m.IConst(50).IReturn()
	m.Mark(a2)
	m.IConst(60).IReturn()
	m.Mark(def)
	m.IConst(-1).IReturn()

	l := b.Method(classfile.AccPublic|classfile.AccStatic, "l", "(I)I")
	ldef := l.NewLabel()
	la := l.NewLabel()
	lb := l.NewLabel()
	l.ILoad(0)
	l.LookupSwitch(ldef, []int32{-100, 1000}, []classgen.Label{la, lb})
	l.Mark(la)
	l.IConst(1).IReturn()
	l.Mark(lb)
	l.IConst(2).IReturn()
	l.Mark(ldef)
	l.IConst(0).IReturn()

	vm := newTestVM(t, nil, b)
	cases := []struct{ in, want int32 }{{5, 50}, {6, 60}, {7, -1}, {4, -1}}
	for _, c := range cases {
		v, _ := callStatic(t, vm, "demo/Sw", "t", "(I)I", IntV(c.in))
		if v.Int() != c.want {
			t.Errorf("t(%d) = %d, want %d", c.in, v.Int(), c.want)
		}
	}
	lcases := []struct{ in, want int32 }{{-100, 1}, {1000, 2}, {0, 0}}
	for _, c := range lcases {
		v, _ := callStatic(t, vm, "demo/Sw", "l", "(I)I", IntV(c.in))
		if v.Int() != c.want {
			t.Errorf("l(%d) = %d, want %d", c.in, v.Int(), c.want)
		}
	}
}

func TestRecursionAndStackOverflow(t *testing.T) {
	b := classgen.NewClass("demo/Rec", "java/lang/Object")
	fact := b.Method(classfile.AccPublic|classfile.AccStatic, "fact", "(I)I")
	base := fact.NewLabel()
	fact.ILoad(0).IConst(1).Branch(bytecode.IfIcmple, base)
	fact.ILoad(0)
	fact.ILoad(0).IConst(1).ISub()
	fact.InvokeStatic("demo/Rec", "fact", "(I)I")
	fact.IMul().IReturn()
	fact.Mark(base)
	fact.IConst(1).IReturn()

	inf := b.Method(classfile.AccPublic|classfile.AccStatic, "inf", "()V")
	inf.InvokeStatic("demo/Rec", "inf", "()V")
	inf.Return()

	vm := newTestVM(t, nil, b)
	v, _ := callStatic(t, vm, "demo/Rec", "fact", "(I)I", IntV(10))
	if v.Int() != 3628800 {
		t.Errorf("fact(10) = %d", v.Int())
	}
	_, thrown := callStatic(t, vm, "demo/Rec", "inf", "()V")
	if thrown == nil || thrown.Class.Name != "java/lang/StackOverflowError" {
		t.Errorf("inf thrown = %v", DescribeThrowable(thrown))
	}
}

func TestCheckcastAndInstanceof(t *testing.T) {
	b := classgen.NewClass("demo/Cast", "java/lang/Object")
	good := b.Method(classfile.AccPublic|classfile.AccStatic, "good", "()I")
	good.LdcString("s")
	good.CheckCast("java/lang/String")
	good.InvokeVirtual("java/lang/String", "length", "()I")
	good.IReturn()
	bad := b.Method(classfile.AccPublic|classfile.AccStatic, "bad", "()V")
	bad.NewDup("java/lang/Object")
	bad.InvokeSpecial("java/lang/Object", "<init>", "()V")
	bad.CheckCast("java/lang/String")
	bad.Pop()
	bad.Return()
	iof := b.Method(classfile.AccPublic|classfile.AccStatic, "iof", "()I")
	iof.LdcString("x").InstanceOf("java/lang/String")
	iof.AConstNull().InstanceOf("java/lang/String")
	iof.IAdd().IReturn()

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/Cast", "good", "()I")
	if thrown != nil || v.Int() != 1 {
		t.Errorf("good = %d thrown=%v", v.Int(), thrown)
	}
	_, thrown = callStatic(t, vm, "demo/Cast", "bad", "()V")
	if thrown == nil || thrown.Class.Name != "java/lang/ClassCastException" {
		t.Errorf("bad thrown = %v", DescribeThrowable(thrown))
	}
	v, _ = callStatic(t, vm, "demo/Cast", "iof", "()I")
	if v.Int() != 1 {
		t.Errorf("instanceof sum = %d (string:1 + null:0)", v.Int())
	}
}

func TestGCCollectsGarbage(t *testing.T) {
	b := classgen.NewClass("demo/Gc", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "churn", "(I)V")
	head := m.Here()
	exit := m.NewLabel()
	m.ILoad(0).Branch(bytecode.Ifle, exit)
	m.NewDup("java/lang/Object")
	m.InvokeSpecial("java/lang/Object", "<init>", "()V")
	m.Pop()
	m.IInc(0, -1)
	m.Goto(head)
	m.Mark(exit)
	m.Return()

	vm := newTestVM(t, nil, b)
	vm.SetGCThreshold(512)
	before := vm.HeapCount()
	_, thrown := callStatic(t, vm, "demo/Gc", "churn", "(I)V", IntV(10000))
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	vm.GC()
	if vm.Stats.GCRuns == 0 {
		t.Error("GC never ran")
	}
	if vm.Stats.ObjectsCollected < 9000 {
		t.Errorf("collected only %d of 10000 garbage objects", vm.Stats.ObjectsCollected)
	}
	if vm.HeapCount() > before+100 {
		t.Errorf("heap grew from %d to %d despite GC", before, vm.HeapCount())
	}
}

func TestGCPreservesReachable(t *testing.T) {
	b := classgen.NewClass("demo/Keep", "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "kept", "Ljava/lang/Object;")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "set", "()V")
	m.NewDup("java/lang/Object")
	m.InvokeSpecial("java/lang/Object", "<init>", "()V")
	m.PutStatic("demo/Keep", "kept", "Ljava/lang/Object;")
	m.Return()
	g := b.Method(classfile.AccPublic|classfile.AccStatic, "get", "()Ljava/lang/Object;")
	g.GetStatic("demo/Keep", "kept", "Ljava/lang/Object;").AReturn()

	vm := newTestVM(t, nil, b)
	callStatic(t, vm, "demo/Keep", "set", "()V")
	vm.GC()
	v, _ := callStatic(t, vm, "demo/Keep", "get", "()Ljava/lang/Object;")
	if v.Ref() == nil {
		t.Fatal("statically reachable object was collected")
	}
}

func TestVirtualFileIO(t *testing.T) {
	b := classgen.NewClass("demo/Io", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "readFirst", "(Ljava/lang/String;)I")
	m.NewDup("java/io/FileInputStream")
	m.ALoad(0)
	m.InvokeSpecial("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
	m.AStore(1)
	m.ALoad(1).InvokeVirtual("java/io/FileInputStream", "read", "()I")
	m.IStore(2)
	m.ALoad(1).InvokeVirtual("java/io/FileInputStream", "close", "()V")
	m.ILoad(2).IReturn()

	vm := newTestVM(t, nil, b)
	vm.VFS.Write("/etc/data", []byte{0x41, 0x42})
	v, thrown := callStatic(t, vm, "demo/Io", "readFirst", "(Ljava/lang/String;)I",
		RefV(vm.InternString("/etc/data")))
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 0x41 {
		t.Errorf("read = %d", v.Int())
	}
	_, thrown = callStatic(t, vm, "demo/Io", "readFirst", "(Ljava/lang/String;)I",
		RefV(vm.InternString("/missing")))
	if thrown == nil || thrown.Class.Name != "java/io/FileNotFoundException" {
		t.Errorf("missing file thrown = %v", DescribeThrowable(thrown))
	}
}

func TestRTVerifierDefaultChecks(t *testing.T) {
	b := classgen.NewClass("demo/Link", "java/lang/Object")
	ok := b.Method(classfile.AccPublic|classfile.AccStatic, "ok", "()V")
	ok.LdcString("java/lang/System")
	ok.LdcString("out")
	ok.LdcString("Ljava/io/PrintStream;")
	ok.InvokeStatic("dvm/RTVerifier", "checkField", "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
	ok.Return()
	bad := b.Method(classfile.AccPublic|classfile.AccStatic, "bad", "()V")
	bad.LdcString("java/lang/System")
	bad.LdcString("nonesuch")
	bad.LdcString("I")
	bad.InvokeStatic("dvm/RTVerifier", "checkField", "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
	bad.Return()

	vm := newTestVM(t, nil, b)
	_, thrown := callStatic(t, vm, "demo/Link", "ok", "()V")
	if thrown != nil {
		t.Errorf("valid link check threw %s", DescribeThrowable(thrown))
	}
	_, thrown = callStatic(t, vm, "demo/Link", "bad", "()V")
	if thrown == nil || thrown.Class.Name != "java/lang/NoSuchFieldError" {
		t.Errorf("bad link check thrown = %v", DescribeThrowable(thrown))
	}
	if vm.Stats.LinkChecks != 2 {
		t.Errorf("LinkChecks = %d, want 2", vm.Stats.LinkChecks)
	}
}

func TestEnforceFailsClosedWithoutManager(t *testing.T) {
	b := classgen.NewClass("demo/Enf", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()V")
	m.LdcString("file.open")
	m.LdcString("/etc/passwd")
	m.InvokeStatic("dvm/Enforce", "check", "(Ljava/lang/String;Ljava/lang/String;)V")
	m.Return()
	vm := newTestVM(t, nil, b)
	_, thrown := callStatic(t, vm, "demo/Enf", "f", "()V")
	if thrown == nil || thrown.Class.Name != "java/lang/SecurityException" {
		t.Errorf("thrown = %v", DescribeThrowable(thrown))
	}
}

func TestHashtableAndVector(t *testing.T) {
	b := classgen.NewClass("demo/Coll", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()I")
	m.NewDup("java/util/Hashtable")
	m.InvokeSpecial("java/util/Hashtable", "<init>", "()V")
	m.AStore(0)
	m.ALoad(0).LdcString("k").LdcString("v")
	m.InvokeVirtual("java/util/Hashtable", "put", "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;")
	m.Pop()
	m.ALoad(0).LdcString("k")
	m.InvokeVirtual("java/util/Hashtable", "get", "(Ljava/lang/Object;)Ljava/lang/Object;")
	m.CheckCast("java/lang/String")
	m.InvokeVirtual("java/lang/String", "length", "()I")
	m.ALoad(0).InvokeVirtual("java/util/Hashtable", "size", "()I")
	m.IAdd()
	m.IReturn()
	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/Coll", "f", "()I")
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 2 {
		t.Errorf("f = %d, want 2 (len(v)=1 + size=1)", v.Int())
	}
}

func TestJsrRetSubroutine(t *testing.T) {
	// Emulates the javac "finally" idiom: jsr to a subroutine that
	// increments a counter, then return.
	b := classgen.NewClass("demo/Jsr", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()I")
	sub := m.NewLabel()
	after := m.NewLabel()
	m.IConst(10).IStore(0)
	m.Branch(bytecode.Jsr, sub)
	m.Goto(after)
	m.Mark(sub)
	m.AStore(1) // return address
	m.IInc(0, 5)
	m.Raw(bytecode.Inst{Op: bytecode.Ret, Index: 1})
	m.Mark(after)
	m.ILoad(0).IReturn()

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "demo/Jsr", "f", "()I")
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 15 {
		t.Errorf("f = %d, want 15", v.Int())
	}
}

func TestRunMainPassesArgs(t *testing.T) {
	b := classgen.NewClass("demo/Args", "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "got", "I")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	m.ALoad(0).ArrayLength()
	m.ALoad(0).IConst(0).Inst(bytecode.Aaload)
	m.CheckCast("java/lang/String")
	m.InvokeVirtual("java/lang/String", "length", "()I")
	m.IAdd()
	m.PutStatic("demo/Args", "got", "I")
	m.Return()

	vm := newTestVM(t, nil, b)
	thrown, err := vm.RunMain("demo/Args", []string{"abc", "d"})
	if err != nil || thrown != nil {
		t.Fatalf("RunMain: %v / %v", err, DescribeThrowable(thrown))
	}
	c, _ := vm.Class("demo/Args")
	_, slot, _ := c.StaticSlot("got", "I")
	if got := c.GetStatic(slot).Int(); got != 5 {
		t.Errorf("main saw %d, want 5 (2 args + len 3)", got)
	}
}

func TestMaxInstructionsBudget(t *testing.T) {
	b := classgen.NewClass("demo/Spin", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "spin", "()V")
	h := m.Here()
	m.Goto(h)
	m.Return()
	vm := newTestVM(t, nil, b)
	vm.MaxInstructions = 10000
	_, _, err := vm.MainThread().InvokeByName("demo/Spin", "spin", "()V", nil)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v, want budget exhaustion", err)
	}
}

func TestStackIntrospectionSupport(t *testing.T) {
	b := classgen.NewClass("demo/Walk", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "depth", "()I")
	m.InvokeStatic("demo/Walk", "helper", "()I")
	m.IReturn()
	h := b.Method(classfile.AccPublic|classfile.AccStatic, "helper", "()I")
	h.IConst(0).IReturn()

	vm := newTestVM(t, nil, b)
	var classesSeen []string
	vm.RegisterNative("demo/Walk", "helper", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			for _, c := range t.FrameClasses() {
				classesSeen = append(classesSeen, c.Name)
			}
			return IntV(int32(t.Depth())), nil, nil
		})
	v, thrown := callStatic(t, vm, "demo/Walk", "depth", "()I")
	if thrown != nil {
		t.Fatalf("thrown: %s", DescribeThrowable(thrown))
	}
	if v.Int() != 2 {
		t.Errorf("depth = %d, want 2", v.Int())
	}
	if len(classesSeen) != 2 || classesSeen[0] != "demo/Walk" {
		t.Errorf("classesSeen = %v", classesSeen)
	}
}
