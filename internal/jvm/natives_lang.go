package jvm

import (
	"strconv"
	"strings"
	"unicode"
)

// registerLangExtras installs the wrapper-class natives and the String
// operations beyond the core set (registered from registerCoreNatives).
func (vm *VM) registerLangExtras() {
	// java/lang/Long
	vm.RegisterNative("java/lang/Long", "parseLong", "(Ljava/lang/String;)J",
		func(t *Thread, args []Value) (Value, *Object, error) {
			n, err := strconv.ParseInt(strings.TrimSpace(argStr(args, 0)), 10, 64)
			if err != nil {
				return Value{}, t.vm.Throw("java/lang/NumberFormatException", argStr(args, 0)), nil
			}
			return LongV(n), nil, nil
		})
	vm.RegisterNative("java/lang/Long", "toString", "(J)Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return strRet(t, strconv.FormatInt(args[0].Long(), 10))
		})

	// java/lang/Character
	charPred := func(pred func(rune) bool) NativeFunc {
		return func(t *Thread, args []Value) (Value, *Object, error) {
			return boolRet(pred(rune(uint16(args[0].Int()))))
		}
	}
	vm.RegisterNative("java/lang/Character", "isDigit", "(C)Z", charPred(unicode.IsDigit))
	vm.RegisterNative("java/lang/Character", "isLetter", "(C)Z", charPred(unicode.IsLetter))
	vm.RegisterNative("java/lang/Character", "isWhitespace", "(C)Z", charPred(unicode.IsSpace))
	vm.RegisterNative("java/lang/Character", "toUpperCase", "(C)C",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return IntV(int32(uint16(unicode.ToUpper(rune(uint16(args[0].Int())))))), nil, nil
		})
	vm.RegisterNative("java/lang/Character", "toLowerCase", "(C)C",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return IntV(int32(uint16(unicode.ToLower(rune(uint16(args[0].Int())))))), nil, nil
		})

	// java/lang/Boolean
	vm.RegisterNative("java/lang/Boolean", "toString", "(Z)Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			if args[0].Int() != 0 {
				return strRet(t, "true")
			}
			return strRet(t, "false")
		})

	// java/lang/String extras
	vm.RegisterNative("java/lang/String", "toLowerCase", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return RefV(t.vm.NewString(strings.ToLower(GoString(args[0].Ref())))), nil, nil
		})
	vm.RegisterNative("java/lang/String", "toUpperCase", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return RefV(t.vm.NewString(strings.ToUpper(GoString(args[0].Ref())))), nil, nil
		})
	vm.RegisterNative("java/lang/String", "trim", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			// Java's trim removes chars <= ' ' from both ends.
			return RefV(t.vm.NewString(strings.Trim(GoString(args[0].Ref()), "\x00\x01\x02\x03\x04\x05\x06\x07\x08\t\n\x0b\x0c\r\x0e\x0f\x10\x11\x12\x13\x14\x15\x16\x17\x18\x19\x1a\x1b\x1c\x1d\x1e\x1f "))), nil, nil
		})
	vm.RegisterNative("java/lang/String", "replace", "(CC)Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			old := string(rune(uint16(args[1].Int())))
			new_ := string(rune(uint16(args[2].Int())))
			return RefV(t.vm.NewString(strings.ReplaceAll(GoString(args[0].Ref()), old, new_))), nil, nil
		})
	vm.RegisterNative("java/lang/String", "lastIndexOf", "(I)I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return IntV(int32(strings.LastIndexByte(GoString(args[0].Ref()), byte(args[1].Int())))), nil, nil
		})
	vm.RegisterNative("java/lang/String", "toCharArray", "()[C",
		func(t *Thread, args []Value) (Value, *Object, error) {
			s := GoString(args[0].Ref())
			ac, err := t.vm.arrayClass("C")
			if err != nil {
				return Value{}, nil, err
			}
			arr := t.vm.NewArray(ac, len(s))
			for i := 0; i < len(s); i++ {
				arr.Elems[i] = IntV(int32(s[i]))
			}
			return RefV(arr), nil, nil
		})
}
