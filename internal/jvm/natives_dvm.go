package jvm

import "strings"

// The dvm/* natives are the client halves of the DVM's dynamic service
// components. Static services on the network proxy rewrite application
// code to call them:
//
//	dvm/RTVerifier — deferred link-phase verification checks (§3.1,
//	  Figure 3): "the functionality in the dynamic component is limited
//	  to a descriptor lookup and string comparison."
//	dvm/Enforce    — the security enforcement manager's check entry
//	  point (§3.2, Figure 4).
//	dvm/Audit      — remote-monitoring events (§3.3).
//	dvm/Profile    — first-use profiling feeding the repartitioning
//	  optimizer (§5).
func (vm *VM) registerDVMNatives() {
	vm.RegisterNative("dvm/RTVerifier", "checkField",
		"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			t.vm.Stats.LinkChecks++
			cls, field, desc := argStr(args, 0), argStr(args, 1), argStr(args, 2)
			if lc := t.vm.CheckLink; lc != nil {
				return Value{}, lc.CheckField(t, cls, field, desc), nil
			}
			return Value{}, t.vm.defaultCheckField(cls, field, desc), nil
		})
	vm.RegisterNative("dvm/RTVerifier", "checkMethod",
		"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			t.vm.Stats.LinkChecks++
			cls, method, desc := argStr(args, 0), argStr(args, 1), argStr(args, 2)
			if lc := t.vm.CheckLink; lc != nil {
				return Value{}, lc.CheckMethod(t, cls, method, desc), nil
			}
			return Value{}, t.vm.defaultCheckMethod(cls, method, desc), nil
		})
	vm.RegisterNative("dvm/RTVerifier", "checkClass",
		"(Ljava/lang/String;Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			t.vm.Stats.LinkChecks++
			cls, relation := argStr(args, 0), argStr(args, 1)
			return Value{}, t.vm.defaultCheckClass(cls, relation), nil
		})

	vm.RegisterNative("dvm/Enforce", "check",
		"(Ljava/lang/String;Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			t.vm.Stats.SecurityChecks++
			perm, target := argStr(args, 0), argStr(args, 1)
			if ac := t.vm.CheckAccess; ac != nil {
				return Value{}, ac.Check(t, perm, target), nil
			}
			// No enforcement manager installed: fail closed, as the paper's
			// mandatory-check design requires.
			return Value{}, t.vm.Throw("java/lang/SecurityException",
				"no enforcement manager for "+perm), nil
		})

	vm.RegisterNative("dvm/Audit", "enter",
		"(Ljava/lang/String;Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			t.vm.Stats.AuditEvents++
			if f := t.vm.OnAudit; f != nil {
				f(AuditEvent{Class: argStr(args, 0), Method: argStr(args, 1), Kind: "enter"})
			}
			return nilRet()
		})
	vm.RegisterNative("dvm/Audit", "exit",
		"(Ljava/lang/String;Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			t.vm.Stats.AuditEvents++
			if f := t.vm.OnAudit; f != nil {
				f(AuditEvent{Class: argStr(args, 0), Method: argStr(args, 1), Kind: "exit"})
			}
			return nilRet()
		})

	vm.RegisterNative("dvm/Profile", "firstUse",
		"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			if f := t.vm.OnFirstUse; f != nil {
				f(argStr(args, 0), argStr(args, 1), argStr(args, 2))
			}
			return nilRet()
		})
}

func internalName(s string) string { return strings.ReplaceAll(s, ".", "/") }

// defaultCheckField is the built-in link checker: resolve the class in
// the client namespace and confirm it exports the field.
func (vm *VM) defaultCheckField(cls, field, desc string) *Object {
	c, err := vm.Class(internalName(cls))
	if err != nil {
		return vm.Throw("java/lang/NoClassDefFoundError", cls)
	}
	if !c.HasField(field, desc) {
		return vm.Throw("java/lang/NoSuchFieldError", cls+"."+field+" "+desc)
	}
	return nil
}

// defaultCheckMethod confirms the class exports the method.
func (vm *VM) defaultCheckMethod(cls, method, desc string) *Object {
	c, err := vm.Class(internalName(cls))
	if err != nil {
		return vm.Throw("java/lang/NoClassDefFoundError", cls)
	}
	if c.LookupMethod(method, desc) == nil {
		return vm.Throw("java/lang/NoSuchMethodError", cls+"."+method+desc)
	}
	return nil
}

// defaultCheckClass confirms an inheritance assumption of the form
// "sub extends super" or "cls implements iface" recorded by the static
// verifier.
func (vm *VM) defaultCheckClass(cls, relation string) *Object {
	c, err := vm.Class(internalName(cls))
	if err != nil {
		return vm.Throw("java/lang/NoClassDefFoundError", cls)
	}
	if relation == "" {
		return nil
	}
	target, err := vm.Class(internalName(relation))
	if err != nil {
		return vm.Throw("java/lang/NoClassDefFoundError", relation)
	}
	if !c.AssignableTo(target) {
		return vm.Throw("java/lang/VerifyError", cls+" is not assignable to "+relation)
	}
	return nil
}
