package jvm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Argument helpers for native implementations.

func argStr(args []Value, i int) string { return GoString(args[i].Ref()) }

func nilRet() (Value, *Object, error) { return Value{}, nil, nil }

func strRet(t *Thread, s string) (Value, *Object, error) {
	return RefV(t.vm.InternString(s)), nil, nil
}

func boolRet(b bool) (Value, *Object, error) {
	if b {
		return IntV(1), nil, nil
	}
	return IntV(0), nil, nil
}

// libCheck routes an anticipated library security hook through the
// monolithic security manager, if one is installed.
func (vm *VM) libCheck(t *Thread, permission, target string) *Object {
	if vm.BuiltinChecks == nil {
		return nil
	}
	return vm.BuiltinChecks.Check(t, permission, target)
}

func (vm *VM) registerCoreNatives() {
	// java/lang/Object
	vm.RegisterNative("java/lang/Object", "<init>", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() })
	vm.RegisterNative("java/lang/Object", "hashCode", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return IntV(args[0].Ref().IdentityHash()), nil, nil
		})
	vm.RegisterNative("java/lang/Object", "equals", "(Ljava/lang/Object;)Z",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return boolRet(args[0].Ref() == args[1].Ref())
		})
	vm.RegisterNative("java/lang/Object", "toString", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			o := args[0].Ref()
			return strRet(t, fmt.Sprintf("%s@%x", o.Class.Name, o.IdentityHash()))
		})
	vm.RegisterNative("java/lang/Object", "getClass", "()Ljava/lang/Class;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return RefV(t.vm.classObject(args[0].Ref().Class)), nil, nil
		})

	// java/lang/Class
	vm.RegisterNative("java/lang/Class", "getName", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			c := args[0].Ref().Native.(*Class)
			return strRet(t, strings.ReplaceAll(c.Name, "/", "."))
		})

	// java/lang/String
	reg := func(name, desc string, fn NativeFunc) { vm.RegisterNative("java/lang/String", name, desc, fn) }
	reg("length", "()I", func(t *Thread, args []Value) (Value, *Object, error) {
		return IntV(int32(len(GoString(args[0].Ref())))), nil, nil
	})
	reg("charAt", "(I)C", func(t *Thread, args []Value) (Value, *Object, error) {
		s := GoString(args[0].Ref())
		i := args[1].Int()
		if int(i) < 0 || int(i) >= len(s) {
			return Value{}, t.vm.Throw("java/lang/StringIndexOutOfBoundsException", fmt.Sprint(i)), nil
		}
		return IntV(int32(s[i])), nil, nil
	})
	reg("equals", "(Ljava/lang/Object;)Z", func(t *Thread, args []Value) (Value, *Object, error) {
		other := args[1].Ref()
		if other == nil || other.Class.Name != "java/lang/String" {
			return boolRet(false)
		}
		return boolRet(GoString(args[0].Ref()) == GoString(other))
	})
	reg("hashCode", "()I", func(t *Thread, args []Value) (Value, *Object, error) {
		return IntV(javaStringHash(GoString(args[0].Ref()))), nil, nil
	})
	reg("concat", "(Ljava/lang/String;)Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		return RefV(t.vm.NewString(GoString(args[0].Ref()) + argStr(args, 1))), nil, nil
	})
	reg("substring", "(II)Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		s := GoString(args[0].Ref())
		a, b := int(args[1].Int()), int(args[2].Int())
		if a < 0 || b > len(s) || a > b {
			return Value{}, t.vm.Throw("java/lang/StringIndexOutOfBoundsException", fmt.Sprintf("begin %d, end %d, length %d", a, b, len(s))), nil
		}
		return RefV(t.vm.NewString(s[a:b])), nil, nil
	})
	reg("substring", "(I)Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		s := GoString(args[0].Ref())
		a := int(args[1].Int())
		if a < 0 || a > len(s) {
			return Value{}, t.vm.Throw("java/lang/StringIndexOutOfBoundsException", fmt.Sprint(a)), nil
		}
		return RefV(t.vm.NewString(s[a:])), nil, nil
	})
	reg("indexOf", "(I)I", func(t *Thread, args []Value) (Value, *Object, error) {
		return IntV(int32(strings.IndexByte(GoString(args[0].Ref()), byte(args[1].Int())))), nil, nil
	})
	reg("indexOf", "(Ljava/lang/String;)I", func(t *Thread, args []Value) (Value, *Object, error) {
		return IntV(int32(strings.Index(GoString(args[0].Ref()), argStr(args, 1)))), nil, nil
	})
	reg("compareTo", "(Ljava/lang/String;)I", func(t *Thread, args []Value) (Value, *Object, error) {
		return IntV(int32(strings.Compare(GoString(args[0].Ref()), argStr(args, 1)))), nil, nil
	})
	reg("startsWith", "(Ljava/lang/String;)Z", func(t *Thread, args []Value) (Value, *Object, error) {
		return boolRet(strings.HasPrefix(GoString(args[0].Ref()), argStr(args, 1)))
	})
	reg("endsWith", "(Ljava/lang/String;)Z", func(t *Thread, args []Value) (Value, *Object, error) {
		return boolRet(strings.HasSuffix(GoString(args[0].Ref()), argStr(args, 1)))
	})
	reg("toString", "()Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		return args[0], nil, nil
	})
	reg("intern", "()Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		return RefV(t.vm.InternString(GoString(args[0].Ref()))), nil, nil
	})
	reg("valueOf", "(I)Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		return strRet(t, strconv.Itoa(int(args[0].Int())))
	})
	reg("valueOf", "(J)Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		return strRet(t, strconv.FormatInt(args[0].Long(), 10))
	})
	reg("valueOf", "(C)Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		return strRet(t, string(rune(args[0].Int())))
	})
	reg("valueOf", "(D)Ljava/lang/String;", func(t *Thread, args []Value) (Value, *Object, error) {
		return strRet(t, strconv.FormatFloat(args[0].Double(), 'g', -1, 64))
	})

	// Throwable hierarchy: every class shares these constructors.
	throwInit0 := func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() }
	throwInit1 := func(t *Thread, args []Value) (Value, *Object, error) {
		o := args[0].Ref()
		if slot, ok := o.Class.FieldSlot("message", "Ljava/lang/String;"); ok {
			o.SetField(slot, args[1])
		}
		return nilRet()
	}
	for _, cn := range throwableClassNames {
		vm.RegisterNative(cn, "<init>", "()V", throwInit0)
		vm.RegisterNative(cn, "<init>", "(Ljava/lang/String;)V", throwInit1)
	}
	vm.RegisterNative("java/lang/Throwable", "getMessage", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			o := args[0].Ref()
			slot, _ := o.Class.FieldSlot("message", "Ljava/lang/String;")
			return o.GetField(slot), nil, nil
		})
	vm.RegisterNative("java/lang/Throwable", "toString", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return strRet(t, DescribeThrowable(args[0].Ref()))
		})

	// java/io/OutputStream + PrintStream
	vm.RegisterNative("java/io/OutputStream", "<init>", "()V", throwInit0)
	vm.RegisterNative("java/io/OutputStream", "write", "(I)V",
		func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() })
	vm.RegisterNative("java/io/OutputStream", "close", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() })
	vm.RegisterNative("java/io/OutputStream", "flush", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() })
	vm.RegisterNative("java/io/PrintStream", "println", "(Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			fmt.Fprintln(t.vm.Stdout, argStr(args, 1))
			return nilRet()
		})
	vm.RegisterNative("java/io/PrintStream", "println", "(I)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			fmt.Fprintln(t.vm.Stdout, args[1].Int())
			return nilRet()
		})
	vm.RegisterNative("java/io/PrintStream", "println", "(J)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			fmt.Fprintln(t.vm.Stdout, args[1].Long())
			return nilRet()
		})
	vm.RegisterNative("java/io/PrintStream", "println", "(D)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			fmt.Fprintln(t.vm.Stdout, args[1].Double())
			return nilRet()
		})
	vm.RegisterNative("java/io/PrintStream", "println", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			fmt.Fprintln(t.vm.Stdout)
			return nilRet()
		})
	vm.RegisterNative("java/io/PrintStream", "print", "(Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			fmt.Fprint(t.vm.Stdout, argStr(args, 1))
			return nilRet()
		})
	vm.RegisterNative("java/io/PrintStream", "print", "(I)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			fmt.Fprint(t.vm.Stdout, args[1].Int())
			return nilRet()
		})
	vm.RegisterNative("java/io/PrintStream", "print", "(C)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			fmt.Fprint(t.vm.Stdout, string(rune(args[1].Int())))
			return nilRet()
		})

	// java/lang/System
	vm.RegisterNative("java/lang/System", "getProperty", "(Ljava/lang/String;)Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			key := argStr(args, 0)
			if ex := t.vm.libCheck(t, "property.get", key); ex != nil {
				return Value{}, ex, nil
			}
			v, ok := t.vm.Properties[key]
			if !ok {
				return NullV(), nil, nil
			}
			return strRet(t, v)
		})
	vm.RegisterNative("java/lang/System", "setProperty", "(Ljava/lang/String;Ljava/lang/String;)Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			key, val := argStr(args, 0), argStr(args, 1)
			if ex := t.vm.libCheck(t, "property.set", key); ex != nil {
				return Value{}, ex, nil
			}
			old, had := t.vm.Properties[key]
			t.vm.Properties[key] = val
			if !had {
				return NullV(), nil, nil
			}
			return strRet(t, old)
		})
	vm.RegisterNative("java/lang/System", "currentTimeMillis", "()J",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return LongV(time.Now().UnixMilli()), nil, nil
		})
	vm.RegisterNative("java/lang/System", "gc", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			t.vm.GC()
			return nilRet()
		})
	vm.RegisterNative("java/lang/System", "arraycopy", "(Ljava/lang/Object;ILjava/lang/Object;II)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			src, dst := args[0].Ref(), args[2].Ref()
			spos, dpos, n := int(args[1].Int()), int(args[3].Int()), int(args[4].Int())
			if src == nil || dst == nil {
				return Value{}, t.vm.Throw("java/lang/NullPointerException", "arraycopy"), nil
			}
			if src.Elems == nil || dst.Elems == nil {
				return Value{}, t.vm.Throw("java/lang/ArrayStoreException", "arraycopy of non-array"), nil
			}
			if n < 0 || spos < 0 || dpos < 0 || spos+n > src.Len() || dpos+n > dst.Len() {
				return Value{}, t.vm.Throw("java/lang/ArrayIndexOutOfBoundsException", "arraycopy bounds"), nil
			}
			copy(dst.Elems[dpos:dpos+n], src.Elems[spos:spos+n])
			return nilRet()
		})

	// java/lang/Math
	vm.RegisterNative("java/lang/Math", "abs", "(I)I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return IntV(v), nil, nil
		})
	vm.RegisterNative("java/lang/Math", "abs", "(D)D",
		func(t *Thread, args []Value) (Value, *Object, error) {
			v := args[0].Double()
			if v < 0 {
				v = -v
			}
			return DoubleV(v), nil, nil
		})
	vm.RegisterNative("java/lang/Math", "min", "(II)I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return IntV(min(args[0].Int(), args[1].Int())), nil, nil
		})
	vm.RegisterNative("java/lang/Math", "max", "(II)I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return IntV(max(args[0].Int(), args[1].Int())), nil, nil
		})
	vm.RegisterNative("java/lang/Math", "sqrt", "(D)D",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return DoubleV(math.Sqrt(args[0].Double())), nil, nil
		})
	vm.RegisterNative("java/lang/Math", "floor", "(D)D",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return DoubleV(math.Floor(args[0].Double())), nil, nil
		})
	vm.RegisterNative("java/lang/Math", "ceil", "(D)D",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return DoubleV(math.Ceil(args[0].Double())), nil, nil
		})

	// java/lang/Integer
	vm.RegisterNative("java/lang/Integer", "parseInt", "(Ljava/lang/String;)I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			n, err := strconv.ParseInt(strings.TrimSpace(argStr(args, 0)), 10, 32)
			if err != nil {
				return Value{}, t.vm.Throw("java/lang/NumberFormatException", argStr(args, 0)), nil
			}
			return IntV(int32(n)), nil, nil
		})
	vm.RegisterNative("java/lang/Integer", "toString", "(I)Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return strRet(t, strconv.Itoa(int(args[0].Int())))
		})
	vm.RegisterNative("java/lang/Integer", "toHexString", "(I)Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return strRet(t, strconv.FormatUint(uint64(uint32(args[0].Int())), 16))
		})

	// java/lang/Thread
	vm.RegisterNative("java/lang/Thread", "<init>", "()V", throwInit0)
	vm.RegisterNative("java/lang/Thread", "currentThread", "()Ljava/lang/Thread;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return RefV(t.vm.threadObject(t)), nil, nil
		})
	vm.RegisterNative("java/lang/Thread", "setPriority", "(I)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			if ex := t.vm.libCheck(t, "thread.setPriority", ""); ex != nil {
				return Value{}, ex, nil
			}
			p := args[1].Int()
			if p < 1 || p > 10 {
				return Value{}, t.vm.Throw("java/lang/IllegalArgumentException", fmt.Sprint(p)), nil
			}
			if th, ok := args[0].Ref().Native.(*Thread); ok {
				th.Priority = p
			}
			return nilRet()
		})
	vm.RegisterNative("java/lang/Thread", "getPriority", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			if th, ok := args[0].Ref().Native.(*Thread); ok {
				return IntV(th.Priority), nil, nil
			}
			return IntV(5), nil, nil
		})
	vm.RegisterNative("java/lang/Thread", "sleep", "(J)V",
		func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() })
	vm.RegisterNative("java/lang/Thread", "yield", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() })

	// java/lang/StringBuffer
	vm.RegisterNative("java/lang/StringBuffer", "<init>", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			args[0].Ref().Native = &strings.Builder{}
			return nilRet()
		})
	vm.RegisterNative("java/lang/StringBuffer", "<init>", "(Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			b := &strings.Builder{}
			b.WriteString(argStr(args, 1))
			args[0].Ref().Native = b
			return nilRet()
		})
	sbAppend := func(write func(b *strings.Builder, args []Value)) NativeFunc {
		return func(t *Thread, args []Value) (Value, *Object, error) {
			b, ok := args[0].Ref().Native.(*strings.Builder)
			if !ok {
				b = &strings.Builder{}
				args[0].Ref().Native = b
			}
			write(b, args)
			return args[0], nil, nil
		}
	}
	vm.RegisterNative("java/lang/StringBuffer", "append", "(Ljava/lang/String;)Ljava/lang/StringBuffer;",
		sbAppend(func(b *strings.Builder, args []Value) { b.WriteString(argStr(args, 1)) }))
	vm.RegisterNative("java/lang/StringBuffer", "append", "(I)Ljava/lang/StringBuffer;",
		sbAppend(func(b *strings.Builder, args []Value) { b.WriteString(strconv.Itoa(int(args[1].Int()))) }))
	vm.RegisterNative("java/lang/StringBuffer", "append", "(J)Ljava/lang/StringBuffer;",
		sbAppend(func(b *strings.Builder, args []Value) { b.WriteString(strconv.FormatInt(args[1].Long(), 10)) }))
	vm.RegisterNative("java/lang/StringBuffer", "append", "(C)Ljava/lang/StringBuffer;",
		sbAppend(func(b *strings.Builder, args []Value) { b.WriteRune(rune(args[1].Int())) }))
	vm.RegisterNative("java/lang/StringBuffer", "append", "(D)Ljava/lang/StringBuffer;",
		sbAppend(func(b *strings.Builder, args []Value) {
			b.WriteString(strconv.FormatFloat(args[1].Double(), 'g', -1, 64))
		}))
	vm.RegisterNative("java/lang/StringBuffer", "length", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			if b, ok := args[0].Ref().Native.(*strings.Builder); ok {
				return IntV(int32(b.Len())), nil, nil
			}
			return IntV(0), nil, nil
		})
	vm.RegisterNative("java/lang/StringBuffer", "toString", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			if b, ok := args[0].Ref().Native.(*strings.Builder); ok {
				return RefV(t.vm.NewString(b.String())), nil, nil
			}
			return strRet(t, "")
		})
}

// throwableClassNames enumerates the exception classes needing the shared
// message constructors.
var throwableClassNames = []string{
	"java/lang/Throwable", "java/lang/Exception", "java/lang/RuntimeException",
	"java/lang/Error", "java/lang/LinkageError", "java/lang/VirtualMachineError",
	"java/lang/NullPointerException", "java/lang/IndexOutOfBoundsException",
	"java/lang/ArrayIndexOutOfBoundsException", "java/lang/StringIndexOutOfBoundsException",
	"java/lang/ArithmeticException", "java/lang/ArrayStoreException",
	"java/lang/ClassCastException", "java/lang/NegativeArraySizeException",
	"java/lang/IllegalArgumentException", "java/lang/IllegalStateException",
	"java/lang/NumberFormatException", "java/lang/SecurityException",
	"java/lang/StackOverflowError", "java/lang/OutOfMemoryError",
	"java/lang/NoClassDefFoundError", "java/lang/VerifyError",
	"java/lang/NoSuchFieldError", "java/lang/NoSuchMethodError",
	"java/lang/AbstractMethodError", "java/lang/ClassNotFoundException",
	"java/io/IOException", "java/io/FileNotFoundException",
}

// javaStringHash implements Java's String.hashCode.
func javaStringHash(s string) int32 {
	var h int32
	for i := 0; i < len(s); i++ {
		h = 31*h + int32(s[i])
	}
	return h
}

// classObject returns the pinned java/lang/Class instance for c.
func (vm *VM) classObject(c *Class) *Object {
	if vm.classObjs == nil {
		vm.classObjs = make(map[*Class]*Object)
	}
	if o, ok := vm.classObjs[c]; ok {
		return o
	}
	o := vm.NewInstance(vm.classes["java/lang/Class"])
	o.Native = c
	vm.classObjs[c] = o
	vm.Pin(o)
	return o
}

// threadObject returns the pinned java/lang/Thread instance for t.
func (vm *VM) threadObject(t *Thread) *Object {
	if vm.threadObj == nil {
		o := vm.NewInstance(vm.classes["java/lang/Thread"])
		o.Native = t
		vm.threadObj = o
		vm.Pin(o)
	}
	return vm.threadObj
}
