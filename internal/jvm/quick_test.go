package jvm

import (
	"math"
	"testing"
	"testing/quick"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// buildArithClass exposes every binary int/long operation for
// property-based comparison against Go reference semantics.
func buildArithClass(t *testing.T) *VM {
	t.Helper()
	b := classgen.NewClass("q/Arith", "java/lang/Object")
	binI := func(name string, op bytecode.Opcode) {
		m := b.Method(classfile.AccPublic|classfile.AccStatic, name, "(II)I")
		m.ILoad(0).ILoad(1).Inst(op).IReturn()
	}
	binI("add", bytecode.Iadd)
	binI("sub", bytecode.Isub)
	binI("mul", bytecode.Imul)
	binI("div", bytecode.Idiv)
	binI("rem", bytecode.Irem)
	binI("and", bytecode.Iand)
	binI("or", bytecode.Ior)
	binI("xor", bytecode.Ixor)
	binI("shl", bytecode.Ishl)
	binI("shr", bytecode.Ishr)
	binI("ushr", bytecode.Iushr)
	binL := func(name string, op bytecode.Opcode) {
		m := b.Method(classfile.AccPublic|classfile.AccStatic, name, "(JJ)J")
		m.LLoad(0).LLoad(2).Inst(op).LReturn()
	}
	binL("ladd", bytecode.Ladd)
	binL("lmul", bytecode.Lmul)
	binL("ldiv", bytecode.Ldiv)
	conv := b.Method(classfile.AccPublic|classfile.AccStatic, "i2sbc", "(I)I")
	conv.ILoad(0).Inst(bytecode.I2b).Inst(bytecode.I2c).Inst(bytecode.I2s).IReturn()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := New(MapLoader{"q/Arith": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// TestQuickIntArithmeticMatchesJavaSemantics compares interpreter results
// against Go reference implementations of the JVM's int semantics.
func TestQuickIntArithmeticMatchesJavaSemantics(t *testing.T) {
	vm := buildArithClass(t)
	th := vm.MainThread()
	call := func(name string, a, b int32) (int32, bool) {
		v, thrown, err := th.InvokeByName("q/Arith", name, "(II)I", []Value{IntV(a), IntV(b)})
		if err != nil {
			t.Fatal(err)
		}
		if thrown != nil {
			return 0, false
		}
		return v.Int(), true
	}
	f := func(a, b int32) bool {
		if v, ok := call("add", a, b); !ok || v != a+b {
			return false
		}
		if v, ok := call("sub", a, b); !ok || v != a-b {
			return false
		}
		if v, ok := call("mul", a, b); !ok || v != a*b {
			return false
		}
		if v, ok := call("and", a, b); !ok || v != a&b {
			return false
		}
		if v, ok := call("or", a, b); !ok || v != a|b {
			return false
		}
		if v, ok := call("xor", a, b); !ok || v != a^b {
			return false
		}
		if v, ok := call("shl", a, b); !ok || v != a<<(uint32(b)&31) {
			return false
		}
		if v, ok := call("shr", a, b); !ok || v != a>>(uint32(b)&31) {
			return false
		}
		if v, ok := call("ushr", a, b); !ok || v != int32(uint32(a)>>(uint32(b)&31)) {
			return false
		}
		v, ok := call("div", a, b)
		switch {
		case b == 0:
			if ok {
				return false // must throw
			}
		case a == math.MinInt32 && b == -1:
			if !ok || v != math.MinInt32 {
				return false
			}
		default:
			if !ok || v != a/b {
				return false
			}
		}
		r, ok := call("rem", a, b)
		switch {
		case b == 0:
			if ok {
				return false
			}
		case a == math.MinInt32 && b == -1:
			if !ok || r != 0 {
				return false
			}
		default:
			if !ok || r != a%b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLongArithmetic checks 64-bit two-slot plumbing under random
// inputs.
func TestQuickLongArithmetic(t *testing.T) {
	vm := buildArithClass(t)
	th := vm.MainThread()
	f := func(a, b int64) bool {
		v, thrown, err := th.InvokeByName("q/Arith", "ladd", "(JJ)J", []Value{LongV(a), LongV(b)})
		if err != nil || thrown != nil || v.Long() != a+b {
			return false
		}
		v, thrown, err = th.InvokeByName("q/Arith", "lmul", "(JJ)J", []Value{LongV(a), LongV(b)})
		if err != nil || thrown != nil || v.Long() != a*b {
			return false
		}
		v, thrown, err = th.InvokeByName("q/Arith", "ldiv", "(JJ)J", []Value{LongV(a), LongV(b)})
		if b == 0 {
			return err == nil && thrown != nil
		}
		want := a / b
		if a == math.MinInt64 && b == -1 {
			want = math.MinInt64
		}
		return err == nil && thrown == nil && v.Long() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNarrowingConversions: i2b;i2c;i2s pipeline equals the
// composed Go narrowing.
func TestQuickNarrowingConversions(t *testing.T) {
	vm := buildArithClass(t)
	th := vm.MainThread()
	f := func(a int32) bool {
		v, thrown, err := th.InvokeByName("q/Arith", "i2sbc", "(I)I", []Value{IntV(a)})
		if err != nil || thrown != nil {
			return false
		}
		want := int32(int16(uint16(int32(int8(a)))))
		return v.Int() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStringHashMatchesJava: the runtime's String.hashCode equals
// the canonical Java algorithm for arbitrary ASCII strings.
func TestQuickStringHashMatchesJava(t *testing.T) {
	f := func(s string) bool {
		var want int32
		for i := 0; i < len(s); i++ {
			want = 31*want + int32(s[i])
		}
		return javaStringHash(s) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
