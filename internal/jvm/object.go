package jvm

// Object is a heap object: a class instance or an array. Instance fields
// live in Fields, indexed by the slot offsets assigned at class layout
// time (superclass fields first). Arrays keep their elements in Elems.
// Native carries a Go-side payload for runtime-implemented classes
// (strings, files, string buffers, hash tables).
type Object struct {
	Class  *Class
	Fields []Value
	Elems  []Value // non-nil iff Class.IsArray
	Native any

	// identity hash (Object.hashCode), assigned at allocation
	hash int32

	// gc bookkeeping
	mark bool
	next *Object
}

// IdentityHash returns the object's identity hash code.
func (o *Object) IdentityHash() int32 { return o.hash }

// NewInstance allocates an instance of c with zeroed fields and registers
// it with the VM heap. It does not run any constructor.
func (vm *VM) NewInstance(c *Class) *Object {
	o := &Object{Class: c, Fields: make([]Value, c.instanceSlots)}
	for i, d := range c.slotDescs {
		o.Fields[i] = zeroValueFor(d)
	}
	vm.heapAdd(o)
	return o
}

// NewArray allocates an array object of the given array class and length.
func (vm *VM) NewArray(c *Class, length int) *Object {
	elems := make([]Value, length)
	zero := zeroValueFor(c.ElemDesc)
	for i := range elems {
		elems[i] = zero
	}
	o := &Object{Class: c, Elems: elems}
	vm.heapAdd(o)
	return o
}

// Len returns the array length (0 for non-arrays).
func (o *Object) Len() int {
	if o == nil {
		return 0
	}
	return len(o.Elems)
}

// GetField reads an instance field by slot.
func (o *Object) GetField(slot int) Value { return o.Fields[slot] }

// SetField writes an instance field by slot.
func (o *Object) SetField(slot int, v Value) { o.Fields[slot] = v }

// IsInstanceOf reports whether the object can be assigned to class t,
// following the JVM's instanceof rules for classes, interfaces, and
// arrays (covariant element types, Object/Cloneable/Serializable array
// supertypes collapsed to Object here).
func (o *Object) IsInstanceOf(t *Class) bool {
	if o == nil {
		return false
	}
	return o.Class.AssignableTo(t)
}
