package jvm

import (
	"fmt"
	"math"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// Thread is one Java execution thread. The DVM client runtime is
// single-threaded (the paper's measurements are, too), but the Thread
// object carries the priority state the security microbenchmarks
// manipulate, and the frame stack supports the monolithic baseline's
// stack-introspection security.
type Thread struct {
	vm       *VM
	Name     string
	Priority int32

	frames       []*frame
	pendingThrow *Object
}

// VM returns the owning virtual machine.
func (t *Thread) VM() *VM { return t.vm }

// Depth returns the current call depth.
func (t *Thread) Depth() int { return len(t.frames) }

// FrameClasses returns, innermost first, the class of every frame on the
// stack. The JDK1.2-style stack-introspection security manager (the
// monolithic baseline in Figure 9) walks this.
func (t *Thread) FrameClasses() []*Class {
	out := make([]*Class, 0, len(t.frames))
	for i := len(t.frames) - 1; i >= 0; i-- {
		out = append(out, t.frames[i].method.Class)
	}
	return out
}

// frame is one interpreter activation record.
type frame struct {
	method *Method
	locals []Value
	stack  []Value
	sp     int
}

const maxCallDepth = 2048

// vmError is an internal (non-Java) execution error.
func vmErrorf(m *Method, idx int, format string, args ...any) error {
	prefix := ""
	if m != nil {
		prefix = fmt.Sprintf("%s @%d: ", m, idx)
	}
	return fmt.Errorf("jvm: "+prefix+format, args...)
}

// Invoke executes a method with the given arguments (receiver first for
// instance methods). It returns the result value (zero Value for void),
// the thrown-and-uncaught Java exception if any, and internal VM errors.
func (t *Thread) Invoke(m *Method, args []Value) (Value, *Object, error) {
	vm := t.vm
	vm.Stats.MethodInvocations++
	if len(t.frames) >= maxCallDepth {
		return Value{}, vm.Throw("java/lang/StackOverflowError", m.String()), nil
	}
	if m.Native != nil {
		// Native frames still appear on the stack so introspection and GC
		// see them; locals hold the arguments.
		f := &frame{method: m, locals: args}
		t.frames = append(t.frames, f)
		v, thrown, err := m.Native(t, args)
		t.frames = t.frames[:len(t.frames)-1]
		return v, thrown, err
	}
	if m.Code == nil {
		return Value{}, nil, vmErrorf(m, 0, "invoking abstract or code-less method")
	}
	if !m.prepared {
		if err := m.prepare(); err != nil {
			return Value{}, nil, err
		}
	}
	if vm.OnMethodEnter != nil {
		vm.OnMethodEnter(m.Class.Name, m.Name)
	}
	f := &frame{
		method: m,
		locals: make([]Value, int(m.Code.MaxLocals)+1),
		stack:  make([]Value, int(m.Code.MaxStack)+2),
	}
	// Spread arguments into local slots (wide values take two).
	slot := 0
	for _, a := range args {
		if slot >= len(f.locals) {
			return Value{}, nil, vmErrorf(m, 0, "arguments overflow max_locals %d", m.Code.MaxLocals)
		}
		f.locals[slot] = a
		slot++
		if a.Wide() {
			if slot < len(f.locals) {
				f.locals[slot] = padV()
			}
			slot++
		}
	}
	t.frames = append(t.frames, f)
	v, thrown, err := t.run(f)
	t.frames = t.frames[:len(t.frames)-1]
	if vm.OnMethodExit != nil {
		vm.OnMethodExit(m.Class.Name, m.Name)
	}
	return v, thrown, err
}

// InvokeByName resolves className.method(desc), ensures initialization,
// and invokes it. Convenience for services and tests.
func (t *Thread) InvokeByName(className, method, desc string, args []Value) (Value, *Object, error) {
	c, err := t.vm.Class(className)
	if err != nil {
		return Value{}, nil, err
	}
	if thrown, err := t.vm.EnsureInitialized(t, c); thrown != nil || err != nil {
		return Value{}, thrown, err
	}
	m := c.LookupMethod(method, desc)
	if m == nil {
		return Value{}, nil, fmt.Errorf("jvm: no method %s.%s%s", className, method, desc)
	}
	return t.Invoke(m, args)
}

// run is the interpreter loop for one frame.
func (t *Thread) run(f *frame) (Value, *Object, error) {
	vm := t.vm
	m := f.method
	insts := m.insts
	idx := 0

	push := func(v Value) bool {
		if f.sp >= len(f.stack) {
			return false
		}
		f.stack[f.sp] = v
		f.sp++
		return true
	}
	pop := func() Value {
		f.sp--
		return f.stack[f.sp]
	}
	// push2/pop2 handle wide values with their pad slot.
	push2 := func(v Value) bool { return push(v) && push(padV()) }
	pop2 := func() Value {
		f.sp -= 2
		return f.stack[f.sp]
	}

	var thrown *Object

	for {
		if idx < 0 || idx >= len(insts) {
			return Value{}, nil, vmErrorf(m, idx, "control fell off the end of the method")
		}
		vm.Stats.InstructionsExecuted++
		if vm.MaxInstructions > 0 && vm.Stats.InstructionsExecuted > vm.MaxInstructions {
			return Value{}, nil, vmErrorf(m, idx, "instruction budget %d exhausted", vm.MaxInstructions)
		}
		in := &insts[idx]
		if vm.TraceOpcodes {
			vm.OpcodeCounts[in.Op]++
		}
		next := idx + 1
		thrown = nil

		switch in.Op {
		case bytecode.Nop:
		case bytecode.AconstNull:
			push(NullV())
		case bytecode.IconstM1, bytecode.Iconst0, bytecode.Iconst1, bytecode.Iconst2,
			bytecode.Iconst3, bytecode.Iconst4, bytecode.Iconst5:
			push(IntV(int32(in.Op) - int32(bytecode.Iconst0)))
		case bytecode.Lconst0:
			push2(LongV(0))
		case bytecode.Lconst1:
			push2(LongV(1))
		case bytecode.Fconst0:
			push(FloatV(0))
		case bytecode.Fconst1:
			push(FloatV(1))
		case bytecode.Fconst2:
			push(FloatV(2))
		case bytecode.Dconst0:
			push2(DoubleV(0))
		case bytecode.Dconst1:
			push2(DoubleV(1))
		case bytecode.Bipush, bytecode.Sipush:
			push(IntV(in.Const))
		case bytecode.Ldc, bytecode.LdcW:
			v, err := vm.constantValue(m.Class.File.Pool, in.Index)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "ldc: %v", err)
			}
			if v.Wide() {
				return Value{}, nil, vmErrorf(m, idx, "ldc of two-slot constant")
			}
			push(v)
		case bytecode.Ldc2W:
			v, err := vm.constantValue(m.Class.File.Pool, in.Index)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "ldc2_w: %v", err)
			}
			if !v.Wide() {
				return Value{}, nil, vmErrorf(m, idx, "ldc2_w of one-slot constant")
			}
			push2(v)

		// Loads.
		case bytecode.Iload, bytecode.Fload, bytecode.Aload:
			push(f.locals[in.Index])
		case bytecode.Lload, bytecode.Dload:
			push2(f.locals[in.Index])
		case bytecode.Iload0, bytecode.Iload1, bytecode.Iload2, bytecode.Iload3:
			push(f.locals[in.Op-bytecode.Iload0])
		case bytecode.Lload0, bytecode.Lload1, bytecode.Lload2, bytecode.Lload3:
			push2(f.locals[in.Op-bytecode.Lload0])
		case bytecode.Fload0, bytecode.Fload1, bytecode.Fload2, bytecode.Fload3:
			push(f.locals[in.Op-bytecode.Fload0])
		case bytecode.Dload0, bytecode.Dload1, bytecode.Dload2, bytecode.Dload3:
			push2(f.locals[in.Op-bytecode.Dload0])
		case bytecode.Aload0, bytecode.Aload1, bytecode.Aload2, bytecode.Aload3:
			push(f.locals[in.Op-bytecode.Aload0])

		// Stores.
		case bytecode.Istore, bytecode.Fstore, bytecode.Astore:
			f.locals[in.Index] = pop()
		case bytecode.Lstore, bytecode.Dstore:
			f.locals[in.Index] = pop2()
			f.locals[in.Index+1] = padV()
		case bytecode.Istore0, bytecode.Istore1, bytecode.Istore2, bytecode.Istore3:
			f.locals[in.Op-bytecode.Istore0] = pop()
		case bytecode.Lstore0, bytecode.Lstore1, bytecode.Lstore2, bytecode.Lstore3:
			i := int(in.Op - bytecode.Lstore0)
			f.locals[i] = pop2()
			f.locals[i+1] = padV()
		case bytecode.Fstore0, bytecode.Fstore1, bytecode.Fstore2, bytecode.Fstore3:
			f.locals[in.Op-bytecode.Fstore0] = pop()
		case bytecode.Dstore0, bytecode.Dstore1, bytecode.Dstore2, bytecode.Dstore3:
			i := int(in.Op - bytecode.Dstore0)
			f.locals[i] = pop2()
			f.locals[i+1] = padV()
		case bytecode.Astore0, bytecode.Astore1, bytecode.Astore2, bytecode.Astore3:
			f.locals[in.Op-bytecode.Astore0] = pop()

		// Array loads.
		case bytecode.Iaload, bytecode.Faload, bytecode.Aaload, bytecode.Baload,
			bytecode.Caload, bytecode.Saload:
			i := pop().Int()
			a := pop().Ref()
			if a == nil {
				thrown = vm.Throw("java/lang/NullPointerException", "array load")
				break
			}
			if int(i) < 0 || int(i) >= a.Len() {
				thrown = vm.Throw("java/lang/ArrayIndexOutOfBoundsException", fmt.Sprintf("index %d, length %d", i, a.Len()))
				break
			}
			push(a.Elems[i])
		case bytecode.Laload, bytecode.Daload:
			i := pop().Int()
			a := pop().Ref()
			if a == nil {
				thrown = vm.Throw("java/lang/NullPointerException", "array load")
				break
			}
			if int(i) < 0 || int(i) >= a.Len() {
				thrown = vm.Throw("java/lang/ArrayIndexOutOfBoundsException", fmt.Sprintf("index %d, length %d", i, a.Len()))
				break
			}
			push2(a.Elems[i])

		// Array stores.
		case bytecode.Iastore, bytecode.Fastore, bytecode.Bastore,
			bytecode.Castore, bytecode.Sastore:
			v := pop()
			i := pop().Int()
			a := pop().Ref()
			if a == nil {
				thrown = vm.Throw("java/lang/NullPointerException", "array store")
				break
			}
			if int(i) < 0 || int(i) >= a.Len() {
				thrown = vm.Throw("java/lang/ArrayIndexOutOfBoundsException", fmt.Sprintf("index %d, length %d", i, a.Len()))
				break
			}
			if in.Op == bytecode.Bastore {
				v = IntV(int32(int8(v.Int())))
			} else if in.Op == bytecode.Castore {
				v = IntV(int32(uint16(v.Int())))
			} else if in.Op == bytecode.Sastore {
				v = IntV(int32(int16(v.Int())))
			}
			a.Elems[i] = v
		case bytecode.Lastore, bytecode.Dastore:
			v := pop2()
			i := pop().Int()
			a := pop().Ref()
			if a == nil {
				thrown = vm.Throw("java/lang/NullPointerException", "array store")
				break
			}
			if int(i) < 0 || int(i) >= a.Len() {
				thrown = vm.Throw("java/lang/ArrayIndexOutOfBoundsException", fmt.Sprintf("index %d, length %d", i, a.Len()))
				break
			}
			a.Elems[i] = v
		case bytecode.Aastore:
			v := pop()
			i := pop().Int()
			a := pop().Ref()
			if a == nil {
				thrown = vm.Throw("java/lang/NullPointerException", "array store")
				break
			}
			if int(i) < 0 || int(i) >= a.Len() {
				thrown = vm.Throw("java/lang/ArrayIndexOutOfBoundsException", fmt.Sprintf("index %d, length %d", i, a.Len()))
				break
			}
			if v.R != nil && a.Class.Elem != nil && !v.R.Class.AssignableTo(a.Class.Elem) {
				thrown = vm.Throw("java/lang/ArrayStoreException", v.R.Class.Name)
				break
			}
			a.Elems[i] = v

		// Stack manipulation (slot-oriented; pads flow naturally).
		case bytecode.Pop:
			pop()
		case bytecode.Pop2:
			pop()
			pop()
		case bytecode.Dup:
			v := f.stack[f.sp-1]
			push(v)
		case bytecode.DupX1:
			v1 := pop()
			v2 := pop()
			push(v1)
			push(v2)
			push(v1)
		case bytecode.DupX2:
			v1 := pop()
			v2 := pop()
			v3 := pop()
			push(v1)
			push(v3)
			push(v2)
			push(v1)
		case bytecode.Dup2:
			v1 := f.stack[f.sp-1]
			v2 := f.stack[f.sp-2]
			push(v2)
			push(v1)
		case bytecode.Dup2X1:
			v1 := pop()
			v2 := pop()
			v3 := pop()
			push(v2)
			push(v1)
			push(v3)
			push(v2)
			push(v1)
		case bytecode.Dup2X2:
			v1 := pop()
			v2 := pop()
			v3 := pop()
			v4 := pop()
			push(v2)
			push(v1)
			push(v4)
			push(v3)
			push(v2)
			push(v1)
		case bytecode.Swap:
			v1 := pop()
			v2 := pop()
			push(v1)
			push(v2)

		// Integer arithmetic.
		case bytecode.Iadd:
			b, a := pop().Int(), pop().Int()
			push(IntV(a + b))
		case bytecode.Isub:
			b, a := pop().Int(), pop().Int()
			push(IntV(a - b))
		case bytecode.Imul:
			b, a := pop().Int(), pop().Int()
			push(IntV(a * b))
		case bytecode.Idiv:
			b, a := pop().Int(), pop().Int()
			if b == 0 {
				thrown = vm.Throw("java/lang/ArithmeticException", "/ by zero")
				break
			}
			if a == math.MinInt32 && b == -1 {
				push(IntV(math.MinInt32))
			} else {
				push(IntV(a / b))
			}
		case bytecode.Irem:
			b, a := pop().Int(), pop().Int()
			if b == 0 {
				thrown = vm.Throw("java/lang/ArithmeticException", "% by zero")
				break
			}
			if a == math.MinInt32 && b == -1 {
				push(IntV(0))
			} else {
				push(IntV(a % b))
			}
		case bytecode.Ineg:
			push(IntV(-pop().Int()))
		case bytecode.Ishl:
			b, a := pop().Int(), pop().Int()
			push(IntV(a << (uint(b) & 31)))
		case bytecode.Ishr:
			b, a := pop().Int(), pop().Int()
			push(IntV(a >> (uint(b) & 31)))
		case bytecode.Iushr:
			b, a := pop().Int(), pop().Int()
			push(IntV(int32(uint32(a) >> (uint(b) & 31))))
		case bytecode.Iand:
			b, a := pop().Int(), pop().Int()
			push(IntV(a & b))
		case bytecode.Ior:
			b, a := pop().Int(), pop().Int()
			push(IntV(a | b))
		case bytecode.Ixor:
			b, a := pop().Int(), pop().Int()
			push(IntV(a ^ b))
		case bytecode.Iinc:
			f.locals[in.Index] = IntV(f.locals[in.Index].Int() + in.Const)

		// Long arithmetic.
		case bytecode.Ladd:
			b, a := pop2().Long(), pop2().Long()
			push2(LongV(a + b))
		case bytecode.Lsub:
			b, a := pop2().Long(), pop2().Long()
			push2(LongV(a - b))
		case bytecode.Lmul:
			b, a := pop2().Long(), pop2().Long()
			push2(LongV(a * b))
		case bytecode.Ldiv:
			b, a := pop2().Long(), pop2().Long()
			if b == 0 {
				thrown = vm.Throw("java/lang/ArithmeticException", "/ by zero")
				break
			}
			if a == math.MinInt64 && b == -1 {
				push2(LongV(math.MinInt64))
			} else {
				push2(LongV(a / b))
			}
		case bytecode.Lrem:
			b, a := pop2().Long(), pop2().Long()
			if b == 0 {
				thrown = vm.Throw("java/lang/ArithmeticException", "% by zero")
				break
			}
			if a == math.MinInt64 && b == -1 {
				push2(LongV(0))
			} else {
				push2(LongV(a % b))
			}
		case bytecode.Lneg:
			push2(LongV(-pop2().Long()))
		case bytecode.Lshl:
			b := pop().Int()
			a := pop2().Long()
			push2(LongV(a << (uint(b) & 63)))
		case bytecode.Lshr:
			b := pop().Int()
			a := pop2().Long()
			push2(LongV(a >> (uint(b) & 63)))
		case bytecode.Lushr:
			b := pop().Int()
			a := pop2().Long()
			push2(LongV(int64(uint64(a) >> (uint(b) & 63))))
		case bytecode.Land:
			b, a := pop2().Long(), pop2().Long()
			push2(LongV(a & b))
		case bytecode.Lor:
			b, a := pop2().Long(), pop2().Long()
			push2(LongV(a | b))
		case bytecode.Lxor:
			b, a := pop2().Long(), pop2().Long()
			push2(LongV(a ^ b))

		// Float/double arithmetic.
		case bytecode.Fadd:
			b, a := pop().Float(), pop().Float()
			push(FloatV(a + b))
		case bytecode.Fsub:
			b, a := pop().Float(), pop().Float()
			push(FloatV(a - b))
		case bytecode.Fmul:
			b, a := pop().Float(), pop().Float()
			push(FloatV(a * b))
		case bytecode.Fdiv:
			b, a := pop().Float(), pop().Float()
			push(FloatV(a / b))
		case bytecode.Frem:
			b, a := pop().Float(), pop().Float()
			push(FloatV(float32(math.Mod(float64(a), float64(b)))))
		case bytecode.Fneg:
			push(FloatV(-pop().Float()))
		case bytecode.Dadd:
			b, a := pop2().Double(), pop2().Double()
			push2(DoubleV(a + b))
		case bytecode.Dsub:
			b, a := pop2().Double(), pop2().Double()
			push2(DoubleV(a - b))
		case bytecode.Dmul:
			b, a := pop2().Double(), pop2().Double()
			push2(DoubleV(a * b))
		case bytecode.Ddiv:
			b, a := pop2().Double(), pop2().Double()
			push2(DoubleV(a / b))
		case bytecode.Drem:
			b, a := pop2().Double(), pop2().Double()
			push2(DoubleV(math.Mod(a, b)))
		case bytecode.Dneg:
			push2(DoubleV(-pop2().Double()))

		// Conversions.
		case bytecode.I2l:
			push2(LongV(int64(pop().Int())))
		case bytecode.I2f:
			push(FloatV(float32(pop().Int())))
		case bytecode.I2d:
			push2(DoubleV(float64(pop().Int())))
		case bytecode.L2i:
			push(IntV(int32(pop2().Long())))
		case bytecode.L2f:
			push(FloatV(float32(pop2().Long())))
		case bytecode.L2d:
			push2(DoubleV(float64(pop2().Long())))
		case bytecode.F2i:
			push(IntV(f2i(float64(pop().Float()))))
		case bytecode.F2l:
			push2(LongV(f2l(float64(pop().Float()))))
		case bytecode.F2d:
			push2(DoubleV(float64(pop().Float())))
		case bytecode.D2i:
			push(IntV(f2i(pop2().Double())))
		case bytecode.D2l:
			push2(LongV(f2l(pop2().Double())))
		case bytecode.D2f:
			push(FloatV(float32(pop2().Double())))
		case bytecode.I2b:
			push(IntV(int32(int8(pop().Int()))))
		case bytecode.I2c:
			push(IntV(int32(uint16(pop().Int()))))
		case bytecode.I2s:
			push(IntV(int32(int16(pop().Int()))))

		// Comparisons.
		case bytecode.Lcmp:
			b, a := pop2().Long(), pop2().Long()
			push(IntV(cmp3(a, b)))
		case bytecode.Fcmpl, bytecode.Fcmpg:
			b, a := float64(pop().Float()), float64(pop().Float())
			push(IntV(fcmp(a, b, in.Op == bytecode.Fcmpg)))
		case bytecode.Dcmpl, bytecode.Dcmpg:
			b, a := pop2().Double(), pop2().Double()
			push(IntV(fcmp(a, b, in.Op == bytecode.Dcmpg)))

		// Branches.
		case bytecode.Ifeq, bytecode.Ifne, bytecode.Iflt, bytecode.Ifge,
			bytecode.Ifgt, bytecode.Ifle:
			v := pop().Int()
			if intCond(in.Op, v, 0) {
				next = in.Target
			}
		case bytecode.IfIcmpeq, bytecode.IfIcmpne, bytecode.IfIcmplt,
			bytecode.IfIcmpge, bytecode.IfIcmpgt, bytecode.IfIcmple:
			b, a := pop().Int(), pop().Int()
			if intCond(in.Op-(bytecode.IfIcmpeq-bytecode.Ifeq), a, b) {
				next = in.Target
			}
		case bytecode.IfAcmpeq:
			b, a := pop().Ref(), pop().Ref()
			if a == b {
				next = in.Target
			}
		case bytecode.IfAcmpne:
			b, a := pop().Ref(), pop().Ref()
			if a != b {
				next = in.Target
			}
		case bytecode.Ifnull:
			if pop().Ref() == nil {
				next = in.Target
			}
		case bytecode.Ifnonnull:
			if pop().Ref() != nil {
				next = in.Target
			}
		case bytecode.Goto, bytecode.GotoW:
			next = in.Target
		case bytecode.Jsr, bytecode.JsrW:
			push(retAddrV(next))
			next = in.Target
		case bytecode.Ret:
			ra := f.locals[in.Index]
			if ra.Kind != KindRetAddr {
				return Value{}, nil, vmErrorf(m, idx, "ret on non-returnAddress local %d", in.Index)
			}
			next = int(ra.I)
		case bytecode.Tableswitch:
			v := pop().Int()
			sw := in.Switch
			if v >= sw.Low && int64(v) < int64(sw.Low)+int64(len(sw.Targets)) {
				next = sw.Targets[v-sw.Low]
			} else {
				next = sw.Default
			}
		case bytecode.Lookupswitch:
			v := pop().Int()
			sw := in.Switch
			next = sw.Default
			lo, hi := 0, len(sw.Keys)-1
			for lo <= hi {
				mid := (lo + hi) / 2
				switch {
				case sw.Keys[mid] == v:
					next = sw.Targets[mid]
					lo = hi + 1
				case sw.Keys[mid] < v:
					lo = mid + 1
				default:
					hi = mid - 1
				}
			}

		// Returns.
		case bytecode.Ireturn, bytecode.Freturn, bytecode.Areturn:
			return pop(), nil, nil
		case bytecode.Lreturn, bytecode.Dreturn:
			return pop2(), nil, nil
		case bytecode.Return:
			return Value{}, nil, nil

		// Field access.
		case bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield:
			var err error
			thrown, err = t.execField(f, in, push, pop, push2, pop2)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "%v", err)
			}

		// Invocations.
		case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic,
			bytecode.Invokeinterface:
			var err error
			thrown, err = t.execInvoke(f, in, push, push2)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "%v", err)
			}

		// Allocation.
		case bytecode.New:
			cn, err := m.Class.File.Pool.ClassName(in.Index)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "new: %v", err)
			}
			c, err := vm.Class(cn)
			if err != nil {
				thrown = vm.Throw("java/lang/NoClassDefFoundError", cn)
				break
			}
			if th, err := vm.EnsureInitialized(t, c); th != nil || err != nil {
				if err != nil {
					return Value{}, nil, err
				}
				thrown = th
				break
			}
			push(RefV(vm.NewInstance(c)))
		case bytecode.Newarray:
			n := pop().Int()
			if n < 0 {
				thrown = vm.Throw("java/lang/NegativeArraySizeException", fmt.Sprint(n))
				break
			}
			desc := primDescForAType(in.ArrayType)
			ac, err := vm.arrayClass(desc)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "newarray: %v", err)
			}
			push(RefV(vm.NewArray(ac, int(n))))
		case bytecode.Anewarray:
			n := pop().Int()
			if n < 0 {
				thrown = vm.Throw("java/lang/NegativeArraySizeException", fmt.Sprint(n))
				break
			}
			cn, err := m.Class.File.Pool.ClassName(in.Index)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "anewarray: %v", err)
			}
			var elemDesc string
			if cn[0] == '[' {
				elemDesc = cn
			} else {
				elemDesc = "L" + cn + ";"
			}
			ac, err := vm.arrayClass(elemDesc)
			if err != nil {
				thrown = vm.Throw("java/lang/NoClassDefFoundError", cn)
				break
			}
			push(RefV(vm.NewArray(ac, int(n))))
		case bytecode.Multianewarray:
			cn, err := m.Class.File.Pool.ClassName(in.Index)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "multianewarray: %v", err)
			}
			dims := make([]int32, in.Dims)
			for i := int(in.Dims) - 1; i >= 0; i-- {
				dims[i] = pop().Int()
			}
			neg := false
			for _, d := range dims {
				if d < 0 {
					neg = true
				}
			}
			if neg {
				thrown = vm.Throw("java/lang/NegativeArraySizeException", "")
				break
			}
			arr, err := vm.newMultiArray(cn, dims)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "multianewarray: %v", err)
			}
			push(RefV(arr))
		case bytecode.Arraylength:
			a := pop().Ref()
			if a == nil {
				thrown = vm.Throw("java/lang/NullPointerException", "arraylength")
				break
			}
			push(IntV(int32(a.Len())))

		case bytecode.Athrow:
			ex := pop().Ref()
			if ex == nil {
				ex = vm.Throw("java/lang/NullPointerException", "athrow of null")
			}
			thrown = ex

		case bytecode.Checkcast:
			v := f.stack[f.sp-1]
			if v.Ref() != nil {
				target, err := t.resolveClassOperand(in.Index)
				if err != nil {
					return Value{}, nil, vmErrorf(m, idx, "checkcast: %v", err)
				}
				if !v.Ref().Class.AssignableTo(target) {
					pop()
					thrown = vm.Throw("java/lang/ClassCastException",
						v.Ref().Class.Name+" cannot be cast to "+target.Name)
				}
			}
		case bytecode.Instanceof:
			v := pop()
			if v.Ref() == nil {
				push(IntV(0))
				break
			}
			target, err := t.resolveClassOperand(in.Index)
			if err != nil {
				return Value{}, nil, vmErrorf(m, idx, "instanceof: %v", err)
			}
			if v.Ref().Class.AssignableTo(target) {
				push(IntV(1))
			} else {
				push(IntV(0))
			}

		// DVM native-format extension opcodes (centralized compilation
		// service output, §3.4).
		case bytecode.ExtLoadAdd:
			push(IntV(f.locals[in.Index].Int() + f.locals[in.ArrayType].Int()))
		case bytecode.ExtLoadMul:
			push(IntV(f.locals[in.Index].Int() * f.locals[in.ArrayType].Int()))
		case bytecode.ExtCmpBranch:
			a := f.locals[in.Index].Int()
			b := f.locals[in.ArrayType].Int()
			if intCond(bytecode.Ifeq+bytecode.Opcode(in.Count), a, b) {
				next = in.Target
			}
		case bytecode.ExtIincLoad:
			v := f.locals[in.Index].Int() + in.Const
			f.locals[in.Index] = IntV(v)
			push(IntV(v))

		case bytecode.Monitorenter, bytecode.Monitorexit:
			o := pop().Ref()
			if o == nil {
				thrown = vm.Throw("java/lang/NullPointerException", "monitor on null")
				break
			}
			vm.Stats.MonitorOps++

		default:
			return Value{}, nil, vmErrorf(m, idx, "unimplemented opcode %s", in.Op.Name())
		}

		if thrown != nil {
			handlerIdx, ok := t.findHandler(m, idx, thrown)
			if !ok {
				return Value{}, thrown, nil
			}
			f.sp = 0
			push(RefV(thrown))
			next = handlerIdx
		}
		idx = next
	}
}

// findHandler locates the innermost matching exception handler for the
// instruction index.
func (t *Thread) findHandler(m *Method, idx int, ex *Object) (int, bool) {
	for _, h := range m.handlers {
		if idx < h.startIdx || idx >= h.endIdx {
			continue
		}
		if h.catchType == "" {
			return h.handlerIdx, true
		}
		cc, err := t.vm.Class(h.catchType)
		if err != nil {
			continue
		}
		if ex.Class.AssignableTo(cc) {
			return h.handlerIdx, true
		}
	}
	return 0, false
}

func (t *Thread) resolveClassOperand(cpIdx uint16) (*Class, error) {
	m := t.frames[len(t.frames)-1].method
	cn, err := m.Class.File.Pool.ClassName(cpIdx)
	if err != nil {
		return nil, err
	}
	return t.vm.Class(cn)
}

// resolveFieldSite builds (or returns) the cached resolution for a field
// access instruction.
func (t *Thread) resolveFieldSite(m *Method, in *bytecode.Inst) (*fieldSite, *Object, error) {
	if s, ok := m.fieldSites[in.Index]; ok {
		return s, nil, nil
	}
	vm := t.vm
	ref, err := m.Class.File.Pool.Ref(in.Index)
	if err != nil {
		return nil, nil, err
	}
	owner, err := vm.Class(ref.Class)
	if err != nil {
		return nil, vm.Throw("java/lang/NoClassDefFoundError", ref.Class), nil
	}
	s := &fieldSite{ref: ref, wide: ref.Desc == "J" || ref.Desc == "D"}
	if in.Op == bytecode.Getstatic || in.Op == bytecode.Putstatic {
		s.static = true
		holder, slot, ok := owner.StaticSlot(ref.Name, ref.Desc)
		if !ok {
			return nil, vm.Throw("java/lang/NoSuchFieldError", ref.String()), nil
		}
		s.holder = holder
		s.slot = slot
	} else {
		slot, ok := owner.FieldSlot(ref.Name, ref.Desc)
		if !ok {
			return nil, vm.Throw("java/lang/NoSuchFieldError", ref.String()), nil
		}
		s.slot = slot
	}
	if m.fieldSites == nil {
		m.fieldSites = make(map[uint16]*fieldSite)
	}
	m.fieldSites[in.Index] = s
	return s, nil, nil
}

// execField implements getstatic/putstatic/getfield/putfield.
func (t *Thread) execField(f *frame, in *bytecode.Inst,
	push func(Value) bool, pop func() Value,
	push2 func(Value) bool, pop2 func() Value) (*Object, error) {
	vm := t.vm
	s, thrown, err := t.resolveFieldSite(f.method, in)
	if thrown != nil || err != nil {
		return thrown, err
	}
	switch in.Op {
	case bytecode.Getstatic, bytecode.Putstatic:
		if s.holder.initState == 0 {
			if th, err := vm.EnsureInitialized(t, s.holder); th != nil || err != nil {
				return th, err
			}
		}
		if in.Op == bytecode.Getstatic {
			if s.wide {
				push2(s.holder.GetStatic(s.slot))
			} else {
				push(s.holder.GetStatic(s.slot))
			}
		} else {
			var v Value
			if s.wide {
				v = pop2()
			} else {
				v = pop()
			}
			s.holder.SetStatic(s.slot, v)
		}
	case bytecode.Getfield:
		o := pop().Ref()
		if o == nil {
			return vm.Throw("java/lang/NullPointerException", s.ref.String()), nil
		}
		if s.wide {
			push2(o.GetField(s.slot))
		} else {
			push(o.GetField(s.slot))
		}
	case bytecode.Putfield:
		var v Value
		if s.wide {
			v = pop2()
		} else {
			v = pop()
		}
		o := pop().Ref()
		if o == nil {
			return vm.Throw("java/lang/NullPointerException", s.ref.String()), nil
		}
		o.SetField(s.slot, v)
	}
	return nil, nil
}

// resolveInvokeSite builds (or returns) the cached resolution for one
// invocation instruction.
func (t *Thread) resolveInvokeSite(m *Method, in *bytecode.Inst) (*invokeSite, *Object, error) {
	if s, ok := m.invokeSites[in.Index]; ok {
		return s, nil, nil
	}
	vm := t.vm
	ref, err := m.Class.File.Pool.Ref(in.Index)
	if err != nil {
		return nil, nil, err
	}
	mt, err := parseMethodTypeCached(ref.Desc)
	if err != nil {
		return nil, nil, err
	}
	owner, err := vm.Class(ref.Class)
	if err != nil {
		return nil, vm.Throw("java/lang/NoClassDefFoundError", ref.Class), nil
	}
	s := &invokeSite{
		ref:      ref,
		retSlots: mt.Ret.Slots(),
		hasRecv:  in.Op != bytecode.Invokestatic,
		total:    mt.ParamSlots(),
		owner:    owner,
	}
	if s.hasRecv {
		s.total++
	}
	if in.Op == bytecode.Invokestatic || in.Op == bytecode.Invokespecial {
		s.resolved = owner.LookupMethod(ref.Name, ref.Desc)
		if s.resolved == nil {
			return nil, vm.Throw("java/lang/NoSuchMethodError", ref.String()), nil
		}
	}
	if m.invokeSites == nil {
		m.invokeSites = make(map[uint16]*invokeSite)
	}
	m.invokeSites[in.Index] = s
	return s, nil, nil
}

// execInvoke implements the four invocation instructions.
func (t *Thread) execInvoke(f *frame, in *bytecode.Inst,
	push func(Value) bool, push2 func(Value) bool) (*Object, error) {
	vm := t.vm
	s, thrown, err := t.resolveInvokeSite(f.method, in)
	if thrown != nil || err != nil {
		return thrown, err
	}
	if f.sp < s.total {
		return nil, fmt.Errorf("operand stack underflow invoking %s", s.ref)
	}
	slots := f.stack[f.sp-s.total : f.sp]
	f.sp -= s.total

	// Collapse slot sequence into argument values (drop pads).
	args := make([]Value, 0, s.total)
	for i := 0; i < len(slots); i++ {
		args = append(args, slots[i])
		if slots[i].Wide() {
			i++ // skip pad
		}
	}

	var callee *Method
	switch in.Op {
	case bytecode.Invokestatic:
		if s.owner.initState == 0 {
			if th, err := vm.EnsureInitialized(t, s.owner); th != nil || err != nil {
				return th, err
			}
		}
		callee = s.resolved
	case bytecode.Invokespecial:
		callee = s.resolved
	case bytecode.Invokevirtual, bytecode.Invokeinterface:
		recv := args[0].Ref()
		if recv == nil {
			return vm.Throw("java/lang/NullPointerException", "invoke on null receiver: "+s.ref.String()), nil
		}
		// Monomorphic inline cache: most call sites see one receiver
		// class.
		if recv.Class == s.lastRecv {
			callee = s.lastTarget
		} else {
			callee = recv.Class.LookupMethod(s.ref.Name, s.ref.Desc)
			if callee == nil {
				callee = s.owner.LookupMethod(s.ref.Name, s.ref.Desc)
			}
			if callee != nil {
				s.lastRecv = recv.Class
				s.lastTarget = callee
			}
		}
	}
	if callee == nil {
		return vm.Throw("java/lang/NoSuchMethodError", s.ref.String()), nil
	}
	if s.hasRecv && args[0].Ref() == nil && in.Op != bytecode.Invokespecial {
		return vm.Throw("java/lang/NullPointerException", s.ref.String()), nil
	}
	if callee.Flags&classfile.AccAbstract != 0 {
		return vm.Throw("java/lang/AbstractMethodError", callee.String()), nil
	}

	ret, thrown, err := t.Invoke(callee, args)
	if err != nil {
		return nil, err
	}
	if thrown != nil {
		return thrown, nil
	}
	if s.retSlots == 2 {
		push2(ret)
	} else if s.retSlots == 1 {
		push(ret)
	}
	return nil, nil
}

// newMultiArray recursively allocates a multi-dimensional array.
// className is the array class internal name (e.g. "[[I").
func (vm *VM) newMultiArray(className string, dims []int32) (*Object, error) {
	ac, err := vm.Class(className)
	if err != nil {
		return nil, err
	}
	arr := vm.NewArray(ac, int(dims[0]))
	if len(dims) > 1 {
		elemName := ac.ElemDesc
		for i := range arr.Elems {
			sub, err := vm.newMultiArray(elemName, dims[1:])
			if err != nil {
				return nil, err
			}
			arr.Elems[i] = RefV(sub)
		}
	}
	return arr, nil
}

func primDescForAType(atype uint8) string {
	switch atype {
	case bytecode.TBoolean:
		return "Z"
	case bytecode.TChar:
		return "C"
	case bytecode.TFloat:
		return "F"
	case bytecode.TDouble:
		return "D"
	case bytecode.TByte:
		return "B"
	case bytecode.TShort:
		return "S"
	case bytecode.TInt:
		return "I"
	case bytecode.TLong:
		return "J"
	}
	return "I"
}

func cmp3(a, b int64) int32 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// fcmp implements fcmpl/fcmpg and dcmpl/dcmpg NaN semantics.
func fcmp(a, b float64, gVariant bool) int32 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if gVariant {
			return 1
		}
		return -1
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// intCond evaluates the if<cond> family given the base opcode offset.
func intCond(op bytecode.Opcode, a, b int32) bool {
	switch op {
	case bytecode.Ifeq:
		return a == b
	case bytecode.Ifne:
		return a != b
	case bytecode.Iflt:
		return a < b
	case bytecode.Ifge:
		return a >= b
	case bytecode.Ifgt:
		return a > b
	case bytecode.Ifle:
		return a <= b
	}
	return false
}

// f2i implements the JVM's saturating float-to-int conversion.
func f2i(v float64) int32 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	}
	return int32(v)
}

// f2l implements the JVM's saturating float-to-long conversion.
func f2l(v float64) int64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	}
	return int64(v)
}
