package jvm

// The DVM client runtime manages its Java heap as an intrusive linked
// list of objects and reclaims unreachable ones with a straightforward
// stop-the-world mark-sweep collector. (The underlying Go GC frees the
// memory once an object leaves the list; what this collector provides is
// the Java-level reachability semantics, heap accounting, and the GC
// statistics the evaluation reports.)

// heapAdd links a freshly allocated object into the heap and triggers a
// collection when the live-object threshold is exceeded.
func (vm *VM) heapAdd(o *Object) {
	vm.hashCounter++
	o.hash = vm.hashCounter
	o.next = vm.heapHead
	vm.heapHead = o
	vm.heapCount++
	vm.Stats.ObjectsAllocated++
	if vm.heapCount >= vm.gcThreshold && vm.bootstrapped {
		vm.GC()
	}
}

// Pin marks an object as a permanent GC root (interned strings, objects
// held by native code across calls).
func (vm *VM) Pin(o *Object) {
	if o != nil {
		vm.pinned[o] = struct{}{}
	}
}

// Unpin removes a permanent root.
func (vm *VM) Unpin(o *Object) { delete(vm.pinned, o) }

// HeapCount returns the number of objects currently on the managed heap.
func (vm *VM) HeapCount() int { return vm.heapCount }

// SetGCThreshold overrides the live-object count that triggers automatic
// collection.
func (vm *VM) SetGCThreshold(n int) {
	if n > 0 {
		vm.gcThreshold = n
	}
}

// GC runs a full mark-sweep collection and returns the number of objects
// reclaimed.
func (vm *VM) GC() int {
	vm.Stats.GCRuns++

	var stack []*Object
	mark := func(o *Object) {
		if o != nil && !o.mark {
			o.mark = true
			stack = append(stack, o)
		}
	}

	// Roots: pinned objects, class statics, and every frame of the
	// (single) thread.
	for o := range vm.pinned {
		mark(o)
	}
	for _, c := range vm.classes {
		for _, v := range c.statics {
			if v.Kind == KindRef {
				mark(v.R)
			}
		}
	}
	if t := vm.mainThread; t != nil {
		for _, f := range t.frames {
			for _, v := range f.locals {
				if v.Kind == KindRef {
					mark(v.R)
				}
			}
			for i := 0; i < f.sp; i++ {
				if f.stack[i].Kind == KindRef {
					mark(f.stack[i].R)
				}
			}
		}
		mark(t.pendingThrow)
	}

	// Trace.
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range o.Fields {
			if v.Kind == KindRef {
				mark(v.R)
			}
		}
		for _, v := range o.Elems {
			if v.Kind == KindRef {
				mark(v.R)
			}
		}
		switch n := o.Native.(type) {
		case *Object:
			mark(n)
		case *javaHashtable:
			for k, v := range n.m {
				if v.Kind == KindRef {
					mark(v.R)
				}
				mark(n.refs[k])
			}
		case *javaVector:
			for _, v := range n.elems {
				if v.Kind == KindRef {
					mark(v.R)
				}
			}
		}
	}

	// Sweep.
	collected := 0
	var head *Object
	var tail *Object
	for o := vm.heapHead; o != nil; {
		next := o.next
		if o.mark {
			o.mark = false
			o.next = nil
			if head == nil {
				head = o
				tail = o
			} else {
				tail.next = o
				tail = o
			}
		} else {
			o.next = nil
			collected++
		}
		o = next
	}
	vm.heapHead = head
	vm.heapCount -= collected
	vm.Stats.ObjectsCollected += int64(collected)
	// Grow the threshold if the live set is large so GC frequency stays
	// proportional to allocation, not live-set size.
	if vm.heapCount*2 > vm.gcThreshold {
		vm.gcThreshold = vm.heapCount * 2
	}
	return collected
}
