package jvm

// Native implementations of the java/io subset over the virtual
// filesystem. The anticipated security hooks of the monolithic baseline
// live at file *open* (and delete) — there is deliberately no hook at
// read, mirroring the JDK limitation that Figure 9 of the paper exploits:
// "A malicious application that acquires a file handle ... can thus avoid
// security checks, which are imposed only on object creation."
func (vm *VM) registerIONatives() {
	// java/io/File
	vm.RegisterNative("java/io/File", "<init>", "(Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			o := args[0].Ref()
			if slot, ok := o.Class.FieldSlot("path", "Ljava/lang/String;"); ok {
				o.SetField(slot, args[1])
			}
			return nilRet()
		})
	filePath := func(o *Object) string {
		slot, _ := o.Class.FieldSlot("path", "Ljava/lang/String;")
		return GoString(o.GetField(slot).Ref())
	}
	vm.RegisterNative("java/io/File", "exists", "()Z",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return boolRet(t.vm.VFS.Exists(filePath(args[0].Ref())))
		})
	vm.RegisterNative("java/io/File", "getPath", "()Ljava/lang/String;",
		func(t *Thread, args []Value) (Value, *Object, error) {
			return strRet(t, filePath(args[0].Ref()))
		})
	vm.RegisterNative("java/io/File", "delete", "()Z",
		func(t *Thread, args []Value) (Value, *Object, error) {
			path := filePath(args[0].Ref())
			if ex := t.vm.libCheck(t, "file.delete", path); ex != nil {
				return Value{}, ex, nil
			}
			return boolRet(t.vm.VFS.Remove(path))
		})

	// java/io/InputStream
	vm.RegisterNative("java/io/InputStream", "<init>", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() })
	vm.RegisterNative("java/io/InputStream", "read", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) { return IntV(-1), nil, nil })
	vm.RegisterNative("java/io/InputStream", "close", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) { return nilRet() })

	// java/io/FileInputStream
	vm.RegisterNative("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			path := argStr(args, 1)
			// Anticipated hook: open is checked in the monolithic model.
			if ex := t.vm.libCheck(t, "file.open", path); ex != nil {
				return Value{}, ex, nil
			}
			data, err := t.vm.VFS.Read(path)
			if err != nil {
				return Value{}, t.vm.Throw("java/io/FileNotFoundException", path), nil
			}
			args[0].Ref().Native = &fileHandle{path: path, data: data, fs: t.vm.VFS}
			return nilRet()
		})
	fin := func(o *Object) *fileHandle {
		h, _ := o.Native.(*fileHandle)
		return h
	}
	vm.RegisterNative("java/io/FileInputStream", "read", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h := fin(args[0].Ref())
			if h == nil {
				return Value{}, t.vm.Throw("java/io/IOException", "stream closed"), nil
			}
			// NOTE: no security hook here (see package comment).
			if h.pos >= len(h.data) {
				return IntV(-1), nil, nil
			}
			b := h.data[h.pos]
			h.pos++
			return IntV(int32(b)), nil, nil
		})
	vm.RegisterNative("java/io/FileInputStream", "read", "([B)I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h := fin(args[0].Ref())
			buf := args[1].Ref()
			if h == nil {
				return Value{}, t.vm.Throw("java/io/IOException", "stream closed"), nil
			}
			if buf == nil {
				return Value{}, t.vm.Throw("java/lang/NullPointerException", "read buffer"), nil
			}
			if h.pos >= len(h.data) {
				return IntV(-1), nil, nil
			}
			n := 0
			for n < buf.Len() && h.pos < len(h.data) {
				buf.Elems[n] = IntV(int32(int8(h.data[h.pos])))
				n++
				h.pos++
			}
			return IntV(int32(n)), nil, nil
		})
	vm.RegisterNative("java/io/FileInputStream", "available", "()I",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h := fin(args[0].Ref())
			if h == nil {
				return IntV(0), nil, nil
			}
			return IntV(int32(len(h.data) - h.pos)), nil, nil
		})
	vm.RegisterNative("java/io/FileInputStream", "close", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			args[0].Ref().Native = nil
			return nilRet()
		})

	// java/io/FileOutputStream
	vm.RegisterNative("java/io/FileOutputStream", "<init>", "(Ljava/lang/String;)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			path := argStr(args, 1)
			if ex := t.vm.libCheck(t, "file.open", path); ex != nil {
				return Value{}, ex, nil
			}
			args[0].Ref().Native = &fileHandle{path: path, fs: t.vm.VFS, out: true}
			t.vm.VFS.Write(path, nil)
			return nilRet()
		})
	vm.RegisterNative("java/io/FileOutputStream", "write", "(I)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h := fin(args[0].Ref())
			if h == nil || !h.out {
				return Value{}, t.vm.Throw("java/io/IOException", "stream closed"), nil
			}
			h.fs.Append(h.path, []byte{byte(args[1].Int())})
			return nilRet()
		})
	vm.RegisterNative("java/io/FileOutputStream", "write", "([B)V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			h := fin(args[0].Ref())
			buf := args[1].Ref()
			if h == nil || !h.out {
				return Value{}, t.vm.Throw("java/io/IOException", "stream closed"), nil
			}
			if buf == nil {
				return Value{}, t.vm.Throw("java/lang/NullPointerException", "write buffer"), nil
			}
			bs := make([]byte, buf.Len())
			for i := range bs {
				bs[i] = byte(buf.Elems[i].Int())
			}
			h.fs.Append(h.path, bs)
			return nilRet()
		})
	vm.RegisterNative("java/io/FileOutputStream", "close", "()V",
		func(t *Thread, args []Value) (Value, *Object, error) {
			args[0].Ref().Native = nil
			return nilRet()
		})
}
