package jvm

import (
	"fmt"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// Class is a loaded, linked runtime class.
type Class struct {
	Name       string
	File       *classfile.ClassFile // nil for array classes
	Super      *Class
	Interfaces []*Class
	Flags      uint16

	// Instance field layout: superclass slots first.
	instanceSlots int
	slotDescs     []string          // descriptor per instance slot (for zeroing)
	fieldSlot     map[string]int    // "name desc" -> slot (declared here only)
	fieldDesc     map[string]string // name -> desc (declared here)

	// Statics.
	statics     []Value
	staticSlot  map[string]int
	methods     map[string]*Method // "name desc" -> declared method
	methodOrder []*Method

	// Array classes.
	IsArray  bool
	ElemDesc string // element type descriptor for arrays
	Elem     *Class // element class for reference arrays, nil for primitives

	vm          *VM
	initState   int // 0 = uninitialized, 1 = initializing, 2 = done
	initPending bool
}

// Method is a linked method.
type Method struct {
	Class *Class
	Name  string
	Desc  string
	Flags uint16
	MT    bytecode.MethodType

	Code     *classfile.Code
	insts    []bytecode.Inst
	handlers []rtHandler
	prepared bool

	// Resolution caches, built lazily per call site (the VM is
	// single-threaded). invokeSites carries an inline cache for virtual
	// dispatch.
	invokeSites map[uint16]*invokeSite
	fieldSites  map[uint16]*fieldSite

	Native NativeFunc // non-nil for runtime-provided methods

	// CompiledHint marks methods the AOT compilation service translated;
	// the interpreter charges a reduced per-instruction cost model for
	// them (see internal/compiler).
	CompiledHint bool
}

type rtHandler struct {
	startIdx, endIdx, handlerIdx int // instruction index range [start, end)
	catchType                    string
}

// invokeSite caches the resolution of one invocation instruction.
type invokeSite struct {
	ref      classfile.MemberRef
	retSlots int
	hasRecv  bool
	total    int // operand slots consumed (args + receiver)
	owner    *Class
	resolved *Method // static resolution (invokestatic/invokespecial)
	// Monomorphic inline cache for invokevirtual/invokeinterface.
	lastRecv   *Class
	lastTarget *Method
}

// fieldSite caches the resolution of one field access instruction.
type fieldSite struct {
	ref    classfile.MemberRef
	wide   bool
	static bool
	holder *Class // declaring class (statics)
	slot   int
}

// NativeFunc implements a method in Go. It returns the method result (for
// non-void methods), a thrown Java exception object (nil if none), or an
// internal VM error.
type NativeFunc func(t *Thread, args []Value) (Value, *Object, error)

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Flags&classfile.AccStatic != 0 }

// Key returns the lookup key "name desc".
func (m *Method) Key() string { return m.Name + " " + m.Desc }

func (m *Method) String() string { return m.Class.Name + "." + m.Name + m.Desc }

// prepare decodes bytecode and converts the exception table to
// instruction-index form; done lazily on first invocation.
func (m *Method) prepare() error {
	if m.prepared || m.Code == nil {
		m.prepared = true
		return nil
	}
	// The DVM client runtime accepts its own native format (extension
	// opcodes emitted by the centralized compilation service) alongside
	// standard bytecode.
	insts, err := bytecode.DecodeExt(m.Code.Bytecode)
	if err != nil {
		return fmt.Errorf("jvm: %s: %w", m, err)
	}
	m.insts = insts
	pcIdx := bytecode.PCMap(insts)
	endIdx := func(pc uint16) (int, bool) {
		if int(pc) == len(m.Code.Bytecode) {
			return len(insts), true
		}
		i, ok := pcIdx[int(pc)]
		return i, ok
	}
	for _, h := range m.Code.Handlers {
		si, ok1 := pcIdx[int(h.StartPC)]
		ei, ok2 := endIdx(h.EndPC)
		hi, ok3 := pcIdx[int(h.HandlerPC)]
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("jvm: %s: exception table entry not on instruction boundary", m)
		}
		var ct string
		if h.CatchType != 0 {
			name, err := m.Class.File.Pool.ClassName(h.CatchType)
			if err != nil {
				return fmt.Errorf("jvm: %s: bad catch type: %w", m, err)
			}
			ct = name
		}
		m.handlers = append(m.handlers, rtHandler{startIdx: si, endIdx: ei, handlerIdx: hi, catchType: ct})
	}
	m.prepared = true
	return nil
}

// DeclaredMethod returns the method declared directly on c, or nil.
func (c *Class) DeclaredMethod(name, desc string) *Method {
	return c.methods[name+" "+desc]
}

// LookupMethod resolves a method by walking the superclass chain and then
// superinterfaces, as invokevirtual/invokeinterface resolution does.
func (c *Class) LookupMethod(name, desc string) *Method {
	key := name + " " + desc
	for k := c; k != nil; k = k.Super {
		if m := k.methods[key]; m != nil {
			return m
		}
	}
	// Interface default-free era: search interfaces for abstract declarations
	// (useful for reflective existence checks only).
	var walk func(k *Class) *Method
	walk = func(k *Class) *Method {
		if k == nil {
			return nil
		}
		if m := k.methods[key]; m != nil {
			return m
		}
		for _, i := range k.Interfaces {
			if m := walk(i); m != nil {
				return m
			}
		}
		return walk(k.Super)
	}
	return walk(c)
}

// Methods returns the methods declared on c in declaration order.
func (c *Class) Methods() []*Method { return c.methodOrder }

// FieldSlot resolves an instance field to its slot by walking the
// superclass chain. The boolean result reports whether it was found.
func (c *Class) FieldSlot(name, desc string) (int, bool) {
	key := name + " " + desc
	for k := c; k != nil; k = k.Super {
		if s, ok := k.fieldSlot[key]; ok {
			return s, true
		}
	}
	return 0, false
}

// StaticSlot resolves a static field to (owning class, slot).
func (c *Class) StaticSlot(name, desc string) (*Class, int, bool) {
	key := name + " " + desc
	for k := c; k != nil; k = k.Super {
		if s, ok := k.staticSlot[key]; ok {
			return k, s, true
		}
	}
	return nil, 0, false
}

// GetStatic reads a static slot on this exact class.
func (c *Class) GetStatic(slot int) Value { return c.statics[slot] }

// SetStatic writes a static slot on this exact class.
func (c *Class) SetStatic(slot int, v Value) { c.statics[slot] = v }

// HasField reports whether the class or a superclass declares the named
// field with the given descriptor (instance or static). Used by the
// RTVerifier dynamic link checks.
func (c *Class) HasField(name, desc string) bool {
	if _, ok := c.FieldSlot(name, desc); ok {
		return true
	}
	_, _, ok := c.StaticSlot(name, desc)
	return ok
}

// AssignableTo implements the subtype relation used by checkcast,
// instanceof, aastore checks, and exception handler matching.
func (c *Class) AssignableTo(t *Class) bool {
	if c == t {
		return true
	}
	if t.Name == "java/lang/Object" {
		return true
	}
	if c.IsArray {
		if !t.IsArray {
			return false
		}
		if c.ElemDesc == t.ElemDesc {
			return true
		}
		// Covariance for reference element types.
		if c.Elem != nil && t.Elem != nil {
			return c.Elem.AssignableTo(t.Elem)
		}
		return false
	}
	if t.Flags&classfile.AccInterface != 0 {
		return c.implementsIface(t)
	}
	for k := c.Super; k != nil; k = k.Super {
		if k == t {
			return true
		}
	}
	return false
}

func (c *Class) implementsIface(t *Class) bool {
	for k := c; k != nil; k = k.Super {
		for _, i := range k.Interfaces {
			if i == t || i.implementsIface(t) {
				return true
			}
		}
	}
	return false
}

// IsSubclassOf reports whether c is t or a subclass of t (class chain
// only, no interfaces).
func (c *Class) IsSubclassOf(t *Class) bool {
	for k := c; k != nil; k = k.Super {
		if k == t {
			return true
		}
	}
	return false
}

func (c *Class) String() string { return c.Name }

// arrayClassNameFor returns the runtime name of an array class with the
// given element descriptor, e.g. "[I" or "[Ljava/lang/String;".
func arrayClassNameFor(elemDesc string) string {
	return "[" + elemDesc
}

// elemDescOfArrayName extracts the element descriptor from an array class
// name ("[I" -> "I").
func elemDescOfArrayName(name string) (string, bool) {
	if !strings.HasPrefix(name, "[") {
		return "", false
	}
	return name[1:], true
}
