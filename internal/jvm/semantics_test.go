package jvm

import (
	"math"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// TestFloatConversionSaturation covers the JVM's saturating f2i/d2l
// semantics, including NaN-to-zero.
func TestFloatConversionSaturation(t *testing.T) {
	b := classgen.NewClass("sem/Conv", "java/lang/Object")
	f2i := b.Method(classfile.AccPublic|classfile.AccStatic, "f2i", "(F)I")
	f2i.FLoad(0).Inst(bytecode.F2i).IReturn()
	d2l := b.Method(classfile.AccPublic|classfile.AccStatic, "d2l", "(D)J")
	d2l.DLoad(0).Inst(bytecode.D2l).LReturn()

	vm := newTestVM(t, nil, b)
	cases := []struct {
		in   float32
		want int32
	}{
		{float32(math.NaN()), 0},
		{float32(math.Inf(1)), math.MaxInt32},
		{float32(math.Inf(-1)), math.MinInt32},
		{1e20, math.MaxInt32},
		{-1e20, math.MinInt32},
		{42.9, 42},
		{-42.9, -42},
	}
	for _, c := range cases {
		v, thrown := callStatic(t, vm, "sem/Conv", "f2i", "(F)I", FloatV(c.in))
		if thrown != nil || v.Int() != c.want {
			t.Errorf("f2i(%g) = %d, want %d", c.in, v.Int(), c.want)
		}
	}
	lcases := []struct {
		in   float64
		want int64
	}{
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt64},
		{-1e300, math.MinInt64},
		{123.99, 123},
	}
	for _, c := range lcases {
		v, thrown := callStatic(t, vm, "sem/Conv", "d2l", "(D)J", DoubleV(c.in))
		if thrown != nil || v.Long() != c.want {
			t.Errorf("d2l(%g) = %d, want %d", c.in, v.Long(), c.want)
		}
	}
}

// TestFcmpNaNSemantics: fcmpl pushes -1 on NaN, fcmpg pushes +1.
func TestFcmpNaNSemantics(t *testing.T) {
	b := classgen.NewClass("sem/Cmp", "java/lang/Object")
	l := b.Method(classfile.AccPublic|classfile.AccStatic, "cmpl", "(FF)I")
	l.FLoad(0).FLoad(1).Inst(bytecode.Fcmpl).IReturn()
	g := b.Method(classfile.AccPublic|classfile.AccStatic, "cmpg", "(FF)I")
	g.FLoad(0).FLoad(1).Inst(bytecode.Fcmpg).IReturn()

	vm := newTestVM(t, nil, b)
	nan := FloatV(float32(math.NaN()))
	v, _ := callStatic(t, vm, "sem/Cmp", "cmpl", "(FF)I", nan, FloatV(1))
	if v.Int() != -1 {
		t.Errorf("fcmpl(NaN, 1) = %d, want -1", v.Int())
	}
	v, _ = callStatic(t, vm, "sem/Cmp", "cmpg", "(FF)I", nan, FloatV(1))
	if v.Int() != 1 {
		t.Errorf("fcmpg(NaN, 1) = %d, want 1", v.Int())
	}
	v, _ = callStatic(t, vm, "sem/Cmp", "cmpl", "(FF)I", FloatV(2), FloatV(1))
	if v.Int() != 1 {
		t.Errorf("fcmpl(2, 1) = %d, want 1", v.Int())
	}
}

// TestDupComplexForms executes dup_x1/dup2_x1/dup2 over live values.
func TestDupComplexForms(t *testing.T) {
	b := classgen.NewClass("sem/Dup", "java/lang/Object")
	// dup_x1: a b -> b a b ; compute b*100 + a*10 + b
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "dx1", "(II)I")
	m.ILoad(0).ILoad(1)
	m.Inst(bytecode.DupX1)
	// stack: b a b
	m.IStore(2).IStore(3).IStore(4)
	// locals: 2=b(top) 3=a 4=b
	m.ILoad(4).IConst(100).IMul()
	m.ILoad(3).IConst(10).IMul().IAdd()
	m.ILoad(2).IAdd()
	m.IReturn()
	// dup2 over a long pair: (l dup2 ladd) == 2*l
	m2 := b.Method(classfile.AccPublic|classfile.AccStatic, "d2l", "(J)J")
	m2.LLoad(0)
	m2.Inst(bytecode.Dup2)
	m2.Inst(bytecode.Ladd)
	m2.LReturn()

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "sem/Dup", "dx1", "(II)I", IntV(3), IntV(7))
	if thrown != nil {
		t.Fatal(DescribeThrowable(thrown))
	}
	// b a b with b=7, a=3: 7*100 + 3*10 + 7 = 737
	if v.Int() != 737 {
		t.Errorf("dx1 = %d, want 737", v.Int())
	}
	v, thrown = callStatic(t, vm, "sem/Dup", "d2l", "(J)J", LongV(1<<40))
	if thrown != nil || v.Long() != 1<<41 {
		t.Errorf("d2l = %d", v.Long())
	}
}

// TestGCTracesHashtableAndVector: objects reachable only through native
// collection payloads survive collection.
func TestGCTracesHashtableAndVector(t *testing.T) {
	b := classgen.NewClass("sem/Coll", "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "table", "Ljava/util/Hashtable;")
	setup := b.Method(classfile.AccPublic|classfile.AccStatic, "setup", "()V")
	setup.NewDup("java/util/Hashtable")
	setup.InvokeSpecial("java/util/Hashtable", "<init>", "()V")
	setup.PutStatic("sem/Coll", "table", "Ljava/util/Hashtable;")
	setup.GetStatic("sem/Coll", "table", "Ljava/util/Hashtable;")
	setup.LdcString("key")
	setup.NewDup("java/lang/StringBuffer")
	setup.InvokeSpecial("java/lang/StringBuffer", "<init>", "()V")
	setup.InvokeVirtual("java/util/Hashtable", "put", "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;")
	setup.Pop()
	setup.Return()
	get := b.Method(classfile.AccPublic|classfile.AccStatic, "get", "()Ljava/lang/Object;")
	get.GetStatic("sem/Coll", "table", "Ljava/util/Hashtable;")
	get.LdcString("key")
	get.InvokeVirtual("java/util/Hashtable", "get", "(Ljava/lang/Object;)Ljava/lang/Object;")
	get.AReturn()

	vm := newTestVM(t, nil, b)
	callStatic(t, vm, "sem/Coll", "setup", "()V")
	vm.GC()
	vm.GC()
	v, thrown := callStatic(t, vm, "sem/Coll", "get", "()Ljava/lang/Object;")
	if thrown != nil {
		t.Fatal(DescribeThrowable(thrown))
	}
	if v.Ref() == nil {
		t.Fatal("hashtable value collected despite being reachable")
	}
	if v.Ref().Class.Name != "java/lang/StringBuffer" {
		t.Errorf("class = %s", v.Ref().Class.Name)
	}
}

// TestArrayCovarianceAndStoreCheck: Object[] holding a String array
// rejects an incompatible store at run time.
func TestArrayCovarianceAndStoreCheck(t *testing.T) {
	b := classgen.NewClass("sem/Cov", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()V")
	m.IConst(1).ANewArray("java/lang/String")
	m.AStore(0)
	m.ALoad(0).IConst(0)
	m.NewDup("java/lang/Object")
	m.InvokeSpecial("java/lang/Object", "<init>", "()V")
	m.Inst(bytecode.Aastore) // Object into String[]: ArrayStoreException
	m.Return()
	vm := newTestVM(t, nil, b)
	_, thrown := callStatic(t, vm, "sem/Cov", "f", "()V")
	if thrown == nil || thrown.Class.Name != "java/lang/ArrayStoreException" {
		t.Errorf("thrown = %v", DescribeThrowable(thrown))
	}
	// And the subtype relation itself.
	sArr, err := vm.Class("[Ljava/lang/String;")
	if err != nil {
		t.Fatal(err)
	}
	oArr, err := vm.Class("[Ljava/lang/Object;")
	if err != nil {
		t.Fatal(err)
	}
	if !sArr.AssignableTo(oArr) {
		t.Error("String[] not assignable to Object[]")
	}
	if oArr.AssignableTo(sArr) {
		t.Error("Object[] assignable to String[]")
	}
}

// TestFinallyViaHandlers: the modern finally pattern (duplicate code +
// catch-all rethrow) unwinds correctly.
func TestFinallyViaHandlers(t *testing.T) {
	b := classgen.NewClass("sem/Fin", "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "cleanups", "I")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	start := m.Here()
	bad := m.NewLabel()
	m.ILoad(0).Branch(bytecode.Ifeq, bad)
	// normal path: cleanup, return 1
	m.GetStatic("sem/Fin", "cleanups", "I").IConst(1).IAdd().PutStatic("sem/Fin", "cleanups", "I")
	m.IConst(1).IReturn()
	m.Mark(bad)
	m.NewDup("java/lang/RuntimeException")
	m.InvokeSpecial("java/lang/RuntimeException", "<init>", "()V")
	m.AThrow()
	end := m.NewLabel()
	m.Mark(end)
	h := m.Here()
	// catch-all: cleanup, rethrow
	m.GetStatic("sem/Fin", "cleanups", "I").IConst(1).IAdd().PutStatic("sem/Fin", "cleanups", "I")
	m.AThrow()
	m.Handler(start, end, h, "")

	vm := newTestVM(t, nil, b)
	v, thrown := callStatic(t, vm, "sem/Fin", "f", "(I)I", IntV(1))
	if thrown != nil || v.Int() != 1 {
		t.Fatalf("normal path: %v %v", v, DescribeThrowable(thrown))
	}
	_, thrown = callStatic(t, vm, "sem/Fin", "f", "(I)I", IntV(0))
	if thrown == nil || thrown.Class.Name != "java/lang/RuntimeException" {
		t.Fatalf("exception path: %v", DescribeThrowable(thrown))
	}
	c, _ := vm.Class("sem/Fin")
	_, slot, _ := c.StaticSlot("cleanups", "I")
	if got := c.GetStatic(slot).Int(); got != 2 {
		t.Errorf("cleanups = %d, want 2 (both paths)", got)
	}
}
