package jvm

import (
	"fmt"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// bootstrap builds the runtime library: the java/lang and java/io subset
// the DVM services and workloads depend on, plus the dvm/* dynamic
// service component classes (RTVerifier, Enforce, Audit, Profile) that
// the network proxy's rewritten code invokes.
//
// Runtime classes are generated with classgen and their methods bound to
// Go natives; this exercises the same classfile substrate as application
// code and keeps the trusted computing base in one place.
func (vm *VM) bootstrap() error {
	vm.registerCoreNatives()
	vm.registerLangExtras()
	vm.registerIONatives()
	vm.registerUtilNatives()
	vm.registerDVMNatives()

	for _, build := range bootstrapClasses {
		cf, err := build().Build()
		if err != nil {
			return fmt.Errorf("jvm: bootstrap: %w", err)
		}
		if _, err := vm.link(cf); err != nil {
			return fmt.Errorf("jvm: bootstrap %s: %w", cf.Name(), err)
		}
	}
	// Initialize System.out with a PrintStream bound to vm.Stdout.
	sys := vm.classes["java/lang/System"]
	ps := vm.NewInstance(vm.classes["java/io/PrintStream"])
	ps.Native = &printStream{}
	if _, slot, ok := sys.StaticSlot("out", "Ljava/io/PrintStream;"); ok {
		sys.SetStatic(slot, RefV(ps))
	}
	if _, slot, ok := sys.StaticSlot("err", "Ljava/io/PrintStream;"); ok {
		sys.SetStatic(slot, RefV(ps))
	}
	vm.Pin(ps)
	for _, c := range vm.classes {
		c.initState = 2 // bootstrap classes need no <clinit>
	}
	return nil
}

type printStream struct{}

const (
	pub    = classfile.AccPublic
	pubNat = classfile.AccPublic | classfile.AccNative
	pubStN = classfile.AccPublic | classfile.AccStatic | classfile.AccNative
	pubFin = classfile.AccPublic | classfile.AccFinal
)

// nativeClass declares a class whose methods are all native stubs.
func nativeClass(name, super string, decl func(b *classgen.ClassBuilder)) func() *classgen.ClassBuilder {
	return func() *classgen.ClassBuilder {
		b := classgen.NewClass(name, super)
		if decl != nil {
			decl(b)
		}
		return b
	}
}

// throwableClass declares one exception class with the standard
// message-carrying constructors.
func throwableClass(name, super string) func() *classgen.ClassBuilder {
	return nativeClass(name, super, func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "<init>", "(Ljava/lang/String;)V")
	})
}

// bootstrapClasses lists the runtime image in dependency order.
var bootstrapClasses = []func() *classgen.ClassBuilder{
	nativeClass("java/lang/Object", "", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "hashCode", "()I")
		b.AbstractMethod(pubNat, "equals", "(Ljava/lang/Object;)Z")
		b.AbstractMethod(pubNat, "toString", "()Ljava/lang/String;")
		b.AbstractMethod(pubNat, "getClass", "()Ljava/lang/Class;")
	}),
	nativeClass("java/lang/Class", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "getName", "()Ljava/lang/String;")
	}),
	nativeClass("java/lang/String", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "length", "()I")
		b.AbstractMethod(pubNat, "charAt", "(I)C")
		b.AbstractMethod(pubNat, "equals", "(Ljava/lang/Object;)Z")
		b.AbstractMethod(pubNat, "hashCode", "()I")
		b.AbstractMethod(pubNat, "concat", "(Ljava/lang/String;)Ljava/lang/String;")
		b.AbstractMethod(pubNat, "substring", "(II)Ljava/lang/String;")
		b.AbstractMethod(pubNat, "substring", "(I)Ljava/lang/String;")
		b.AbstractMethod(pubNat, "indexOf", "(I)I")
		b.AbstractMethod(pubNat, "indexOf", "(Ljava/lang/String;)I")
		b.AbstractMethod(pubNat, "compareTo", "(Ljava/lang/String;)I")
		b.AbstractMethod(pubNat, "startsWith", "(Ljava/lang/String;)Z")
		b.AbstractMethod(pubNat, "endsWith", "(Ljava/lang/String;)Z")
		b.AbstractMethod(pubNat, "toString", "()Ljava/lang/String;")
		b.AbstractMethod(pubNat, "intern", "()Ljava/lang/String;")
		b.AbstractMethod(pubNat, "toLowerCase", "()Ljava/lang/String;")
		b.AbstractMethod(pubNat, "toUpperCase", "()Ljava/lang/String;")
		b.AbstractMethod(pubNat, "trim", "()Ljava/lang/String;")
		b.AbstractMethod(pubNat, "replace", "(CC)Ljava/lang/String;")
		b.AbstractMethod(pubNat, "lastIndexOf", "(I)I")
		b.AbstractMethod(pubNat, "toCharArray", "()[C")
		b.AbstractMethod(pubStN, "valueOf", "(I)Ljava/lang/String;")
		b.AbstractMethod(pubStN, "valueOf", "(J)Ljava/lang/String;")
		b.AbstractMethod(pubStN, "valueOf", "(C)Ljava/lang/String;")
		b.AbstractMethod(pubStN, "valueOf", "(D)Ljava/lang/String;")
	}),

	// Throwable hierarchy.
	nativeClass("java/lang/Throwable", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.Field(classfile.AccProtected, "message", "Ljava/lang/String;")
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "<init>", "(Ljava/lang/String;)V")
		b.AbstractMethod(pubNat, "getMessage", "()Ljava/lang/String;")
		b.AbstractMethod(pubNat, "toString", "()Ljava/lang/String;")
	}),
	throwableClass("java/lang/Exception", "java/lang/Throwable"),
	throwableClass("java/lang/RuntimeException", "java/lang/Exception"),
	throwableClass("java/lang/Error", "java/lang/Throwable"),
	throwableClass("java/lang/LinkageError", "java/lang/Error"),
	throwableClass("java/lang/VirtualMachineError", "java/lang/Error"),
	throwableClass("java/lang/NullPointerException", "java/lang/RuntimeException"),
	throwableClass("java/lang/IndexOutOfBoundsException", "java/lang/RuntimeException"),
	throwableClass("java/lang/ArrayIndexOutOfBoundsException", "java/lang/IndexOutOfBoundsException"),
	throwableClass("java/lang/StringIndexOutOfBoundsException", "java/lang/IndexOutOfBoundsException"),
	throwableClass("java/lang/ArithmeticException", "java/lang/RuntimeException"),
	throwableClass("java/lang/ArrayStoreException", "java/lang/RuntimeException"),
	throwableClass("java/lang/ClassCastException", "java/lang/RuntimeException"),
	throwableClass("java/lang/NegativeArraySizeException", "java/lang/RuntimeException"),
	throwableClass("java/lang/IllegalArgumentException", "java/lang/RuntimeException"),
	throwableClass("java/lang/IllegalStateException", "java/lang/RuntimeException"),
	throwableClass("java/lang/NumberFormatException", "java/lang/IllegalArgumentException"),
	throwableClass("java/lang/SecurityException", "java/lang/RuntimeException"),
	throwableClass("java/lang/StackOverflowError", "java/lang/VirtualMachineError"),
	throwableClass("java/lang/OutOfMemoryError", "java/lang/VirtualMachineError"),
	throwableClass("java/lang/NoClassDefFoundError", "java/lang/LinkageError"),
	throwableClass("java/lang/VerifyError", "java/lang/LinkageError"),
	throwableClass("java/lang/NoSuchFieldError", "java/lang/LinkageError"),
	throwableClass("java/lang/NoSuchMethodError", "java/lang/LinkageError"),
	throwableClass("java/lang/AbstractMethodError", "java/lang/LinkageError"),
	throwableClass("java/lang/ClassNotFoundException", "java/lang/Exception"),
	throwableClass("java/io/IOException", "java/lang/Exception"),
	throwableClass("java/io/FileNotFoundException", "java/io/IOException"),

	// Interfaces.
	func() *classgen.ClassBuilder {
		b := classgen.NewClass("java/lang/Runnable", "java/lang/Object")
		b.SetFlags(classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract)
		b.AbstractMethod(classfile.AccPublic|classfile.AccAbstract, "run", "()V")
		return b
	},
	func() *classgen.ClassBuilder {
		b := classgen.NewClass("java/util/Enumeration", "java/lang/Object")
		b.SetFlags(classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract)
		b.AbstractMethod(classfile.AccPublic|classfile.AccAbstract, "hasMoreElements", "()Z")
		b.AbstractMethod(classfile.AccPublic|classfile.AccAbstract, "nextElement", "()Ljava/lang/Object;")
		return b
	},

	// Core library.
	nativeClass("java/io/OutputStream", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "write", "(I)V")
		b.AbstractMethod(pubNat, "close", "()V")
		b.AbstractMethod(pubNat, "flush", "()V")
	}),
	nativeClass("java/io/PrintStream", "java/io/OutputStream", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "println", "(Ljava/lang/String;)V")
		b.AbstractMethod(pubNat, "println", "(I)V")
		b.AbstractMethod(pubNat, "println", "(J)V")
		b.AbstractMethod(pubNat, "println", "(D)V")
		b.AbstractMethod(pubNat, "println", "()V")
		b.AbstractMethod(pubNat, "print", "(Ljava/lang/String;)V")
		b.AbstractMethod(pubNat, "print", "(I)V")
		b.AbstractMethod(pubNat, "print", "(C)V")
	}),
	nativeClass("java/lang/System", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.Field(classfile.AccPublic|classfile.AccStatic|classfile.AccFinal, "out", "Ljava/io/PrintStream;")
		b.Field(classfile.AccPublic|classfile.AccStatic|classfile.AccFinal, "err", "Ljava/io/PrintStream;")
		b.AbstractMethod(pubStN, "getProperty", "(Ljava/lang/String;)Ljava/lang/String;")
		b.AbstractMethod(pubStN, "setProperty", "(Ljava/lang/String;Ljava/lang/String;)Ljava/lang/String;")
		b.AbstractMethod(pubStN, "currentTimeMillis", "()J")
		b.AbstractMethod(pubStN, "arraycopy", "(Ljava/lang/Object;ILjava/lang/Object;II)V")
		b.AbstractMethod(pubStN, "gc", "()V")
	}),
	nativeClass("java/lang/Math", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "abs", "(I)I")
		b.AbstractMethod(pubStN, "abs", "(D)D")
		b.AbstractMethod(pubStN, "min", "(II)I")
		b.AbstractMethod(pubStN, "max", "(II)I")
		b.AbstractMethod(pubStN, "sqrt", "(D)D")
		b.AbstractMethod(pubStN, "floor", "(D)D")
		b.AbstractMethod(pubStN, "ceil", "(D)D")
	}),
	nativeClass("java/lang/Integer", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "parseInt", "(Ljava/lang/String;)I")
		b.AbstractMethod(pubStN, "toString", "(I)Ljava/lang/String;")
		b.AbstractMethod(pubStN, "toHexString", "(I)Ljava/lang/String;")
	}),
	nativeClass("java/lang/Long", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "parseLong", "(Ljava/lang/String;)J")
		b.AbstractMethod(pubStN, "toString", "(J)Ljava/lang/String;")
	}),
	nativeClass("java/lang/Character", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "isDigit", "(C)Z")
		b.AbstractMethod(pubStN, "isLetter", "(C)Z")
		b.AbstractMethod(pubStN, "isWhitespace", "(C)Z")
		b.AbstractMethod(pubStN, "toUpperCase", "(C)C")
		b.AbstractMethod(pubStN, "toLowerCase", "(C)C")
	}),
	nativeClass("java/lang/Boolean", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "toString", "(Z)Ljava/lang/String;")
	}),
	nativeClass("java/lang/Thread", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubStN, "currentThread", "()Ljava/lang/Thread;")
		b.AbstractMethod(pubNat, "setPriority", "(I)V")
		b.AbstractMethod(pubNat, "getPriority", "()I")
		b.AbstractMethod(pubStN, "sleep", "(J)V")
		b.AbstractMethod(pubStN, "yield", "()V")
	}),
	nativeClass("java/lang/StringBuffer", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "<init>", "(Ljava/lang/String;)V")
		b.AbstractMethod(pubNat, "append", "(Ljava/lang/String;)Ljava/lang/StringBuffer;")
		b.AbstractMethod(pubNat, "append", "(I)Ljava/lang/StringBuffer;")
		b.AbstractMethod(pubNat, "append", "(J)Ljava/lang/StringBuffer;")
		b.AbstractMethod(pubNat, "append", "(C)Ljava/lang/StringBuffer;")
		b.AbstractMethod(pubNat, "append", "(D)Ljava/lang/StringBuffer;")
		b.AbstractMethod(pubNat, "length", "()I")
		b.AbstractMethod(pubNat, "toString", "()Ljava/lang/String;")
	}),

	// java/io file classes over the virtual filesystem.
	nativeClass("java/io/File", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.Field(classfile.AccPrivate, "path", "Ljava/lang/String;")
		b.AbstractMethod(pubNat, "<init>", "(Ljava/lang/String;)V")
		b.AbstractMethod(pubNat, "exists", "()Z")
		b.AbstractMethod(pubNat, "getPath", "()Ljava/lang/String;")
		b.AbstractMethod(pubNat, "delete", "()Z")
	}),
	nativeClass("java/io/InputStream", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "read", "()I")
		b.AbstractMethod(pubNat, "close", "()V")
	}),
	nativeClass("java/io/FileInputStream", "java/io/InputStream", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "(Ljava/lang/String;)V")
		b.AbstractMethod(pubNat, "read", "()I")
		b.AbstractMethod(pubNat, "read", "([B)I")
		b.AbstractMethod(pubNat, "available", "()I")
		b.AbstractMethod(pubNat, "close", "()V")
	}),
	nativeClass("java/io/FileOutputStream", "java/io/OutputStream", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "(Ljava/lang/String;)V")
		b.AbstractMethod(pubNat, "write", "(I)V")
		b.AbstractMethod(pubNat, "write", "([B)V")
		b.AbstractMethod(pubNat, "close", "()V")
	}),

	// java/util subset.
	nativeClass("java/util/Hashtable", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "put", "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;")
		b.AbstractMethod(pubNat, "get", "(Ljava/lang/Object;)Ljava/lang/Object;")
		b.AbstractMethod(pubNat, "remove", "(Ljava/lang/Object;)Ljava/lang/Object;")
		b.AbstractMethod(pubNat, "containsKey", "(Ljava/lang/Object;)Z")
		b.AbstractMethod(pubNat, "size", "()I")
	}),
	nativeClass("java/util/Vector", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "addElement", "(Ljava/lang/Object;)V")
		b.AbstractMethod(pubNat, "elementAt", "(I)Ljava/lang/Object;")
		b.AbstractMethod(pubNat, "setElementAt", "(Ljava/lang/Object;I)V")
		b.AbstractMethod(pubNat, "size", "()I")
	}),
	nativeClass("java/util/Random", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubNat, "<init>", "()V")
		b.AbstractMethod(pubNat, "<init>", "(J)V")
		b.AbstractMethod(pubNat, "nextInt", "(I)I")
		b.AbstractMethod(pubNat, "nextInt", "()I")
		b.AbstractMethod(pubNat, "nextDouble", "()D")
	}),

	// DVM dynamic service components (§2: "the code for the dynamic
	// service components resides on the central proxy and is distributed
	// to clients on demand"; in this runtime they are part of the client
	// image).
	nativeClass("dvm/RTVerifier", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "checkField", "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
		b.AbstractMethod(pubStN, "checkMethod", "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
		b.AbstractMethod(pubStN, "checkClass", "(Ljava/lang/String;Ljava/lang/String;)V")
	}),
	nativeClass("dvm/Enforce", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "check", "(Ljava/lang/String;Ljava/lang/String;)V")
	}),
	nativeClass("dvm/Audit", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "enter", "(Ljava/lang/String;Ljava/lang/String;)V")
		b.AbstractMethod(pubStN, "exit", "(Ljava/lang/String;Ljava/lang/String;)V")
	}),
	nativeClass("dvm/Profile", "java/lang/Object", func(b *classgen.ClassBuilder) {
		b.AbstractMethod(pubStN, "firstUse", "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
	}),
}
