package jvm

import (
	"fmt"
	"io"
	"sort"

	"dvm/internal/classfile"
)

// ClassLoader supplies classfile bytes by internal class name. In a DVM
// deployment the loader is backed by the network proxy; tests and the
// monolithic baseline use in-memory loaders.
type ClassLoader interface {
	Load(name string) ([]byte, error)
}

// MapLoader serves classes from an in-memory map.
type MapLoader map[string][]byte

// Load implements ClassLoader.
func (m MapLoader) Load(name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("jvm: class %s not found", name)
	}
	return b, nil
}

// FuncLoader adapts a function to the ClassLoader interface.
type FuncLoader func(name string) ([]byte, error)

// Load implements ClassLoader.
func (f FuncLoader) Load(name string) ([]byte, error) { return f(name) }

// CompositeLoader tries each loader in order.
type CompositeLoader []ClassLoader

// Load implements ClassLoader.
func (cl CompositeLoader) Load(name string) ([]byte, error) {
	var firstErr error
	for _, l := range cl {
		b, err := l.Load(name)
		if err == nil {
			return b, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("jvm: class %s not found", name)
	}
	return nil, firstErr
}

// LoadHook observes every class definition; the monolithic client's local
// verifier and the client-side profiler attach here.
type LoadHook func(vm *VM, name string, data []byte) error

// Stats aggregates runtime counters used throughout the evaluation
// harness.
type Stats struct {
	InstructionsExecuted int64
	MethodInvocations    int64
	ClassesLoaded        int64
	BytesLoaded          int64
	ObjectsAllocated     int64
	GCRuns               int64
	ObjectsCollected     int64
	LinkChecks           int64 // dynamic RTVerifier checks executed
	SecurityChecks       int64 // enforcement manager checks executed
	AuditEvents          int64
	MonitorOps           int64
}

// VM is one virtual machine instance (one "client" in the paper's
// topology).
type VM struct {
	Loader ClassLoader
	Stdout io.Writer

	// Properties backs System.getProperty; VFS backs java/io.
	Properties map[string]string
	VFS        *VirtualFS

	// Hooks for service components.
	LoadHooks []LoadHook
	// CheckLink is consulted by the RTVerifier dynamic component natives.
	CheckLink LinkChecker
	// CheckAccess is consulted by the dvm/Enforce natives (the DVM's
	// client-side enforcement manager).
	CheckAccess AccessChecker
	// BuiltinChecks is the monolithic baseline's security manager. It is
	// consulted only at the library points the original system designers
	// anticipated (property access, file open, thread priority) — file
	// *reads* deliberately have no hook, reproducing the JDK limitation
	// Figure 9 demonstrates.
	BuiltinChecks AccessChecker
	// OnAudit receives audit events from instrumented code.
	OnAudit func(event AuditEvent)
	// OnMethodEnter/OnMethodExit are VM-level invocation hooks. The
	// *monolithic* baseline implements its local auditing service with
	// these (a service embedded in the client VM); the DVM instead
	// injects dvm/Audit calls into the code itself. nil hooks cost
	// nothing.
	OnMethodEnter func(class, method string)
	OnMethodExit  func(class, method string)
	// OnFirstUse receives first-invocation profile events.
	OnFirstUse func(class, method, desc string)

	// MaxInstructions guards against runaway programs in tests and the
	// proxy's worst-case benchmarks; 0 means unlimited.
	MaxInstructions int64

	// TraceOpcodes enables the instruction-level profiling service of
	// §3.3: per-opcode execution counts accumulate in OpcodeCounts. The
	// paper used this to collect synchronization-behavior traces
	// (monitorenter/monitorexit frequencies) feeding [Aldrich et al. 99].
	TraceOpcodes bool
	OpcodeCounts [256]int64

	Stats Stats

	classes    map[string]*Class
	natives    map[string]NativeFunc
	strings    map[string]*Object // interned String objects
	mainThread *Thread

	// heap for the mark-sweep collector
	heapHead    *Object
	heapCount   int
	gcThreshold int
	pinned      map[*Object]struct{}
	hashCounter int32
	threadObj   *Object
	classObjs   map[*Class]*Object

	bootstrapped bool
}

// LinkChecker validates a dynamic link-phase assumption (phase 4 of
// verification). Implemented by the verifier package's runtime component.
type LinkChecker interface {
	CheckField(t *Thread, class, field, desc string) *Object // returns thrown exception or nil
	CheckMethod(t *Thread, class, method, desc string) *Object
}

// AccessChecker mediates a security-relevant operation. Implemented by
// the security package's enforcement manager (DVM mode) and by the
// stack-introspection manager (monolithic mode).
type AccessChecker interface {
	Check(t *Thread, permission, target string) *Object // thrown exception or nil
}

// AuditEvent is one remote-monitoring record emitted by instrumented code
// or by the runtime.
type AuditEvent struct {
	Class  string
	Method string
	Kind   string // "enter" or "exit"
}

// New creates a VM backed by the given loader and bootstraps the runtime
// library classes.
func New(loader ClassLoader, stdout io.Writer) (*VM, error) {
	if stdout == nil {
		stdout = io.Discard
	}
	vm := &VM{
		Loader:      loader,
		Stdout:      stdout,
		Properties:  defaultProperties(),
		VFS:         NewVirtualFS(),
		classes:     make(map[string]*Class),
		natives:     make(map[string]NativeFunc),
		strings:     make(map[string]*Object),
		pinned:      make(map[*Object]struct{}),
		gcThreshold: 1 << 16,
	}
	vm.mainThread = &Thread{vm: vm, Name: "main", Priority: 5}
	if err := vm.bootstrap(); err != nil {
		return nil, err
	}
	vm.bootstrapped = true
	return vm, nil
}

func defaultProperties() map[string]string {
	return map[string]string{
		"java.version":    "1.2-dvm",
		"java.vendor":     "dvm",
		"os.name":         "dvm-sim",
		"os.arch":         "x86",
		"file.separator":  "/",
		"line.separator":  "\n",
		"user.name":       "dvmuser",
		"user.home":       "/home/dvmuser",
		"java.class.path": ".",
	}
}

// MainThread returns the VM's single execution thread.
func (vm *VM) MainThread() *Thread { return vm.mainThread }

// RegisterNative installs a Go implementation for class.name(desc). When
// the class is already loaded the method is patched in place; otherwise
// the registration is consulted at link time.
func (vm *VM) RegisterNative(class, name, desc string, fn NativeFunc) {
	key := class + "." + name + desc
	vm.natives[key] = fn
	if c, ok := vm.classes[class]; ok {
		if m := c.DeclaredMethod(name, desc); m != nil {
			m.Native = fn
		}
	}
}

// LoadedClass returns the class if it has been defined, without loading.
func (vm *VM) LoadedClass(name string) *Class { return vm.classes[name] }

// LoadedClassNames returns the sorted names of all defined classes.
func (vm *VM) LoadedClassNames() []string {
	names := make([]string, 0, len(vm.classes))
	for n := range vm.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Class resolves a class by name, loading, defining, and linking it (and
// its superclasses) if necessary. Array classes are synthesized on
// demand.
func (vm *VM) Class(name string) (*Class, error) {
	if c, ok := vm.classes[name]; ok {
		return c, nil
	}
	if elem, ok := elemDescOfArrayName(name); ok {
		return vm.arrayClass(elem)
	}
	if vm.Loader == nil {
		return nil, fmt.Errorf("jvm: no loader to resolve %s", name)
	}
	data, err := vm.Loader.Load(name)
	if err != nil {
		return nil, err
	}
	return vm.DefineClass(name, data)
}

// DefineClass parses and links a class from bytes. The supplied name must
// match the class's own name (a linkage check the paper's dynamic
// verification component also performs).
func (vm *VM) DefineClass(name string, data []byte) (*Class, error) {
	for _, h := range vm.LoadHooks {
		if err := h(vm, name, data); err != nil {
			return nil, err
		}
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("jvm: defining %s: %w", name, err)
	}
	if cf.Name() != name {
		return nil, fmt.Errorf("jvm: class file for %s declares name %s", name, cf.Name())
	}
	vm.Stats.ClassesLoaded++
	vm.Stats.BytesLoaded += int64(len(data))
	return vm.link(cf)
}

// link creates the runtime class structure.
func (vm *VM) link(cf *classfile.ClassFile) (*Class, error) {
	name := cf.Name()
	if _, dup := vm.classes[name]; dup {
		return nil, fmt.Errorf("jvm: duplicate class definition %s", name)
	}
	c := &Class{
		Name:       name,
		File:       cf,
		Flags:      cf.AccessFlags,
		fieldSlot:  make(map[string]int),
		fieldDesc:  make(map[string]string),
		staticSlot: make(map[string]int),
		methods:    make(map[string]*Method),
		vm:         vm,
	}
	// Install before resolving the hierarchy so self-references work, but
	// remove again on failure.
	vm.classes[name] = c
	ok := false
	defer func() {
		if !ok {
			delete(vm.classes, name)
		}
	}()

	if super := cf.SuperName(); super != "" {
		sc, err := vm.Class(super)
		if err != nil {
			return nil, fmt.Errorf("jvm: superclass of %s: %w", name, err)
		}
		c.Super = sc
	} else if name != "java/lang/Object" {
		return nil, fmt.Errorf("jvm: class %s has no superclass", name)
	}
	for _, iname := range cf.InterfaceNames() {
		ic, err := vm.Class(iname)
		if err != nil {
			return nil, fmt.Errorf("jvm: superinterface of %s: %w", name, err)
		}
		c.Interfaces = append(c.Interfaces, ic)
	}

	// Field layout: instance slots continue the superclass layout.
	base := 0
	if c.Super != nil {
		base = c.Super.instanceSlots
		c.slotDescs = append(c.slotDescs, c.Super.slotDescs...)
	}
	staticDescs := []string{}
	for _, f := range cf.Fields {
		fname := cf.MemberName(f)
		fdesc := cf.MemberDescriptor(f)
		key := fname + " " + fdesc
		c.fieldDesc[fname] = fdesc
		if f.AccessFlags&classfile.AccStatic != 0 {
			c.staticSlot[key] = len(staticDescs)
			staticDescs = append(staticDescs, fdesc)
		} else {
			c.fieldSlot[key] = base
			c.slotDescs = append(c.slotDescs, fdesc)
			base++
		}
	}
	c.instanceSlots = base
	c.statics = make([]Value, len(staticDescs))
	for i, d := range staticDescs {
		c.statics[i] = zeroValueFor(d)
	}
	// ConstantValue attributes initialize statics eagerly.
	for _, f := range cf.Fields {
		if f.AccessFlags&classfile.AccStatic == 0 {
			continue
		}
		a := cf.FindAttr(f.Attributes, classfile.AttrConstantValue)
		if a == nil {
			continue
		}
		idx, err := classfile.ConstantValueIndex(a)
		if err != nil {
			return nil, err
		}
		v, err := vm.constantValue(cf.Pool, idx)
		if err != nil {
			return nil, err
		}
		slot := c.staticSlot[cf.MemberName(f)+" "+cf.MemberDescriptor(f)]
		c.statics[slot] = v
	}

	for _, mm := range cf.Methods {
		m, err := vm.linkMethod(c, cf, mm)
		if err != nil {
			return nil, err
		}
		c.methods[m.Key()] = m
		c.methodOrder = append(c.methodOrder, m)
	}
	ok = true
	return c, nil
}

func (vm *VM) linkMethod(c *Class, cf *classfile.ClassFile, mm *classfile.Member) (*Method, error) {
	name := cf.MemberName(mm)
	desc := cf.MemberDescriptor(mm)
	mt, err := parseMethodTypeCached(desc)
	if err != nil {
		return nil, fmt.Errorf("jvm: %s.%s: %w", c.Name, name, err)
	}
	m := &Method{Class: c, Name: name, Desc: desc, Flags: mm.AccessFlags, MT: mt}
	code, err := cf.CodeOf(mm)
	if err != nil {
		return nil, fmt.Errorf("jvm: %s.%s: %w", c.Name, name, err)
	}
	m.Code = code
	if fn, ok := vm.natives[c.Name+"."+name+desc]; ok {
		m.Native = fn
	}
	return m, nil
}

// constantValue converts a loadable pool entry to a runtime Value.
func (vm *VM) constantValue(pool *classfile.ConstPool, idx uint16) (Value, error) {
	e, err := pool.Entry(idx)
	if err != nil {
		return Value{}, err
	}
	switch e.Tag {
	case classfile.TagInteger:
		return IntV(e.Int), nil
	case classfile.TagFloat:
		return FloatV(e.Float), nil
	case classfile.TagLong:
		return LongV(e.Long), nil
	case classfile.TagDouble:
		return DoubleV(e.Double), nil
	case classfile.TagString:
		s, err := pool.StringValue(idx)
		if err != nil {
			return Value{}, err
		}
		return RefV(vm.InternString(s)), nil
	}
	return Value{}, fmt.Errorf("jvm: constant %d (tag %s) is not loadable", idx, e.Tag)
}

// arrayClass synthesizes (or returns) the array class for elemDesc.
func (vm *VM) arrayClass(elemDesc string) (*Class, error) {
	name := arrayClassNameFor(elemDesc)
	if c, ok := vm.classes[name]; ok {
		return c, nil
	}
	obj, err := vm.Class("java/lang/Object")
	if err != nil {
		return nil, err
	}
	c := &Class{
		Name:       name,
		Super:      obj,
		IsArray:    true,
		ElemDesc:   elemDesc,
		fieldSlot:  map[string]int{},
		fieldDesc:  map[string]string{},
		staticSlot: map[string]int{},
		methods:    map[string]*Method{},
		vm:         vm,
		initState:  2,
	}
	if len(elemDesc) > 0 && (elemDesc[0] == 'L' || elemDesc[0] == '[') {
		var elemName string
		if elemDesc[0] == 'L' {
			elemName = elemDesc[1 : len(elemDesc)-1]
		} else {
			elemName = elemDesc
		}
		ec, err := vm.Class(elemName)
		if err != nil {
			return nil, err
		}
		c.Elem = ec
	}
	vm.classes[name] = c
	return c, nil
}

// EnsureInitialized runs the class's <clinit> on first active use.
func (vm *VM) EnsureInitialized(t *Thread, c *Class) (*Object, error) {
	if c.initState == 2 || c.initState == 1 {
		return nil, nil // done, or in progress on this (single) thread
	}
	c.initState = 1
	if c.Super != nil {
		if thrown, err := vm.EnsureInitialized(t, c.Super); thrown != nil || err != nil {
			return thrown, err
		}
	}
	if clinit := c.DeclaredMethod("<clinit>", "()V"); clinit != nil {
		_, thrown, err := t.Invoke(clinit, nil)
		if err != nil {
			return nil, err
		}
		if thrown != nil {
			c.initState = 0
			return thrown, nil
		}
	}
	c.initState = 2
	return nil, nil
}

// InternString returns the canonical java/lang/String object for s.
func (vm *VM) InternString(s string) *Object {
	if o, ok := vm.strings[s]; ok {
		return o
	}
	o := vm.newStringNoIntern(s)
	vm.strings[s] = o
	vm.Pin(o)
	return o
}

// NewString allocates a (non-interned) String object.
func (vm *VM) NewString(s string) *Object { return vm.newStringNoIntern(s) }

func (vm *VM) newStringNoIntern(s string) *Object {
	c := vm.classes["java/lang/String"]
	if c == nil {
		// Bootstrap order guarantees String exists before user code runs.
		panic("jvm: String class not bootstrapped")
	}
	o := vm.NewInstance(c)
	o.Native = s
	return o
}

// GoString extracts the Go string from a java/lang/String object.
func GoString(o *Object) string {
	if o == nil {
		return ""
	}
	if s, ok := o.Native.(string); ok {
		return s
	}
	return ""
}

// Throw constructs an exception object of the named class with the given
// message, running no constructor bytecode (the runtime exception classes
// are native-backed).
func (vm *VM) Throw(className, message string) *Object {
	c, err := vm.Class(className)
	if err != nil {
		// Fall back to the root throwable; this only happens if the
		// bootstrap image is broken.
		c = vm.classes["java/lang/Throwable"]
		if c == nil {
			panic(fmt.Sprintf("jvm: cannot synthesize %s (%v) and no Throwable", className, err))
		}
	}
	o := vm.NewInstance(c)
	if slot, ok := c.FieldSlot("message", "Ljava/lang/String;"); ok {
		o.SetField(slot, RefV(vm.InternString(message)))
	}
	return o
}

// ThrowableMessage extracts the message from a throwable object.
func ThrowableMessage(o *Object) string {
	if o == nil {
		return ""
	}
	if slot, ok := o.Class.FieldSlot("message", "Ljava/lang/String;"); ok {
		return GoString(o.GetField(slot).Ref())
	}
	return ""
}

// DescribeThrowable renders "class: message" for error reporting.
func DescribeThrowable(o *Object) string {
	if o == nil {
		return "<nil throwable>"
	}
	msg := ThrowableMessage(o)
	if msg == "" {
		return o.Class.Name
	}
	return o.Class.Name + ": " + msg
}

// RunMain resolves className, initializes it, and invokes
// main([Ljava/lang/String;)V with the given arguments. It returns the
// uncaught Java exception (if any) and internal VM errors.
func (vm *VM) RunMain(className string, args []string) (*Object, error) {
	t := vm.mainThread
	c, err := vm.Class(className)
	if err != nil {
		return nil, err
	}
	if thrown, err := vm.EnsureInitialized(t, c); thrown != nil || err != nil {
		return thrown, err
	}
	m := c.LookupMethod("main", "([Ljava/lang/String;)V")
	if m == nil {
		return nil, fmt.Errorf("jvm: %s has no main([Ljava/lang/String;)V", className)
	}
	strCls, err := vm.Class("java/lang/String")
	if err != nil {
		return nil, err
	}
	arrCls, err := vm.arrayClass("L" + strCls.Name + ";")
	if err != nil {
		return nil, err
	}
	arr := vm.NewArray(arrCls, len(args))
	for i, a := range args {
		arr.Elems[i] = RefV(vm.InternString(a))
	}
	_, thrown, err := t.Invoke(m, []Value{RefV(arr)})
	return thrown, err
}
