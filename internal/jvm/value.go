// Package jvm implements the DVM client runtime: a Java bytecode
// interpreter with class loading and linking, an object model, exception
// handling, a mark-sweep garbage collector, and native implementations of
// the core library subset the DVM services and benchmark workloads rely
// on (java/lang, java/io, java/util pieces).
//
// The same runtime is configured two ways in the evaluation, exactly as
// the paper does with the Sun JDK ("identical software ... under
// different service architectures"):
//
//   - monolithic mode: the client runs its own verifier, JDK1.2-style
//     stack-introspection security, and local auditing;
//   - DVM mode: those services are disabled locally, and the runtime
//     instead hosts the small dynamic service components (RTVerifier link
//     checks, the security enforcement manager, the audit stub) invoked
//     by code the network proxy injected.
package jvm

import "fmt"

// Kind tags a Value.
type Kind uint8

// Value kinds. Pad marks the second slot of a long/double in operand
// stacks and local variable arrays; RetAddr is a jsr return address.
const (
	KindInt Kind = iota
	KindLong
	KindFloat
	KindDouble
	KindRef
	KindPad
	KindRetAddr
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	case KindRef:
		return "ref"
	case KindPad:
		return "pad"
	case KindRetAddr:
		return "retaddr"
	}
	return "?"
}

// Value is one operand-stack or local-variable slot. Ints (and the
// boolean/byte/char/short family) live sign-extended in I; longs in I;
// floats and doubles in F; references in R.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	R    *Object
}

// Slot constructors.
func IntV(v int32) Value      { return Value{Kind: KindInt, I: int64(v)} }
func LongV(v int64) Value     { return Value{Kind: KindLong, I: v} }
func FloatV(v float32) Value  { return Value{Kind: KindFloat, F: float64(v)} }
func DoubleV(v float64) Value { return Value{Kind: KindDouble, F: v} }
func RefV(o *Object) Value    { return Value{Kind: KindRef, R: o} }
func NullV() Value            { return Value{Kind: KindRef} }
func padV() Value             { return Value{Kind: KindPad} }
func retAddrV(idx int) Value  { return Value{Kind: KindRetAddr, I: int64(idx)} }

// Int returns the int32 view of an int-kinded value.
func (v Value) Int() int32 { return int32(v.I) }

// Long returns the int64 view.
func (v Value) Long() int64 { return v.I }

// Float returns the float32 view.
func (v Value) Float() float32 { return float32(v.F) }

// Double returns the float64 view.
func (v Value) Double() float64 { return v.F }

// Ref returns the reference view (nil for Java null).
func (v Value) Ref() *Object { return v.R }

// IsNull reports whether the value is a null reference.
func (v Value) IsNull() bool { return v.Kind == KindRef && v.R == nil }

// Wide reports whether the value occupies two slots.
func (v Value) Wide() bool { return v.Kind == KindLong || v.Kind == KindDouble }

func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("int:%d", int32(v.I))
	case KindLong:
		return fmt.Sprintf("long:%d", v.I)
	case KindFloat:
		return fmt.Sprintf("float:%g", float32(v.F))
	case KindDouble:
		return fmt.Sprintf("double:%g", v.F)
	case KindRef:
		if v.R == nil {
			return "null"
		}
		return "ref:" + v.R.Class.Name
	case KindPad:
		return "pad"
	case KindRetAddr:
		return fmt.Sprintf("retaddr:%d", v.I)
	}
	return "?"
}

// zeroValueFor returns the default value for a field/array element of the
// given descriptor kind.
func zeroValueFor(desc string) Value {
	if desc == "" {
		return NullV()
	}
	switch desc[0] {
	case 'B', 'C', 'I', 'S', 'Z':
		return IntV(0)
	case 'J':
		return LongV(0)
	case 'F':
		return FloatV(0)
	case 'D':
		return DoubleV(0)
	}
	return NullV()
}
