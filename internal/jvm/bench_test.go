package jvm

import (
	"bytes"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// buildSumClass returns a class with sum(n): tight interpreter loop.
func buildSumClass(b *testing.B) *VM {
	b.Helper()
	cb := classgen.NewClass("bench/Sum", "java/lang/Object")
	m := cb.Method(classfile.AccPublic|classfile.AccStatic, "sum", "(I)I")
	m.IConst(0).IStore(1)
	m.IConst(0).IStore(2)
	head := m.Here()
	exit := m.NewLabel()
	m.ILoad(2).ILoad(0).Branch(bytecode.IfIcmpge, exit)
	m.ILoad(1).ILoad(2).IAdd().IStore(1)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(exit)
	m.ILoad(1).IReturn()
	data, err := cb.BuildBytes()
	if err != nil {
		b.Fatal(err)
	}
	vm, err := New(MapLoader{"bench/Sum": data}, &bytes.Buffer{})
	if err != nil {
		b.Fatal(err)
	}
	return vm
}

// BenchmarkInterpreterLoop measures raw dispatch rate on a counting loop.
func BenchmarkInterpreterLoop(b *testing.B) {
	vm := buildSumClass(b)
	t := vm.MainThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, thrown, err := t.InvokeByName("bench/Sum", "sum", "(I)I", []Value{IntV(1000)})
		if err != nil || thrown != nil {
			b.Fatalf("%v %v", err, DescribeThrowable(thrown))
		}
	}
	b.ReportMetric(float64(vm.Stats.InstructionsExecuted)/float64(b.N), "instructions/op")
}

// BenchmarkMethodInvocation measures call/return overhead.
func BenchmarkMethodInvocation(b *testing.B) {
	cb := classgen.NewClass("bench/Call", "java/lang/Object")
	leaf := cb.Method(classfile.AccPublic|classfile.AccStatic, "leaf", "(I)I")
	leaf.ILoad(0).IReturn()
	outer := cb.Method(classfile.AccPublic|classfile.AccStatic, "outer", "(I)I")
	outer.IConst(0).IStore(1)
	head := outer.Here()
	exit := outer.NewLabel()
	outer.ILoad(1).ILoad(0).Branch(bytecode.IfIcmpge, exit)
	outer.ILoad(1).InvokeStatic("bench/Call", "leaf", "(I)I")
	outer.Pop()
	outer.IInc(1, 1)
	outer.Goto(head)
	outer.Mark(exit)
	outer.IConst(0).IReturn()
	data, err := cb.BuildBytes()
	if err != nil {
		b.Fatal(err)
	}
	vm, err := New(MapLoader{"bench/Call": data}, nil)
	if err != nil {
		b.Fatal(err)
	}
	t := vm.MainThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, thrown, err := t.InvokeByName("bench/Call", "outer", "(I)I", []Value{IntV(100)}); err != nil || thrown != nil {
			b.Fatalf("%v %v", err, DescribeThrowable(thrown))
		}
	}
}

// BenchmarkGCChurn measures allocation + collection of short-lived
// objects.
func BenchmarkGCChurn(b *testing.B) {
	cb := classgen.NewClass("bench/Gc", "java/lang/Object")
	m := cb.Method(classfile.AccPublic|classfile.AccStatic, "churn", "(I)V")
	head := m.Here()
	exit := m.NewLabel()
	m.ILoad(0).Branch(bytecode.Ifle, exit)
	m.NewDup("java/lang/Object")
	m.InvokeSpecial("java/lang/Object", "<init>", "()V")
	m.Pop()
	m.IInc(0, -1)
	m.Goto(head)
	m.Mark(exit)
	m.Return()
	data, err := cb.BuildBytes()
	if err != nil {
		b.Fatal(err)
	}
	vm, err := New(MapLoader{"bench/Gc": data}, nil)
	if err != nil {
		b.Fatal(err)
	}
	vm.SetGCThreshold(4096)
	t := vm.MainThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, thrown, err := t.InvokeByName("bench/Gc", "churn", "(I)V", []Value{IntV(1000)}); err != nil || thrown != nil {
			b.Fatalf("%v %v", err, DescribeThrowable(thrown))
		}
	}
	b.ReportMetric(float64(vm.Stats.ObjectsCollected)/float64(b.N), "collected/op")
}
