package jvm

import (
	"fmt"
	"sort"
	"sync"

	"dvm/internal/bytecode"
)

// descCache memoizes method descriptor parses; linking hits the same
// descriptors constantly.
var descCache sync.Map // string -> bytecode.MethodType

func parseMethodTypeCached(desc string) (bytecode.MethodType, error) {
	if v, ok := descCache.Load(desc); ok {
		return v.(bytecode.MethodType), nil
	}
	mt, err := bytecode.ParseMethodType(desc)
	if err != nil {
		return bytecode.MethodType{}, err
	}
	descCache.Store(desc, mt)
	return mt, nil
}

// VirtualFS is the in-memory filesystem behind java/io. The security
// microbenchmarks of Figure 9 (OpenFile, ReadFile) exercise it, and it
// lets the whole system run hermetically.
type VirtualFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewVirtualFS returns an empty filesystem.
func NewVirtualFS() *VirtualFS {
	return &VirtualFS{files: make(map[string][]byte)}
}

// Write stores a file, replacing any previous contents.
func (fs *VirtualFS) Write(path string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[path] = append([]byte(nil), data...)
}

// Read returns a copy of the file contents.
func (fs *VirtualFS) Read(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("vfs: %s: no such file", path)
	}
	return append([]byte(nil), data...), nil
}

// Exists reports whether the path is present.
func (fs *VirtualFS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Append appends data to a file, creating it if needed.
func (fs *VirtualFS) Append(path string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[path] = append(fs.files[path], data...)
}

// Remove deletes a file and reports whether it existed.
func (fs *VirtualFS) Remove(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	delete(fs.files, path)
	return ok
}

// List returns the sorted file paths.
func (fs *VirtualFS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// fileHandle is the Native payload of FileInputStream/FileOutputStream
// objects.
type fileHandle struct {
	path string
	data []byte
	pos  int
	fs   *VirtualFS
	out  bool
}
