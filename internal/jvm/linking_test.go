package jvm

import (
	"fmt"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// TestMutuallyRecursiveClasses: A and B reference each other; linking
// must not loop or deadlock.
func TestMutuallyRecursiveClasses(t *testing.T) {
	a := classgen.NewClass("link/A", "java/lang/Object")
	fa := a.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	base := fa.NewLabel()
	fa.ILoad(0).Branch(ifleOp, base)
	fa.ILoad(0).IConst(1).ISub()
	fa.InvokeStatic("link/B", "g", "(I)I")
	fa.IReturn()
	fa.Mark(base)
	fa.IConst(0).IReturn()

	b := classgen.NewClass("link/B", "java/lang/Object")
	gb := b.Method(classfile.AccPublic|classfile.AccStatic, "g", "(I)I")
	gb.ILoad(0).InvokeStatic("link/A", "f", "(I)I").IConst(1).IAdd().IReturn()

	vm := newTestVM(t, nil, a, b)
	v, thrown := callStatic(t, vm, "link/A", "f", "(I)I", IntV(10))
	if thrown != nil {
		t.Fatal(DescribeThrowable(thrown))
	}
	if v.Int() != 10 {
		t.Errorf("f(10) = %d, want 10 (mutual recursion depth)", v.Int())
	}
}

// TestDeepInheritanceChain: field layout and dispatch across a 12-level
// hierarchy.
func TestDeepInheritanceChain(t *testing.T) {
	const depth = 12
	builders := make([]*classgen.ClassBuilder, depth)
	for i := 0; i < depth; i++ {
		super := "java/lang/Object"
		if i > 0 {
			super = fmt.Sprintf("deep/C%02d", i-1)
		}
		b := classgen.NewClass(fmt.Sprintf("deep/C%02d", i), super)
		b.Field(classfile.AccPublic, fmt.Sprintf("f%02d", i), "I")
		b.DefaultInit()
		m := b.Method(classfile.AccPublic, "level", "()I")
		m.IConst(int32(i)).IReturn()
		builders[i] = b
	}
	drv := classgen.NewClass("deep/Drv", "java/lang/Object")
	run := drv.Method(classfile.AccPublic|classfile.AccStatic, "run", "()I")
	run.NewDup(fmt.Sprintf("deep/C%02d", depth-1))
	run.InvokeSpecial(fmt.Sprintf("deep/C%02d", depth-1), "<init>", "()V")
	run.AStore(0)
	// Set a field declared near the root, through the leaf reference.
	run.ALoad(0).IConst(31).PutField("deep/C02", "f02", "I")
	run.ALoad(0).GetField("deep/C02", "f02", "I")
	// Virtual dispatch resolves the leaf override.
	run.ALoad(0).InvokeVirtual("deep/C00", "level", "()I")
	run.IAdd().IReturn()

	vm := newTestVM(t, nil, append(builders, drv)...)
	v, thrown := callStatic(t, vm, "deep/Drv", "run", "()I")
	if thrown != nil {
		t.Fatal(DescribeThrowable(thrown))
	}
	if v.Int() != 31+depth-1 {
		t.Errorf("run = %d, want %d", v.Int(), 31+depth-1)
	}
	// Instance slots accumulate down the chain.
	leaf, _ := vm.Class(fmt.Sprintf("deep/C%02d", depth-1))
	if leaf.instanceSlots != depth {
		t.Errorf("instanceSlots = %d, want %d", leaf.instanceSlots, depth)
	}
}

// TestClinitFailureIsSticky: a class whose initializer throws surfaces
// the error and does not run <clinit> again.
func TestClinitFailure(t *testing.T) {
	b := classgen.NewClass("link/BadInit", "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "x", "I")
	cl := b.Method(classfile.AccStatic, "<clinit>", "()V")
	cl.NewDup("java/lang/RuntimeException")
	cl.LdcString("init boom")
	cl.InvokeSpecial("java/lang/RuntimeException", "<init>", "(Ljava/lang/String;)V")
	cl.AThrow()
	g := b.Method(classfile.AccPublic|classfile.AccStatic, "get", "()I")
	g.GetStatic("link/BadInit", "x", "I").IReturn()

	vm := newTestVM(t, nil, b)
	_, thrown := callStatic(t, vm, "link/BadInit", "get", "()I")
	if thrown == nil || thrown.Class.Name != "java/lang/RuntimeException" {
		t.Fatalf("thrown = %v", DescribeThrowable(thrown))
	}
}

// TestDefineClassNameMismatchRejected: a class served under the wrong
// name must be refused (a linkage-integrity check).
func TestDefineClassNameMismatchRejected(t *testing.T) {
	b := classgen.NewClass("real/Name", "java/lang/Object")
	b.DefaultInit()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := New(MapLoader{"fake/Name": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Class("fake/Name"); err == nil {
		t.Fatal("mismatched class name accepted")
	}
}

// ifleOp aliases the opcode to keep the test body readable.
const ifleOp = 0x9e // ifle
