package bytecode

import (
	"bytes"
	"testing"

	"dvm/internal/classfile"
)

func mustDecode(t *testing.T, code []byte) []Inst {
	t.Helper()
	insts, err := Decode(code)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return insts
}

func TestDecodeSimpleSequence(t *testing.T) {
	code := []byte{
		byte(Iconst2),
		byte(Bipush), 0x7F,
		byte(Iadd),
		byte(Ireturn),
	}
	insts := mustDecode(t, code)
	if len(insts) != 4 {
		t.Fatalf("got %d instructions", len(insts))
	}
	if insts[1].Op != Bipush || insts[1].Const != 127 {
		t.Errorf("insts[1] = %v", insts[1])
	}
	if insts[3].Op != Ireturn || !insts[3].Op.IsReturn() {
		t.Errorf("insts[3] = %v", insts[3])
	}
}

func TestDecodeBranchTargets(t *testing.T) {
	// 0: iload_0 ; 1: ifeq +5 (-> 6) ; 4: iconst_1 ; 5: ireturn ; 6: iconst_0 ; 7: ireturn
	code := []byte{
		byte(Iload0),
		byte(Ifeq), 0x00, 0x05,
		byte(Iconst1),
		byte(Ireturn),
		byte(Iconst0),
		byte(Ireturn),
	}
	insts := mustDecode(t, code)
	if insts[1].Target != 4 {
		t.Fatalf("ifeq target index = %d, want 4 (iconst_0)", insts[1].Target)
	}
	if insts[insts[1].Target].Op != Iconst0 {
		t.Fatalf("target op = %v", insts[insts[1].Target].Op)
	}
}

func TestDecodeRejectsMidInstructionBranch(t *testing.T) {
	// ifeq jumps into the middle of the bipush operand.
	code := []byte{
		byte(Ifeq), 0x00, 0x04,
		byte(Bipush), 0x10,
		byte(Return),
	}
	if _, err := Decode(code); err == nil {
		t.Fatal("accepted branch into instruction middle")
	}
}

func TestDecodeRejectsOutOfRangeBranch(t *testing.T) {
	code := []byte{byte(Goto), 0x00, 0x40, byte(Return)}
	if _, err := Decode(code); err == nil {
		t.Fatal("accepted branch past end of code")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":                 {},
		"unassigned opcode":     {0xba},
		"truncated bipush":      {byte(Bipush)},
		"truncated invokevirt":  {byte(Invokevirtual), 0x00},
		"truncated wide":        {byte(Wide)},
		"wide on iadd":          {byte(Wide), byte(Iadd)},
		"bad newarray type":     {byte(Newarray), 99, byte(Return)},
		"multianewarray 0 dims": {byte(Multianewarray), 0, 1, 0, byte(Return)},
		"nonzero iface operand": {byte(Invokeinterface), 0, 1, 1, 7, byte(Return)},
	}
	for name, code := range cases {
		if _, err := Decode(code); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeWideForms(t *testing.T) {
	code := []byte{
		byte(Wide), byte(Iload), 0x01, 0x00,
		byte(Wide), byte(Iinc), 0x01, 0x00, 0x7F, 0xFF,
		byte(Return),
	}
	insts := mustDecode(t, code)
	if !insts[0].Wide || insts[0].Index != 256 {
		t.Errorf("wide iload = %+v", insts[0])
	}
	if !insts[1].Wide || insts[1].Index != 256 || insts[1].Const != 32767 {
		t.Errorf("wide iinc = %+v", insts[1])
	}
}

func TestTableswitchRoundTrip(t *testing.T) {
	// Build: iload_0; tableswitch low=1 {arm1, arm2} default; arms return consts.
	insts := []Inst{
		{Op: Iload0, Target: -1},
		{Op: Tableswitch, Switch: &Switch{Low: 1, Default: 4, Targets: []int{2, 3}}},
		{Op: Iconst1, Target: -1},
		{Op: Iconst2, Target: -1},
		{Op: Iconst0, Target: -1},
		{Op: Ireturn, Target: -1},
	}
	code, pcs, err := Encode(insts)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(pcs) != len(insts) {
		t.Fatalf("pcs length %d", len(pcs))
	}
	back := mustDecode(t, code)
	if len(back) != len(insts) {
		t.Fatalf("decode returned %d insts, want %d", len(back), len(insts))
	}
	sw := back[1].Switch
	if sw == nil || sw.Low != 1 || sw.Default != 4 || len(sw.Targets) != 2 ||
		sw.Targets[0] != 2 || sw.Targets[1] != 3 {
		t.Fatalf("switch round trip = %+v", sw)
	}
	// Padding must make the default offset field 4-aligned.
	if (pcs[1]+1)%4 != 0 {
		// pad bytes inserted; verify decode saw canonical zero padding by
		// the fact decode succeeded. Also re-encode must be identical.
		code2, _, err := Encode(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(code, code2) {
			t.Fatal("tableswitch re-encode differs")
		}
	}
}

func TestLookupswitchRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: Iload0, Target: -1},
		{Op: Lookupswitch, Switch: &Switch{Default: 4, Keys: []int32{-5, 100}, Targets: []int{2, 3}}},
		{Op: Iconst1, Target: -1},
		{Op: Iconst2, Target: -1},
		{Op: Iconst0, Target: -1},
		{Op: Ireturn, Target: -1},
	}
	code, _, err := Encode(insts)
	if err != nil {
		t.Fatal(err)
	}
	back := mustDecode(t, code)
	sw := back[1].Switch
	if sw.Keys[0] != -5 || sw.Keys[1] != 100 || sw.Targets[1] != 3 {
		t.Fatalf("lookupswitch round trip = %+v", sw)
	}
}

func TestDecodeRejectsUnsortedLookupswitch(t *testing.T) {
	insts := []Inst{
		{Op: Iload0, Target: -1},
		{Op: Lookupswitch, Switch: &Switch{Default: 2, Keys: []int32{100, -5}, Targets: []int{2, 2}}},
		{Op: Return, Target: -1},
	}
	code, _, err := Encode(insts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(code); err == nil {
		t.Fatal("accepted unsorted lookupswitch keys")
	}
}

func TestEncodePromotesWideOperands(t *testing.T) {
	insts := []Inst{
		{Op: Iload, Index: 300, Target: -1},
		{Op: Iinc, Index: 2, Const: 1000, Target: -1},
		{Op: Ldc, Index: 300, Target: -1},
		{Op: Return, Target: -1},
	}
	code, _, err := Encode(insts)
	if err != nil {
		t.Fatal(err)
	}
	back := mustDecode(t, code)
	if !back[0].Wide || back[0].Index != 300 {
		t.Errorf("iload not widened: %+v", back[0])
	}
	if !back[1].Wide || back[1].Const != 1000 {
		t.Errorf("iinc not widened: %+v", back[1])
	}
	if back[2].Op != LdcW || back[2].Index != 300 {
		t.Errorf("ldc not promoted to ldc_w: %+v", back[2])
	}
}

func TestEncodeWidensLongGoto(t *testing.T) {
	// goto over ~40000 bytes of nops must become goto_w.
	insts := make([]Inst, 0, 40003)
	insts = append(insts, Inst{Op: Goto, Target: 40001})
	for i := 0; i < 40000; i++ {
		insts = append(insts, Inst{Op: Nop, Target: -1})
	}
	insts = append(insts, Inst{Op: Return, Target: -1})
	code, _, err := Encode(insts)
	if err != nil {
		t.Fatal(err)
	}
	if Opcode(code[0]) != GotoW {
		t.Fatalf("first opcode = %v, want goto_w", Opcode(code[0]).Name())
	}
	back, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Target != 40001 {
		t.Fatalf("goto_w target = %d", back[0].Target)
	}
}

func TestEncodeRejectsOverlongConditional(t *testing.T) {
	insts := make([]Inst, 0, 40003)
	insts = append(insts, Inst{Op: Ifeq, Target: 40001})
	for i := 0; i < 40000; i++ {
		insts = append(insts, Inst{Op: Nop, Target: -1})
	}
	insts = append(insts, Inst{Op: Return, Target: -1})
	if _, _, err := Encode(insts); err == nil {
		t.Fatal("accepted conditional branch overflowing 16 bits")
	}
}

func TestEncodeRejectsBadTargets(t *testing.T) {
	if _, _, err := Encode([]Inst{{Op: Goto, Target: 5}, {Op: Return, Target: -1}}); err == nil {
		t.Fatal("accepted out-of-range branch target")
	}
	if _, _, err := Encode([]Inst{{Op: Tableswitch}, {Op: Return, Target: -1}}); err == nil {
		t.Fatal("accepted switch without payload")
	}
	if _, _, err := Encode(nil); err == nil {
		t.Fatal("accepted empty instruction list")
	}
}

func TestDecodeEncodeRoundTripEveryKind(t *testing.T) {
	pool := classfile.NewConstPool()
	mref := pool.AddMethodref("a/B", "m", "(I)I")
	iref := pool.AddInterfaceMethodref("a/I", "n", "()V")
	fref := pool.AddFieldref("a/B", "f", "J")
	cls := pool.AddClass("a/B")

	insts := []Inst{
		{Op: Nop, Target: -1},
		{Op: Bipush, Const: -7, Target: -1},
		{Op: Sipush, Const: -30000, Target: -1},
		{Op: Ldc, Index: 1, Target: -1},
		{Op: Iload, Index: 3, Target: -1},
		{Op: Iinc, Index: 2, Const: -1, Target: -1},
		{Op: IfIcmplt, Target: 0},
		{Op: Getstatic, Index: fref, Target: -1},
		{Op: Invokevirtual, Index: mref, Target: -1},
		{Op: Invokeinterface, Index: iref, Count: 1, Target: -1},
		{Op: New, Index: cls, Target: -1},
		{Op: Newarray, ArrayType: TInt, Target: -1},
		{Op: Multianewarray, Index: cls, Dims: 2, Target: -1},
		{Op: GotoW, Target: 0},
		{Op: Return, Target: -1},
	}
	code, _, err := Encode(insts)
	if err != nil {
		t.Fatal(err)
	}
	back := mustDecode(t, code)
	if len(back) != len(insts) {
		t.Fatalf("%d insts back, want %d", len(back), len(insts))
	}
	for i := range insts {
		g, w := back[i], insts[i]
		if g.Op != w.Op || g.Index != w.Index || g.Const != w.Const ||
			g.ArrayType != w.ArrayType || g.Dims != w.Dims {
			t.Errorf("inst %d: got %+v want %+v", i, g, w)
		}
	}
	if back[6].Target != 0 || back[13].Target != 0 {
		t.Errorf("branch targets: %d, %d", back[6].Target, back[13].Target)
	}
}

func TestPCMap(t *testing.T) {
	code := []byte{byte(Iconst0), byte(Bipush), 5, byte(Iadd), byte(Ireturn)}
	insts := mustDecode(t, code)
	m := PCMap(insts)
	if m[0] != 0 || m[1] != 1 || m[3] != 2 || m[4] != 3 {
		t.Errorf("PCMap = %v", m)
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !Goto.EndsFlow() || !Athrow.EndsFlow() || !Ireturn.EndsFlow() || !Tableswitch.EndsFlow() {
		t.Error("EndsFlow misses a terminator")
	}
	if Ifeq.EndsFlow() {
		t.Error("ifeq must fall through")
	}
	if !Ifnull.IsConditional() || !IfAcmpne.IsConditional() || Goto.IsConditional() {
		t.Error("IsConditional wrong")
	}
	if !Invokestatic.IsInvoke() || Getfield.IsInvoke() {
		t.Error("IsInvoke wrong")
	}
	if !Putfield.IsFieldAccess() || Iadd.IsFieldAccess() {
		t.Error("IsFieldAccess wrong")
	}
	if Opcode(0xba).Valid() || Opcode(0xcb).Valid() {
		t.Error("holes in opcode space must be invalid")
	}
	if !Wide.Valid() || Wide.OperandKind() != KindWidePfx {
		t.Error("wide prefix metadata wrong")
	}
}
