package bytecode

import (
	"fmt"

	"dvm/internal/classfile"
)

// StackEffect returns the operand-stack slot counts popped and pushed by
// the instruction. Instructions whose effect depends on a constant-pool
// reference (field accesses, invokes, multianewarray) resolve it through
// pool. The rewriting engine uses this to recompute max_stack after
// splicing code, and the dataflow verifier uses it for conservative
// height tracking.
func StackEffect(in Inst, pool *classfile.ConstPool) (pop, push int, err error) {
	info := ops[in.Op]
	if info.pop >= 0 {
		return int(info.pop), int(info.push), nil
	}
	switch in.Op {
	case Getstatic, Putstatic, Getfield, Putfield:
		ref, err := pool.Ref(in.Index)
		if err != nil {
			return 0, 0, err
		}
		ft, err := ParseType(ref.Desc)
		if err != nil {
			return 0, 0, err
		}
		s := ft.Slots()
		switch in.Op {
		case Getstatic:
			return 0, s, nil
		case Putstatic:
			return s, 0, nil
		case Getfield:
			return 1, s, nil
		default: // Putfield
			return 1 + s, 0, nil
		}
	case Invokevirtual, Invokespecial, Invokestatic, Invokeinterface:
		ref, err := pool.Ref(in.Index)
		if err != nil {
			return 0, 0, err
		}
		mt, err := ParseMethodType(ref.Desc)
		if err != nil {
			return 0, 0, err
		}
		pop = mt.ParamSlots()
		if in.Op != Invokestatic {
			pop++ // receiver
		}
		return pop, mt.Ret.Slots(), nil
	case Multianewarray:
		return int(in.Dims), 1, nil
	}
	return 0, 0, fmt.Errorf("bytecode: no stack effect metadata for %s", in.Op.Name())
}

// MaxStack computes a conservative max_stack value for an instruction
// list by propagating stack heights along control flow. handlersAt maps
// instruction indices that begin exception handlers; handler entry starts
// with a stack height of one (the thrown exception).
//
// The computation is a fixed-point over the control-flow graph and
// assumes the code is well-formed enough that stack heights are
// consistent at join points (which phase-3 verification guarantees); on
// inconsistency it returns the larger height, staying conservative.
func MaxStack(insts []Inst, pool *classfile.ConstPool, handlersAt []int) (int, error) {
	n := len(insts)
	height := make([]int, n)
	seen := make([]bool, n)
	work := make([]int, 0, n+len(handlersAt))

	push := func(idx, h int) {
		if idx < 0 || idx >= n {
			return
		}
		if !seen[idx] || h > height[idx] {
			seen[idx] = true
			height[idx] = h
			work = append(work, idx)
		}
	}
	push(0, 0)
	for _, h := range handlersAt {
		push(h, 1)
	}

	maxH := 0
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		h := height[idx]
		in := insts[idx]
		pop, pushN, err := StackEffect(in, pool)
		if err != nil {
			return 0, err
		}
		after := h - pop + pushN
		if h > maxH {
			maxH = h
		}
		if after > maxH {
			maxH = after
		}
		if after < 0 {
			return 0, decodeErrf(in.PC, "stack underflow computing max_stack (height %d, pops %d)", h, pop)
		}
		if in.Op.IsBranch() {
			push(in.Target, after)
		}
		if in.Op.IsSwitch() {
			push(in.Switch.Default, after)
			for _, t := range in.Switch.Targets {
				push(t, after)
			}
		}
		if !in.Op.EndsFlow() {
			push(idx+1, after)
		}
	}
	return maxH, nil
}
