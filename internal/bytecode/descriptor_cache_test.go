package bytecode

import (
	"fmt"
	"sync"
	"testing"
)

func TestDescriptorCacheHitsAndMisses(t *testing.T) {
	ResetDescriptorCache()
	defer ResetDescriptorCache()

	if _, err := ParseMethodType("(ILjava/lang/String;)V"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseType("[[Ljava/util/Vector;"); err != nil {
		t.Fatal(err)
	}
	hits, misses := DescriptorCacheStats()
	if hits != 0 || misses != 2 {
		t.Fatalf("after cold parses: hits=%d misses=%d, want 0/2", hits, misses)
	}

	for i := 0; i < 5; i++ {
		mt, err := ParseMethodType("(ILjava/lang/String;)V")
		if err != nil {
			t.Fatal(err)
		}
		if got := mt.String(); got != "(ILjava/lang/String;)V" {
			t.Fatalf("cached method type renders %q", got)
		}
		ty, err := ParseType("[[Ljava/util/Vector;")
		if err != nil {
			t.Fatal(err)
		}
		if got := ty.String(); got != "[[Ljava/util/Vector;" {
			t.Fatalf("cached type renders %q", got)
		}
	}
	hits, misses = DescriptorCacheStats()
	if hits != 10 || misses != 2 {
		t.Fatalf("after warm parses: hits=%d misses=%d, want 10/2", hits, misses)
	}

	// Failed parses are not cached and never return stale successes.
	if _, err := ParseMethodType("(I"); err == nil {
		t.Fatal("malformed descriptor parsed")
	}
	if _, err := ParseMethodType("(I"); err == nil {
		t.Fatal("malformed descriptor parsed on second attempt")
	}
}

func TestDescriptorCacheBounded(t *testing.T) {
	ResetDescriptorCache()
	defer ResetDescriptorCache()

	// Insert far more one-shot descriptors than the limit; the
	// two-generation scheme bounds resident entries at 2x the limit.
	for i := 0; i < 3*descCacheLimit; i++ {
		if _, err := ParseMethodType(fmt.Sprintf("(I)L%06d;", i)); err != nil {
			t.Fatal(err)
		}
	}
	methodCache.mu.RLock()
	resident := len(methodCache.cur) + len(methodCache.prev)
	methodCache.mu.RUnlock()
	if resident > 2*descCacheLimit {
		t.Fatalf("cache holds %d entries, want <= %d", resident, 2*descCacheLimit)
	}

	// A hot entry parsed after the churn still round-trips.
	mt, err := ParseMethodType("(DD)D")
	if err != nil {
		t.Fatal(err)
	}
	if mt.String() != "(DD)D" {
		t.Fatalf("post-churn parse renders %q", mt.String())
	}
}

func TestDescriptorCacheConcurrent(t *testing.T) {
	ResetDescriptorCache()
	defer ResetDescriptorCache()

	descs := []string{
		"(ILjava/lang/String;)V", "()V", "(J)J", "([B)I",
		"(Ljava/lang/Object;Ljava/lang/Object;)Z", "([[D)[[D",
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				d := descs[(seed+i)%len(descs)]
				mt, err := ParseMethodType(d)
				if err != nil {
					t.Errorf("%s: %v", d, err)
					return
				}
				if mt.String() != d {
					t.Errorf("%s renders %q", d, mt.String())
					return
				}
				// Churn to force generation rotations under load.
				if i%50 == 0 {
					_, _ = ParseMethodType(fmt.Sprintf("(I)L%d_%d;", seed, i))
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkParseMethodTypeCached measures the warm resolve path: the
// same descriptor strings the verifier sees on every invoke.
func BenchmarkParseMethodTypeCached(b *testing.B) {
	ResetDescriptorCache()
	defer ResetDescriptorCache()
	descs := []string{
		"(ILjava/lang/String;)V", "()V", "(J)J",
		"(Ljava/lang/Object;Ljava/lang/Object;)Z",
	}
	for _, d := range descs {
		if _, err := ParseMethodType(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMethodType(descs[i%len(descs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseMethodTypeCold measures the uncached parser for
// comparison (the cost every resolve paid before memoization).
func BenchmarkParseMethodTypeCold(b *testing.B) {
	descs := []string{
		"(ILjava/lang/String;)V", "()V", "(J)J",
		"(Ljava/lang/Object;Ljava/lang/Object;)Z",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseMethodTypeUncached(descs[i%len(descs)]); err != nil {
			b.Fatal(err)
		}
	}
}
