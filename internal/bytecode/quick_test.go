package bytecode

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randInsts generates a random—but structurally valid—instruction list:
// opcodes from a safe mix, branch/switch targets within range.
type randInsts []Inst

// Generate implements quick.Generator.
func (randInsts) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2 + r.Intn(60)
	insts := make([]Inst, 0, n)
	for i := 0; i < n-1; i++ {
		switch r.Intn(10) {
		case 0:
			insts = append(insts, Inst{Op: Nop, Target: -1})
		case 1:
			insts = append(insts, Inst{Op: Bipush, Const: int32(int8(r.Int())), Target: -1})
		case 2:
			insts = append(insts, Inst{Op: Sipush, Const: int32(int16(r.Int())), Target: -1})
		case 3:
			insts = append(insts, Inst{Op: Iload, Index: uint16(r.Intn(400)), Target: -1})
		case 4:
			insts = append(insts, Inst{Op: Iinc, Index: uint16(r.Intn(300)), Const: int32(r.Intn(40000) - 20000), Target: -1})
		case 5:
			insts = append(insts, Inst{Op: Goto, Target: r.Intn(n)})
		case 6:
			insts = append(insts, Inst{Op: IfIcmplt, Target: r.Intn(n)})
		case 7:
			arms := 1 + r.Intn(4)
			sw := &Switch{Low: int32(r.Intn(100) - 50), Default: r.Intn(n)}
			for a := 0; a < arms; a++ {
				sw.Targets = append(sw.Targets, r.Intn(n))
			}
			insts = append(insts, Inst{Op: Tableswitch, Switch: sw})
		case 8:
			arms := 1 + r.Intn(4)
			sw := &Switch{Default: r.Intn(n)}
			key := int32(r.Intn(50) - 100)
			for a := 0; a < arms; a++ {
				sw.Keys = append(sw.Keys, key)
				sw.Targets = append(sw.Targets, r.Intn(n))
				key += int32(1 + r.Intn(40))
			}
			insts = append(insts, Inst{Op: Lookupswitch, Switch: sw})
		default:
			insts = append(insts, Inst{Op: Iadd, Target: -1})
		}
	}
	insts = append(insts, Inst{Op: Return, Target: -1})
	return reflect.ValueOf(randInsts(insts))
}

// TestQuickEncodeDecodeRoundTrip: any structurally valid instruction
// list must survive Encode→Decode with identical semantics-bearing
// fields and targets.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(ri randInsts) bool {
		insts := []Inst(ri)
		code, _, err := Encode(insts)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		back, err := Decode(code)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if len(back) != len(insts) {
			t.Logf("length %d != %d", len(back), len(insts))
			return false
		}
		for i := range insts {
			w, g := insts[i], back[i]
			// goto may have been widened to goto_w.
			if w.Op == Goto && g.Op == GotoW {
				g.Op = Goto
			}
			// iload/iinc may have been widened.
			if g.Wide {
				g.Wide = false
			}
			if g.Op != w.Op || g.Index != w.Index || g.Const != w.Const {
				t.Logf("inst %d: %+v != %+v", i, g, w)
				return false
			}
			if w.Op.IsBranch() && g.Target != w.Target {
				t.Logf("inst %d target: %d != %d", i, g.Target, w.Target)
				return false
			}
			if w.Op.IsSwitch() {
				if g.Switch.Default != w.Switch.Default ||
					len(g.Switch.Targets) != len(w.Switch.Targets) {
					return false
				}
				for k := range w.Switch.Targets {
					if g.Switch.Targets[k] != w.Switch.Targets[k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randType generates a random valid field type descriptor.
type randType string

// Generate implements quick.Generator.
func (randType) Generate(r *rand.Rand, size int) reflect.Value {
	var build func(depth int) string
	build = func(depth int) string {
		prims := []string{"B", "C", "D", "F", "I", "J", "S", "Z"}
		switch {
		case depth < 3 && r.Intn(4) == 0:
			return "[" + build(depth+1)
		case r.Intn(3) == 0:
			segs := 1 + r.Intn(3)
			name := ""
			for i := 0; i < segs; i++ {
				if i > 0 {
					name += "/"
				}
				name += string(rune('a' + r.Intn(26)))
			}
			return "L" + name + ";"
		default:
			return prims[r.Intn(len(prims))]
		}
	}
	return reflect.ValueOf(randType(build(0)))
}

// TestQuickDescriptorRoundTrip: ParseType(t).String() == t for any valid
// descriptor, and method descriptors assembled from them round-trip too.
func TestQuickDescriptorRoundTrip(t *testing.T) {
	f := func(a, b, ret randType) bool {
		ty, err := ParseType(string(a))
		if err != nil || ty.String() != string(a) {
			return false
		}
		md := "(" + string(a) + string(b) + ")" + string(ret)
		mt, err := ParseMethodType(md)
		if err != nil || mt.String() != md {
			return false
		}
		// Slot accounting is consistent.
		slots := 0
		for _, p := range mt.Params {
			slots += p.Slots()
		}
		return slots == mt.ParamSlots()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
