package bytecode

import "encoding/binary"

// Encode serializes an instruction list back to raw bytecode. Branch and
// switch targets are taken from the instruction-index representation and
// converted to byte offsets; switch padding is recomputed; ldc, local
// variable, iinc, goto and jsr instructions are automatically promoted to
// their wide forms when operands or offsets overflow the short encodings.
//
// The returned pcs slice gives the byte offset of each instruction, which
// callers use to rebuild exception tables and line-number tables.
//
// A conditional branch whose offset exceeds ±32767 cannot be encoded
// directly; none of the DVM's services generate methods near that size,
// so Encode reports an error rather than synthesizing an inverted-branch
// trampoline.
func Encode(insts []Inst) (code []byte, pcs []int, err error) {
	n := len(insts)
	if n == 0 {
		return nil, nil, decodeErrf(0, "cannot encode empty instruction list")
	}
	work := make([]Inst, n)
	copy(work, insts)

	// Validate targets before sizing.
	for i := range work {
		in := &work[i]
		if in.Op.IsBranch() {
			if in.Target < 0 || in.Target >= n {
				return nil, nil, decodeErrf(i, "instruction %d: branch target %d out of range", i, in.Target)
			}
		}
		if in.Op.IsSwitch() {
			if in.Switch == nil {
				return nil, nil, decodeErrf(i, "instruction %d: switch without payload", i)
			}
			if in.Switch.Default < 0 || in.Switch.Default >= n {
				return nil, nil, decodeErrf(i, "instruction %d: switch default %d out of range", i, in.Switch.Default)
			}
			for _, t := range in.Switch.Targets {
				if t < 0 || t >= n {
					return nil, nil, decodeErrf(i, "instruction %d: switch target %d out of range", i, t)
				}
			}
			if in.Op == Lookupswitch && len(in.Switch.Keys) != len(in.Switch.Targets) {
				return nil, nil, decodeErrf(i, "instruction %d: lookupswitch keys/targets mismatch", i)
			}
		}
	}

	// Eager operand-width promotions that do not depend on layout.
	for i := range work {
		in := &work[i]
		switch in.Op.OperandKind() {
		case KindCPU1:
			if in.Index > 0xFF {
				in.Op = LdcW
			}
		case KindLocal:
			if in.Index > 0xFF {
				in.Wide = true
			}
		case KindIinc:
			if in.Index > 0xFF || in.Const < -128 || in.Const > 127 {
				in.Wide = true
			}
		}
	}

	pcs = make([]int, n)
	size := func(i int, pc int) int {
		in := &work[i]
		if in.Wide {
			if in.Op.OperandKind() == KindIinc {
				return 6
			}
			return 4
		}
		switch in.Op.OperandKind() {
		case KindNone:
			return 1
		case KindS1, KindCPU1, KindLocal, KindAType:
			return 2
		case KindS2, KindCPU2, KindIinc, KindBranch2, KindExtLL, KindExtIincLd:
			return 3
		case KindMultiNew:
			return 4
		case KindBranch4, KindIfaceRef:
			return 5
		case KindExtCmpBr:
			return 6
		case KindTable:
			pad := (4 - ((pc + 1) % 4)) % 4
			return 1 + pad + 12 + 4*len(in.Switch.Targets)
		case KindLookup:
			pad := (4 - ((pc + 1) % 4)) % 4
			return 1 + pad + 8 + 8*len(in.Switch.Keys)
		}
		return 1
	}

	// Fixpoint: lay out, then widen any overflowing goto/jsr and re-lay
	// until stable. Widening only grows offsets, so this terminates.
	for iter := 0; ; iter++ {
		pc := 0
		for i := range work {
			pcs[i] = pc
			pc += size(i, pc)
		}
		changed := false
		for i := range work {
			in := &work[i]
			k := in.Op.OperandKind()
			if k != KindBranch2 && k != KindExtCmpBr {
				continue
			}
			off := pcs[in.Target] - pcs[i]
			if off >= -32768 && off <= 32767 {
				continue
			}
			switch in.Op {
			case Goto:
				in.Op = GotoW
				changed = true
			case Jsr:
				in.Op = JsrW
				changed = true
			default:
				return nil, nil, decodeErrf(pcs[i], "conditional branch offset %d overflows 16 bits", off)
			}
		}
		if !changed {
			break
		}
		if iter > n {
			return nil, nil, decodeErrf(0, "branch widening did not converge")
		}
	}

	total := pcs[n-1] + size(n-1, pcs[n-1])
	if total > 0xFFFF {
		return nil, nil, decodeErrf(0, "encoded method length %d exceeds 65535", total)
	}
	buf := make([]byte, 0, total)
	u2 := func(v uint16) { buf = binary.BigEndian.AppendUint16(buf, v) }
	u4 := func(v uint32) { buf = binary.BigEndian.AppendUint32(buf, v) }

	for i := range work {
		in := &work[i]
		if in.Wide {
			buf = append(buf, byte(Wide), byte(in.Op))
			u2(in.Index)
			if in.Op.OperandKind() == KindIinc {
				u2(uint16(int16(in.Const)))
			}
			continue
		}
		buf = append(buf, byte(in.Op))
		switch in.Op.OperandKind() {
		case KindNone:
		case KindS1:
			buf = append(buf, byte(int8(in.Const)))
		case KindS2:
			u2(uint16(int16(in.Const)))
		case KindCPU1:
			buf = append(buf, byte(in.Index))
		case KindCPU2:
			u2(in.Index)
		case KindLocal:
			buf = append(buf, byte(in.Index))
		case KindIinc:
			buf = append(buf, byte(in.Index), byte(int8(in.Const)))
		case KindBranch2:
			u2(uint16(int16(pcs[in.Target] - pcs[i])))
		case KindBranch4:
			u4(uint32(int32(pcs[in.Target] - pcs[i])))
		case KindIfaceRef:
			u2(in.Index)
			buf = append(buf, in.Count, 0)
		case KindAType:
			buf = append(buf, in.ArrayType)
		case KindMultiNew:
			u2(in.Index)
			buf = append(buf, in.Dims)
		case KindTable:
			for len(buf)%4 != 0 {
				buf = append(buf, 0)
			}
			u4(uint32(int32(pcs[in.Switch.Default] - pcs[i])))
			u4(uint32(in.Switch.Low))
			u4(uint32(in.Switch.Low + int32(len(in.Switch.Targets)) - 1))
			for _, t := range in.Switch.Targets {
				u4(uint32(int32(pcs[t] - pcs[i])))
			}
		case KindLookup:
			for len(buf)%4 != 0 {
				buf = append(buf, 0)
			}
			u4(uint32(int32(pcs[in.Switch.Default] - pcs[i])))
			u4(uint32(len(in.Switch.Keys)))
			for k, key := range in.Switch.Keys {
				u4(uint32(key))
				u4(uint32(int32(pcs[in.Switch.Targets[k]] - pcs[i])))
			}
		case KindExtLL:
			buf = append(buf, byte(in.Index), in.ArrayType)
		case KindExtCmpBr:
			buf = append(buf, byte(in.Index), in.ArrayType, in.Count)
			u2(uint16(int16(pcs[in.Target] - pcs[i])))
		case KindExtIincLd:
			buf = append(buf, byte(in.Index), byte(int8(in.Const)))
		}
	}
	return buf, pcs, nil
}
