package bytecode

import (
	"encoding/binary"
	"fmt"
)

// Inst is one decoded instruction. Branch and switch targets are
// represented as indices into the decoded instruction slice (not byte
// offsets), so instruction lists can be spliced by rewriting services and
// re-encoded with offsets recomputed.
type Inst struct {
	Op   Opcode
	Wide bool // instruction was (or must be) prefixed with the wide opcode

	// PC is the byte offset of the instruction in the code it was decoded
	// from. Encode recomputes PCs; on freshly built instructions it is
	// meaningless.
	PC int

	Index     uint16  // constant pool index or local variable index
	Const     int32   // bipush/sipush immediate or iinc increment
	ArrayType uint8   // newarray element type code
	Dims      uint8   // multianewarray dimension count
	Count     uint8   // invokeinterface historical count operand
	Target    int     // branch target as an instruction index, -1 if none
	Switch    *Switch // switch payload, nil for other instructions
}

// Switch is the payload of a tableswitch or lookupswitch instruction.
// Targets (and Default) are instruction indices, parallel to Keys for
// lookupswitch or implicitly Low..High for tableswitch.
type Switch struct {
	Default int
	Low     int32   // tableswitch only
	Keys    []int32 // lookupswitch only
	Targets []int
}

// String renders the instruction in a javap-like form.
func (in Inst) String() string {
	s := in.Op.Name()
	if in.Wide {
		s = "wide " + s
	}
	switch in.Op.OperandKind() {
	case KindS1, KindS2:
		return fmt.Sprintf("%s %d", s, in.Const)
	case KindCPU1, KindCPU2:
		return fmt.Sprintf("%s #%d", s, in.Index)
	case KindLocal:
		return fmt.Sprintf("%s %d", s, in.Index)
	case KindIinc:
		return fmt.Sprintf("%s %d by %d", s, in.Index, in.Const)
	case KindBranch2, KindBranch4:
		return fmt.Sprintf("%s ->%d", s, in.Target)
	case KindIfaceRef:
		return fmt.Sprintf("%s #%d count %d", s, in.Index, in.Count)
	case KindAType:
		return fmt.Sprintf("%s %d", s, in.ArrayType)
	case KindMultiNew:
		return fmt.Sprintf("%s #%d dims %d", s, in.Index, in.Dims)
	case KindTable, KindLookup:
		return fmt.Sprintf("%s default ->%d (%d arms)", s, in.Switch.Default, len(in.Switch.Targets))
	}
	return s
}

// DecodeError reports malformed bytecode. It is the error currency of the
// verifier's phase-2 (instruction integrity) checks.
type DecodeError struct {
	PC  int
	Msg string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("bytecode: pc %d: %s", e.PC, e.Msg)
}

func decodeErrf(pc int, format string, args ...any) error {
	return &DecodeError{PC: pc, Msg: fmt.Sprintf(format, args...)}
}

// Decode parses raw method bytecode into an instruction list. It verifies
// that every opcode is assigned, operands do not run off the end, switch
// padding is canonical, and every branch/switch target lands on an
// instruction boundary — the paper's "instruction integrity" phase of
// verification. Extension (DVM native format) opcodes are rejected; use
// DecodeExt for code produced by the compilation service.
func Decode(code []byte) ([]Inst, error) { return decodeAll(code, false) }

// DecodeExt parses bytecode accepting the DVM extension opcodes emitted
// by the centralized compilation service. Only the DVM client runtime
// uses this entry point.
func DecodeExt(code []byte) ([]Inst, error) { return decodeAll(code, true) }

func decodeAll(code []byte, allowExt bool) ([]Inst, error) {
	if len(code) == 0 {
		return nil, decodeErrf(0, "empty code")
	}
	if len(code) > 0xFFFF {
		// The exception table and branch encodings cap methods at 64 KiB.
		return nil, decodeErrf(0, "code length %d exceeds 65535", len(code))
	}
	var insts []Inst
	idxAt := make(map[int]int) // byte offset -> instruction index
	type pendingBranch struct {
		inst   int
		target int // absolute byte offset
	}
	var pending []pendingBranch
	pendSwitch := make(map[int][]int) // inst index -> absolute byte targets (default first)

	pc := 0
	for pc < len(code) {
		start := pc
		op := Opcode(code[pc])
		pc++
		in := Inst{Op: op, PC: start, Target: -1}
		if op == Wide {
			if pc >= len(code) {
				return nil, decodeErrf(start, "truncated wide prefix")
			}
			in.Op = Opcode(code[pc])
			in.Wide = true
			pc++
			switch in.Op.OperandKind() {
			case KindLocal:
				if pc+2 > len(code) {
					return nil, decodeErrf(start, "truncated wide %s", in.Op.Name())
				}
				in.Index = binary.BigEndian.Uint16(code[pc:])
				pc += 2
			case KindIinc:
				if pc+4 > len(code) {
					return nil, decodeErrf(start, "truncated wide iinc")
				}
				in.Index = binary.BigEndian.Uint16(code[pc:])
				in.Const = int32(int16(binary.BigEndian.Uint16(code[pc+2:])))
				pc += 4
			default:
				return nil, decodeErrf(start, "wide prefix on %s", in.Op.Name())
			}
			idxAt[start] = len(insts)
			insts = append(insts, in)
			continue
		}
		if op.IsExtension() && !allowExt {
			return nil, decodeErrf(start, "extension opcode 0x%02x in strict JVM code", uint8(op))
		}
		info := ops[op]
		switch info.kind {
		case KindInvalid:
			return nil, decodeErrf(start, "unassigned opcode 0x%02x", uint8(op))
		case KindNone:
		case KindS1:
			if pc+1 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			in.Const = int32(int8(code[pc]))
			pc++
		case KindS2:
			if pc+2 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			in.Const = int32(int16(binary.BigEndian.Uint16(code[pc:])))
			pc += 2
		case KindCPU1:
			if pc+1 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			in.Index = uint16(code[pc])
			pc++
		case KindCPU2:
			if pc+2 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			in.Index = binary.BigEndian.Uint16(code[pc:])
			pc += 2
		case KindLocal:
			if pc+1 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			in.Index = uint16(code[pc])
			pc++
		case KindIinc:
			if pc+2 > len(code) {
				return nil, decodeErrf(start, "truncated iinc")
			}
			in.Index = uint16(code[pc])
			in.Const = int32(int8(code[pc+1]))
			pc += 2
		case KindBranch2:
			if pc+2 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			off := int(int16(binary.BigEndian.Uint16(code[pc:])))
			pc += 2
			pending = append(pending, pendingBranch{inst: len(insts), target: start + off})
		case KindBranch4:
			if pc+4 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			off := int(int32(binary.BigEndian.Uint32(code[pc:])))
			pc += 4
			pending = append(pending, pendingBranch{inst: len(insts), target: start + off})
		case KindIfaceRef:
			if pc+4 > len(code) {
				return nil, decodeErrf(start, "truncated invokeinterface")
			}
			in.Index = binary.BigEndian.Uint16(code[pc:])
			in.Count = code[pc+2]
			if code[pc+3] != 0 {
				return nil, decodeErrf(start, "invokeinterface fourth operand must be zero")
			}
			pc += 4
		case KindAType:
			if pc+1 > len(code) {
				return nil, decodeErrf(start, "truncated newarray")
			}
			in.ArrayType = code[pc]
			if in.ArrayType < TBoolean || in.ArrayType > TLong {
				return nil, decodeErrf(start, "newarray: bad element type %d", in.ArrayType)
			}
			pc++
		case KindMultiNew:
			if pc+3 > len(code) {
				return nil, decodeErrf(start, "truncated multianewarray")
			}
			in.Index = binary.BigEndian.Uint16(code[pc:])
			in.Dims = code[pc+2]
			if in.Dims == 0 {
				return nil, decodeErrf(start, "multianewarray with zero dimensions")
			}
			pc += 3
		case KindTable:
			pad := (4 - (pc % 4)) % 4
			for i := 0; i < pad; i++ {
				if pc >= len(code) {
					return nil, decodeErrf(start, "truncated tableswitch padding")
				}
				if code[pc] != 0 {
					return nil, decodeErrf(start, "non-zero tableswitch padding")
				}
				pc++
			}
			if pc+12 > len(code) {
				return nil, decodeErrf(start, "truncated tableswitch header")
			}
			def := int(int32(binary.BigEndian.Uint32(code[pc:])))
			low := int32(binary.BigEndian.Uint32(code[pc+4:]))
			high := int32(binary.BigEndian.Uint32(code[pc+8:]))
			pc += 12
			if low > high {
				return nil, decodeErrf(start, "tableswitch low %d > high %d", low, high)
			}
			n := int(int64(high) - int64(low) + 1)
			if pc+4*n > len(code) {
				return nil, decodeErrf(start, "truncated tableswitch arms (%d)", n)
			}
			sw := &Switch{Low: low}
			targets := []int{start + def}
			for i := 0; i < n; i++ {
				targets = append(targets, start+int(int32(binary.BigEndian.Uint32(code[pc:]))))
				pc += 4
			}
			in.Switch = sw
			pendSwitch[len(insts)] = targets
		case KindLookup:
			pad := (4 - (pc % 4)) % 4
			for i := 0; i < pad; i++ {
				if pc >= len(code) {
					return nil, decodeErrf(start, "truncated lookupswitch padding")
				}
				if code[pc] != 0 {
					return nil, decodeErrf(start, "non-zero lookupswitch padding")
				}
				pc++
			}
			if pc+8 > len(code) {
				return nil, decodeErrf(start, "truncated lookupswitch header")
			}
			def := int(int32(binary.BigEndian.Uint32(code[pc:])))
			n := int(int32(binary.BigEndian.Uint32(code[pc+4:])))
			pc += 8
			if n < 0 || pc+8*n > len(code) {
				return nil, decodeErrf(start, "truncated lookupswitch pairs (%d)", n)
			}
			sw := &Switch{}
			targets := []int{start + def}
			var prev int64 = -1 << 62
			for i := 0; i < n; i++ {
				key := int32(binary.BigEndian.Uint32(code[pc:]))
				if int64(key) <= prev {
					return nil, decodeErrf(start, "lookupswitch keys not strictly increasing")
				}
				prev = int64(key)
				sw.Keys = append(sw.Keys, key)
				targets = append(targets, start+int(int32(binary.BigEndian.Uint32(code[pc+4:]))))
				pc += 8
			}
			in.Switch = sw
			pendSwitch[len(insts)] = targets
		case KindExtLL:
			if pc+2 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			in.Index = uint16(code[pc])
			in.ArrayType = code[pc+1]
			pc += 2
		case KindExtCmpBr:
			if pc+5 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			in.Index = uint16(code[pc])
			in.ArrayType = code[pc+1]
			in.Count = code[pc+2]
			if in.Count > 5 {
				return nil, decodeErrf(start, "ext_cmp_branch: bad condition %d", in.Count)
			}
			off := int(int16(binary.BigEndian.Uint16(code[pc+3:])))
			pc += 5
			pending = append(pending, pendingBranch{inst: len(insts), target: start + off})
		case KindExtIincLd:
			if pc+2 > len(code) {
				return nil, decodeErrf(start, "truncated %s", info.name)
			}
			in.Index = uint16(code[pc])
			in.Const = int32(int8(code[pc+1]))
			pc += 2
		case KindWidePfx:
			// handled above
		}
		idxAt[start] = len(insts)
		insts = append(insts, in)
	}

	resolve := func(at, target int) (int, error) {
		idx, ok := idxAt[target]
		if !ok {
			return 0, decodeErrf(insts[at].PC, "branch target %d is not an instruction boundary", target)
		}
		return idx, nil
	}
	for _, pb := range pending {
		idx, err := resolve(pb.inst, pb.target)
		if err != nil {
			return nil, err
		}
		insts[pb.inst].Target = idx
	}
	for instIdx, targets := range pendSwitch {
		sw := insts[instIdx].Switch
		def, err := resolve(instIdx, targets[0])
		if err != nil {
			return nil, err
		}
		sw.Default = def
		for _, t := range targets[1:] {
			idx, err := resolve(instIdx, t)
			if err != nil {
				return nil, err
			}
			sw.Targets = append(sw.Targets, idx)
		}
	}
	return insts, nil
}

// PCMap returns, for each instruction index, its byte offset as recorded
// at decode time. Useful for mapping exception tables into instruction
// indices.
func PCMap(insts []Inst) map[int]int {
	m := make(map[int]int, len(insts))
	for i, in := range insts {
		m[in.PC] = i
	}
	return m
}
