// Package bytecode implements the JVM instruction set: an opcode table
// with operand formats and stack metadata, a decoder from raw Code
// attribute bytes to a structured instruction list, an encoder that
// re-serializes instruction lists (recomputing branch offsets and switch
// padding), and method/field descriptor parsing.
//
// Every DVM service that inspects or transforms code — the verifier's
// instruction-integrity and dataflow phases, the security and audit
// rewriters, the repartitioning optimizer, the AOT compiler, and the
// client interpreter — works on this package's Inst representation.
package bytecode

// Opcode is a JVM bytecode operation code.
type Opcode uint8

// The standard JVM opcodes (JVM spec chapter 6, Java 1.2 era).
const (
	Nop             Opcode = 0x00
	AconstNull      Opcode = 0x01
	IconstM1        Opcode = 0x02
	Iconst0         Opcode = 0x03
	Iconst1         Opcode = 0x04
	Iconst2         Opcode = 0x05
	Iconst3         Opcode = 0x06
	Iconst4         Opcode = 0x07
	Iconst5         Opcode = 0x08
	Lconst0         Opcode = 0x09
	Lconst1         Opcode = 0x0a
	Fconst0         Opcode = 0x0b
	Fconst1         Opcode = 0x0c
	Fconst2         Opcode = 0x0d
	Dconst0         Opcode = 0x0e
	Dconst1         Opcode = 0x0f
	Bipush          Opcode = 0x10
	Sipush          Opcode = 0x11
	Ldc             Opcode = 0x12
	LdcW            Opcode = 0x13
	Ldc2W           Opcode = 0x14
	Iload           Opcode = 0x15
	Lload           Opcode = 0x16
	Fload           Opcode = 0x17
	Dload           Opcode = 0x18
	Aload           Opcode = 0x19
	Iload0          Opcode = 0x1a
	Iload1          Opcode = 0x1b
	Iload2          Opcode = 0x1c
	Iload3          Opcode = 0x1d
	Lload0          Opcode = 0x1e
	Lload1          Opcode = 0x1f
	Lload2          Opcode = 0x20
	Lload3          Opcode = 0x21
	Fload0          Opcode = 0x22
	Fload1          Opcode = 0x23
	Fload2          Opcode = 0x24
	Fload3          Opcode = 0x25
	Dload0          Opcode = 0x26
	Dload1          Opcode = 0x27
	Dload2          Opcode = 0x28
	Dload3          Opcode = 0x29
	Aload0          Opcode = 0x2a
	Aload1          Opcode = 0x2b
	Aload2          Opcode = 0x2c
	Aload3          Opcode = 0x2d
	Iaload          Opcode = 0x2e
	Laload          Opcode = 0x2f
	Faload          Opcode = 0x30
	Daload          Opcode = 0x31
	Aaload          Opcode = 0x32
	Baload          Opcode = 0x33
	Caload          Opcode = 0x34
	Saload          Opcode = 0x35
	Istore          Opcode = 0x36
	Lstore          Opcode = 0x37
	Fstore          Opcode = 0x38
	Dstore          Opcode = 0x39
	Astore          Opcode = 0x3a
	Istore0         Opcode = 0x3b
	Istore1         Opcode = 0x3c
	Istore2         Opcode = 0x3d
	Istore3         Opcode = 0x3e
	Lstore0         Opcode = 0x3f
	Lstore1         Opcode = 0x40
	Lstore2         Opcode = 0x41
	Lstore3         Opcode = 0x42
	Fstore0         Opcode = 0x43
	Fstore1         Opcode = 0x44
	Fstore2         Opcode = 0x45
	Fstore3         Opcode = 0x46
	Dstore0         Opcode = 0x47
	Dstore1         Opcode = 0x48
	Dstore2         Opcode = 0x49
	Dstore3         Opcode = 0x4a
	Astore0         Opcode = 0x4b
	Astore1         Opcode = 0x4c
	Astore2         Opcode = 0x4d
	Astore3         Opcode = 0x4e
	Iastore         Opcode = 0x4f
	Lastore         Opcode = 0x50
	Fastore         Opcode = 0x51
	Dastore         Opcode = 0x52
	Aastore         Opcode = 0x53
	Bastore         Opcode = 0x54
	Castore         Opcode = 0x55
	Sastore         Opcode = 0x56
	Pop             Opcode = 0x57
	Pop2            Opcode = 0x58
	Dup             Opcode = 0x59
	DupX1           Opcode = 0x5a
	DupX2           Opcode = 0x5b
	Dup2            Opcode = 0x5c
	Dup2X1          Opcode = 0x5d
	Dup2X2          Opcode = 0x5e
	Swap            Opcode = 0x5f
	Iadd            Opcode = 0x60
	Ladd            Opcode = 0x61
	Fadd            Opcode = 0x62
	Dadd            Opcode = 0x63
	Isub            Opcode = 0x64
	Lsub            Opcode = 0x65
	Fsub            Opcode = 0x66
	Dsub            Opcode = 0x67
	Imul            Opcode = 0x68
	Lmul            Opcode = 0x69
	Fmul            Opcode = 0x6a
	Dmul            Opcode = 0x6b
	Idiv            Opcode = 0x6c
	Ldiv            Opcode = 0x6d
	Fdiv            Opcode = 0x6e
	Ddiv            Opcode = 0x6f
	Irem            Opcode = 0x70
	Lrem            Opcode = 0x71
	Frem            Opcode = 0x72
	Drem            Opcode = 0x73
	Ineg            Opcode = 0x74
	Lneg            Opcode = 0x75
	Fneg            Opcode = 0x76
	Dneg            Opcode = 0x77
	Ishl            Opcode = 0x78
	Lshl            Opcode = 0x79
	Ishr            Opcode = 0x7a
	Lshr            Opcode = 0x7b
	Iushr           Opcode = 0x7c
	Lushr           Opcode = 0x7d
	Iand            Opcode = 0x7e
	Land            Opcode = 0x7f
	Ior             Opcode = 0x80
	Lor             Opcode = 0x81
	Ixor            Opcode = 0x82
	Lxor            Opcode = 0x83
	Iinc            Opcode = 0x84
	I2l             Opcode = 0x85
	I2f             Opcode = 0x86
	I2d             Opcode = 0x87
	L2i             Opcode = 0x88
	L2f             Opcode = 0x89
	L2d             Opcode = 0x8a
	F2i             Opcode = 0x8b
	F2l             Opcode = 0x8c
	F2d             Opcode = 0x8d
	D2i             Opcode = 0x8e
	D2l             Opcode = 0x8f
	D2f             Opcode = 0x90
	I2b             Opcode = 0x91
	I2c             Opcode = 0x92
	I2s             Opcode = 0x93
	Lcmp            Opcode = 0x94
	Fcmpl           Opcode = 0x95
	Fcmpg           Opcode = 0x96
	Dcmpl           Opcode = 0x97
	Dcmpg           Opcode = 0x98
	Ifeq            Opcode = 0x99
	Ifne            Opcode = 0x9a
	Iflt            Opcode = 0x9b
	Ifge            Opcode = 0x9c
	Ifgt            Opcode = 0x9d
	Ifle            Opcode = 0x9e
	IfIcmpeq        Opcode = 0x9f
	IfIcmpne        Opcode = 0xa0
	IfIcmplt        Opcode = 0xa1
	IfIcmpge        Opcode = 0xa2
	IfIcmpgt        Opcode = 0xa3
	IfIcmple        Opcode = 0xa4
	IfAcmpeq        Opcode = 0xa5
	IfAcmpne        Opcode = 0xa6
	Goto            Opcode = 0xa7
	Jsr             Opcode = 0xa8
	Ret             Opcode = 0xa9
	Tableswitch     Opcode = 0xaa
	Lookupswitch    Opcode = 0xab
	Ireturn         Opcode = 0xac
	Lreturn         Opcode = 0xad
	Freturn         Opcode = 0xae
	Dreturn         Opcode = 0xaf
	Areturn         Opcode = 0xb0
	Return          Opcode = 0xb1
	Getstatic       Opcode = 0xb2
	Putstatic       Opcode = 0xb3
	Getfield        Opcode = 0xb4
	Putfield        Opcode = 0xb5
	Invokevirtual   Opcode = 0xb6
	Invokespecial   Opcode = 0xb7
	Invokestatic    Opcode = 0xb8
	Invokeinterface Opcode = 0xb9
	New             Opcode = 0xbb
	Newarray        Opcode = 0xbc
	Anewarray       Opcode = 0xbd
	Arraylength     Opcode = 0xbe
	Athrow          Opcode = 0xbf
	Checkcast       Opcode = 0xc0
	Instanceof      Opcode = 0xc1
	Monitorenter    Opcode = 0xc2
	Monitorexit     Opcode = 0xc3
	Wide            Opcode = 0xc4
	Multianewarray  Opcode = 0xc5
	Ifnull          Opcode = 0xc6
	Ifnonnull       Opcode = 0xc7
	GotoW           Opcode = 0xc8
	JsrW            Opcode = 0xc9
)

// Extension opcodes: the DVM client runtime's "native format" targeted by
// the centralized compilation service (§3.4 of the paper). The service
// translates standard bytecode into this quickened form ahead of time,
// per client architecture; a strict JVM never sees these (Decode rejects
// them — only DecodeExt, used by the DVM client runtime, accepts them).
const (
	// ExtLoadAdd fuses `iload a; iload b; iadd` into one dispatch.
	// Operands: u8 a (Inst.Index), u8 b (Inst.ArrayType).
	ExtLoadAdd Opcode = 0xe0
	// ExtLoadMul fuses `iload a; iload b; imul`.
	ExtLoadMul Opcode = 0xe1
	// ExtCmpBranch fuses `iload a; iload b; if_icmp<cond> target`.
	// Operands: u8 a (Index), u8 b (ArrayType), u8 cond (Count, 0..5 for
	// eq/ne/lt/ge/gt/le), s2 branch offset (Target).
	ExtCmpBranch Opcode = 0xe2
	// ExtIincLoad fuses `iinc a, k; iload a`. Operands: u8 a (Index),
	// s1 k (Const).
	ExtIincLoad Opcode = 0xe3
)

// IsExtension reports whether op is a DVM native-format opcode.
func (op Opcode) IsExtension() bool { return op >= ExtLoadAdd && op <= ExtIincLoad }

// Kind classifies an opcode's operand encoding.
type Kind uint8

// Operand encoding kinds.
const (
	KindNone      Kind = iota // no operands
	KindS1                    // signed byte immediate (bipush)
	KindS2                    // signed short immediate (sipush)
	KindCPU1                  // 1-byte constant pool index (ldc)
	KindCPU2                  // 2-byte constant pool index
	KindLocal                 // 1-byte local variable index (2-byte under wide)
	KindIinc                  // local index + signed const (widened under wide)
	KindBranch2               // 2-byte signed branch offset
	KindBranch4               // 4-byte signed branch offset
	KindIfaceRef              // invokeinterface: cp index + count + 0
	KindAType                 // newarray: primitive array type byte
	KindMultiNew              // multianewarray: cp index + dimension count
	KindTable                 // tableswitch
	KindLookup                // lookupswitch
	KindWidePfx               // the wide prefix itself
	KindExtLL                 // extension: two u8 local indices
	KindExtCmpBr              // extension: two u8 locals + cond + s2 offset
	KindExtIincLd             // extension: u8 local + s1 const
	KindInvalid               // unassigned opcode
)

// opInfo describes one opcode's static properties.
type opInfo struct {
	name string
	kind Kind
	// pop/push are the fixed operand-stack slot deltas; -1 marks ops whose
	// effect depends on a descriptor or is polymorphic (invokes, field ops,
	// dup/swap family, multianewarray).
	pop, push int8
}

var ops = buildOpTable()

func set(t *[256]opInfo, op Opcode, name string, kind Kind, pop, push int8) {
	t[op] = opInfo{name: name, kind: kind, pop: pop, push: push}
}

func buildOpTable() [256]opInfo {
	var t [256]opInfo
	for i := range t {
		t[i] = opInfo{name: "", kind: KindInvalid}
	}
	set(&t, Nop, "nop", KindNone, 0, 0)
	set(&t, AconstNull, "aconst_null", KindNone, 0, 1)
	for op, n := IconstM1, 0; op <= Iconst5; op, n = op+1, n+1 {
		set(&t, op, "iconst_"+[]string{"m1", "0", "1", "2", "3", "4", "5"}[n], KindNone, 0, 1)
	}
	set(&t, Lconst0, "lconst_0", KindNone, 0, 2)
	set(&t, Lconst1, "lconst_1", KindNone, 0, 2)
	set(&t, Fconst0, "fconst_0", KindNone, 0, 1)
	set(&t, Fconst1, "fconst_1", KindNone, 0, 1)
	set(&t, Fconst2, "fconst_2", KindNone, 0, 1)
	set(&t, Dconst0, "dconst_0", KindNone, 0, 2)
	set(&t, Dconst1, "dconst_1", KindNone, 0, 2)
	set(&t, Bipush, "bipush", KindS1, 0, 1)
	set(&t, Sipush, "sipush", KindS2, 0, 1)
	set(&t, Ldc, "ldc", KindCPU1, 0, 1)
	set(&t, LdcW, "ldc_w", KindCPU2, 0, 1)
	set(&t, Ldc2W, "ldc2_w", KindCPU2, 0, 2)
	set(&t, Iload, "iload", KindLocal, 0, 1)
	set(&t, Lload, "lload", KindLocal, 0, 2)
	set(&t, Fload, "fload", KindLocal, 0, 1)
	set(&t, Dload, "dload", KindLocal, 0, 2)
	set(&t, Aload, "aload", KindLocal, 0, 1)
	for i := 0; i < 4; i++ {
		d := []string{"0", "1", "2", "3"}[i]
		set(&t, Iload0+Opcode(i), "iload_"+d, KindNone, 0, 1)
		set(&t, Lload0+Opcode(i), "lload_"+d, KindNone, 0, 2)
		set(&t, Fload0+Opcode(i), "fload_"+d, KindNone, 0, 1)
		set(&t, Dload0+Opcode(i), "dload_"+d, KindNone, 0, 2)
		set(&t, Aload0+Opcode(i), "aload_"+d, KindNone, 0, 1)
	}
	set(&t, Iaload, "iaload", KindNone, 2, 1)
	set(&t, Laload, "laload", KindNone, 2, 2)
	set(&t, Faload, "faload", KindNone, 2, 1)
	set(&t, Daload, "daload", KindNone, 2, 2)
	set(&t, Aaload, "aaload", KindNone, 2, 1)
	set(&t, Baload, "baload", KindNone, 2, 1)
	set(&t, Caload, "caload", KindNone, 2, 1)
	set(&t, Saload, "saload", KindNone, 2, 1)
	set(&t, Istore, "istore", KindLocal, 1, 0)
	set(&t, Lstore, "lstore", KindLocal, 2, 0)
	set(&t, Fstore, "fstore", KindLocal, 1, 0)
	set(&t, Dstore, "dstore", KindLocal, 2, 0)
	set(&t, Astore, "astore", KindLocal, 1, 0)
	for i := 0; i < 4; i++ {
		d := []string{"0", "1", "2", "3"}[i]
		set(&t, Istore0+Opcode(i), "istore_"+d, KindNone, 1, 0)
		set(&t, Lstore0+Opcode(i), "lstore_"+d, KindNone, 2, 0)
		set(&t, Fstore0+Opcode(i), "fstore_"+d, KindNone, 1, 0)
		set(&t, Dstore0+Opcode(i), "dstore_"+d, KindNone, 2, 0)
		set(&t, Astore0+Opcode(i), "astore_"+d, KindNone, 1, 0)
	}
	set(&t, Iastore, "iastore", KindNone, 3, 0)
	set(&t, Lastore, "lastore", KindNone, 4, 0)
	set(&t, Fastore, "fastore", KindNone, 3, 0)
	set(&t, Dastore, "dastore", KindNone, 4, 0)
	set(&t, Aastore, "aastore", KindNone, 3, 0)
	set(&t, Bastore, "bastore", KindNone, 3, 0)
	set(&t, Castore, "castore", KindNone, 3, 0)
	set(&t, Sastore, "sastore", KindNone, 3, 0)
	set(&t, Pop, "pop", KindNone, 1, 0)
	set(&t, Pop2, "pop2", KindNone, 2, 0)
	set(&t, Dup, "dup", KindNone, 1, 2)
	set(&t, DupX1, "dup_x1", KindNone, 2, 3)
	set(&t, DupX2, "dup_x2", KindNone, 3, 4)
	set(&t, Dup2, "dup2", KindNone, 2, 4)
	set(&t, Dup2X1, "dup2_x1", KindNone, 3, 5)
	set(&t, Dup2X2, "dup2_x2", KindNone, 4, 6)
	set(&t, Swap, "swap", KindNone, 2, 2)
	bin := func(op Opcode, name string, wide bool) {
		if wide {
			set(&t, op, name, KindNone, 4, 2)
		} else {
			set(&t, op, name, KindNone, 2, 1)
		}
	}
	bin(Iadd, "iadd", false)
	bin(Ladd, "ladd", true)
	bin(Fadd, "fadd", false)
	bin(Dadd, "dadd", true)
	bin(Isub, "isub", false)
	bin(Lsub, "lsub", true)
	bin(Fsub, "fsub", false)
	bin(Dsub, "dsub", true)
	bin(Imul, "imul", false)
	bin(Lmul, "lmul", true)
	bin(Fmul, "fmul", false)
	bin(Dmul, "dmul", true)
	bin(Idiv, "idiv", false)
	bin(Ldiv, "ldiv", true)
	bin(Fdiv, "fdiv", false)
	bin(Ddiv, "ddiv", true)
	bin(Irem, "irem", false)
	bin(Lrem, "lrem", true)
	bin(Frem, "frem", false)
	bin(Drem, "drem", true)
	set(&t, Ineg, "ineg", KindNone, 1, 1)
	set(&t, Lneg, "lneg", KindNone, 2, 2)
	set(&t, Fneg, "fneg", KindNone, 1, 1)
	set(&t, Dneg, "dneg", KindNone, 2, 2)
	set(&t, Ishl, "ishl", KindNone, 2, 1)
	set(&t, Lshl, "lshl", KindNone, 3, 2)
	set(&t, Ishr, "ishr", KindNone, 2, 1)
	set(&t, Lshr, "lshr", KindNone, 3, 2)
	set(&t, Iushr, "iushr", KindNone, 2, 1)
	set(&t, Lushr, "lushr", KindNone, 3, 2)
	bin(Iand, "iand", false)
	bin(Land, "land", true)
	bin(Ior, "ior", false)
	bin(Lor, "lor", true)
	bin(Ixor, "ixor", false)
	bin(Lxor, "lxor", true)
	set(&t, Iinc, "iinc", KindIinc, 0, 0)
	set(&t, I2l, "i2l", KindNone, 1, 2)
	set(&t, I2f, "i2f", KindNone, 1, 1)
	set(&t, I2d, "i2d", KindNone, 1, 2)
	set(&t, L2i, "l2i", KindNone, 2, 1)
	set(&t, L2f, "l2f", KindNone, 2, 1)
	set(&t, L2d, "l2d", KindNone, 2, 2)
	set(&t, F2i, "f2i", KindNone, 1, 1)
	set(&t, F2l, "f2l", KindNone, 1, 2)
	set(&t, F2d, "f2d", KindNone, 1, 2)
	set(&t, D2i, "d2i", KindNone, 2, 1)
	set(&t, D2l, "d2l", KindNone, 2, 2)
	set(&t, D2f, "d2f", KindNone, 2, 1)
	set(&t, I2b, "i2b", KindNone, 1, 1)
	set(&t, I2c, "i2c", KindNone, 1, 1)
	set(&t, I2s, "i2s", KindNone, 1, 1)
	set(&t, Lcmp, "lcmp", KindNone, 4, 1)
	set(&t, Fcmpl, "fcmpl", KindNone, 2, 1)
	set(&t, Fcmpg, "fcmpg", KindNone, 2, 1)
	set(&t, Dcmpl, "dcmpl", KindNone, 4, 1)
	set(&t, Dcmpg, "dcmpg", KindNone, 4, 1)
	cond1 := []string{"ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle"}
	for i, n := range cond1 {
		set(&t, Ifeq+Opcode(i), n, KindBranch2, 1, 0)
	}
	cond2 := []string{"if_icmpeq", "if_icmpne", "if_icmplt", "if_icmpge", "if_icmpgt", "if_icmple", "if_acmpeq", "if_acmpne"}
	for i, n := range cond2 {
		set(&t, IfIcmpeq+Opcode(i), n, KindBranch2, 2, 0)
	}
	set(&t, Goto, "goto", KindBranch2, 0, 0)
	set(&t, Jsr, "jsr", KindBranch2, 0, 1)
	set(&t, Ret, "ret", KindLocal, 0, 0)
	set(&t, Tableswitch, "tableswitch", KindTable, 1, 0)
	set(&t, Lookupswitch, "lookupswitch", KindLookup, 1, 0)
	set(&t, Ireturn, "ireturn", KindNone, 1, 0)
	set(&t, Lreturn, "lreturn", KindNone, 2, 0)
	set(&t, Freturn, "freturn", KindNone, 1, 0)
	set(&t, Dreturn, "dreturn", KindNone, 2, 0)
	set(&t, Areturn, "areturn", KindNone, 1, 0)
	set(&t, Return, "return", KindNone, 0, 0)
	set(&t, Getstatic, "getstatic", KindCPU2, -1, -1)
	set(&t, Putstatic, "putstatic", KindCPU2, -1, -1)
	set(&t, Getfield, "getfield", KindCPU2, -1, -1)
	set(&t, Putfield, "putfield", KindCPU2, -1, -1)
	set(&t, Invokevirtual, "invokevirtual", KindCPU2, -1, -1)
	set(&t, Invokespecial, "invokespecial", KindCPU2, -1, -1)
	set(&t, Invokestatic, "invokestatic", KindCPU2, -1, -1)
	set(&t, Invokeinterface, "invokeinterface", KindIfaceRef, -1, -1)
	set(&t, New, "new", KindCPU2, 0, 1)
	set(&t, Newarray, "newarray", KindAType, 1, 1)
	set(&t, Anewarray, "anewarray", KindCPU2, 1, 1)
	set(&t, Arraylength, "arraylength", KindNone, 1, 1)
	set(&t, Athrow, "athrow", KindNone, 1, 0)
	set(&t, Checkcast, "checkcast", KindCPU2, 1, 1)
	set(&t, Instanceof, "instanceof", KindCPU2, 1, 1)
	set(&t, Monitorenter, "monitorenter", KindNone, 1, 0)
	set(&t, Monitorexit, "monitorexit", KindNone, 1, 0)
	set(&t, Wide, "wide", KindWidePfx, 0, 0)
	set(&t, Multianewarray, "multianewarray", KindMultiNew, -1, -1)
	set(&t, Ifnull, "ifnull", KindBranch2, 1, 0)
	set(&t, Ifnonnull, "ifnonnull", KindBranch2, 1, 0)
	set(&t, GotoW, "goto_w", KindBranch4, 0, 0)
	set(&t, JsrW, "jsr_w", KindBranch4, 0, 1)
	set(&t, ExtLoadAdd, "ext_load_add", KindExtLL, 0, 1)
	set(&t, ExtLoadMul, "ext_load_mul", KindExtLL, 0, 1)
	set(&t, ExtCmpBranch, "ext_cmp_branch", KindExtCmpBr, 0, 0)
	set(&t, ExtIincLoad, "ext_iinc_load", KindExtIincLd, 0, 1)
	return t
}

// Name returns the mnemonic for op, or "" for unassigned opcodes.
func (op Opcode) Name() string { return ops[op].name }

// Valid reports whether op is an assigned JVM opcode.
func (op Opcode) Valid() bool { return ops[op].kind != KindInvalid }

// OperandKind returns op's operand encoding classification.
func (op Opcode) OperandKind() Kind { return ops[op].kind }

// IsBranch reports whether op transfers control to an encoded target
// (conditional branches, goto, jsr, and their wide forms). Switches are
// reported separately by IsSwitch.
func (op Opcode) IsBranch() bool {
	k := ops[op].kind
	return k == KindBranch2 || k == KindBranch4 || k == KindExtCmpBr
}

// IsConditional reports whether op is a conditional two-way branch.
func (op Opcode) IsConditional() bool {
	return (op >= Ifeq && op <= IfAcmpne) || op == Ifnull || op == Ifnonnull ||
		op == ExtCmpBranch
}

// IsSwitch reports whether op is tableswitch or lookupswitch.
func (op Opcode) IsSwitch() bool { return op == Tableswitch || op == Lookupswitch }

// IsReturn reports whether op returns from the current method.
func (op Opcode) IsReturn() bool { return op >= Ireturn && op <= Return }

// EndsFlow reports whether control never falls through op to the next
// instruction (returns, athrow, goto, ret, switches).
func (op Opcode) EndsFlow() bool {
	return op.IsReturn() || op == Athrow || op == Goto || op == GotoW ||
		op == Ret || op.IsSwitch()
}

// IsInvoke reports whether op is a method invocation.
func (op Opcode) IsInvoke() bool {
	return op == Invokevirtual || op == Invokespecial || op == Invokestatic || op == Invokeinterface
}

// IsFieldAccess reports whether op reads or writes a field.
func (op Opcode) IsFieldAccess() bool {
	return op == Getstatic || op == Putstatic || op == Getfield || op == Putfield
}

// Primitive array type codes for the newarray instruction.
const (
	TBoolean = 4
	TChar    = 5
	TFloat   = 6
	TDouble  = 7
	TByte    = 8
	TShort   = 9
	TInt     = 10
	TLong    = 11
)
