package bytecode

import (
	"fmt"
	"strings"

	"dvm/internal/classfile"
)

// Disassemble renders raw bytecode as javap-style text, resolving
// constant-pool operands through pool when possible. It is the engine
// behind the dvmdis tool and is also convenient in test failure output.
func Disassemble(code []byte, pool *classfile.ConstPool) (string, error) {
	insts, err := Decode(code)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, in := range insts {
		fmt.Fprintf(&b, "%5d: %-16s", in.PC, widen(in))
		switch {
		case in.Op.IsBranch():
			fmt.Fprintf(&b, " %d", insts[in.Target].PC)
		case in.Op.IsSwitch():
			fmt.Fprintf(&b, " default:%d", insts[in.Switch.Default].PC)
			for k, t := range in.Switch.Targets {
				key := int32(k) + in.Switch.Low
				if in.Op == Lookupswitch {
					key = in.Switch.Keys[k]
				}
				fmt.Fprintf(&b, " %d:%d", key, insts[t].PC)
			}
		case in.Op.OperandKind() == KindCPU1 || in.Op.OperandKind() == KindCPU2 ||
			in.Op.OperandKind() == KindIfaceRef || in.Op.OperandKind() == KindMultiNew:
			fmt.Fprintf(&b, " #%d", in.Index)
			if pool != nil {
				if s := describeConst(pool, in.Index); s != "" {
					fmt.Fprintf(&b, " // %s", s)
				}
			}
			if in.Op == Multianewarray {
				fmt.Fprintf(&b, " dims=%d", in.Dims)
			}
		case in.Op.OperandKind() == KindS1 || in.Op.OperandKind() == KindS2:
			fmt.Fprintf(&b, " %d", in.Const)
		case in.Op.OperandKind() == KindLocal:
			fmt.Fprintf(&b, " %d", in.Index)
		case in.Op.OperandKind() == KindIinc:
			fmt.Fprintf(&b, " %d, %d", in.Index, in.Const)
		case in.Op.OperandKind() == KindAType:
			fmt.Fprintf(&b, " %s", atypeName(in.ArrayType))
		}
		b.WriteByte('\n')
		_ = i
	}
	return b.String(), nil
}

func widen(in Inst) string {
	if in.Wide {
		return "wide " + in.Op.Name()
	}
	return in.Op.Name()
}

func atypeName(t uint8) string {
	switch t {
	case TBoolean:
		return "boolean"
	case TChar:
		return "char"
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	case TByte:
		return "byte"
	case TShort:
		return "short"
	case TInt:
		return "int"
	case TLong:
		return "long"
	}
	return fmt.Sprintf("atype(%d)", t)
}

func describeConst(pool *classfile.ConstPool, idx uint16) string {
	c, err := pool.Entry(idx)
	if err != nil {
		return "<bad index>"
	}
	switch c.Tag {
	case classfile.TagClass:
		n, _ := pool.ClassName(idx)
		return "class " + n
	case classfile.TagString:
		s, _ := pool.StringValue(idx)
		return fmt.Sprintf("String %q", s)
	case classfile.TagFieldref, classfile.TagMethodref, classfile.TagInterfaceMethodref:
		r, err := pool.Ref(idx)
		if err != nil {
			return "<bad ref>"
		}
		return r.String()
	case classfile.TagInteger:
		return fmt.Sprintf("int %d", c.Int)
	case classfile.TagLong:
		return fmt.Sprintf("long %d", c.Long)
	case classfile.TagFloat:
		return fmt.Sprintf("float %g", c.Float)
	case classfile.TagDouble:
		return fmt.Sprintf("double %g", c.Double)
	}
	return ""
}
