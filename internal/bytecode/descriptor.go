package bytecode

import (
	"fmt"
	"strings"
)

// BaseKind classifies a field type descriptor.
type BaseKind uint8

// Descriptor base kinds.
const (
	KByte BaseKind = iota
	KChar
	KDouble
	KFloat
	KInt
	KLong
	KShort
	KBoolean
	KObject
	KArray
	KVoid
)

// Type is a parsed field/return type descriptor.
type Type struct {
	Kind      BaseKind
	ClassName string // for KObject: internal class name
	Elem      *Type  // for KArray: element type
}

// Slots returns the number of operand-stack / local-variable slots the
// type occupies: 2 for long and double, 0 for void, 1 otherwise.
func (t Type) Slots() int {
	switch t.Kind {
	case KLong, KDouble:
		return 2
	case KVoid:
		return 0
	}
	return 1
}

// IsRef reports whether the type is a reference type (object or array).
func (t Type) IsRef() bool { return t.Kind == KObject || t.Kind == KArray }

// String renders the type back into descriptor syntax.
func (t Type) String() string {
	switch t.Kind {
	case KByte:
		return "B"
	case KChar:
		return "C"
	case KDouble:
		return "D"
	case KFloat:
		return "F"
	case KInt:
		return "I"
	case KLong:
		return "J"
	case KShort:
		return "S"
	case KBoolean:
		return "Z"
	case KVoid:
		return "V"
	case KObject:
		return "L" + t.ClassName + ";"
	case KArray:
		return "[" + t.Elem.String()
	}
	return "?"
}

// MethodType is a parsed method descriptor.
type MethodType struct {
	Params []Type
	Ret    Type
}

// ParamSlots returns the total local-variable slots consumed by the
// parameters (not counting the receiver).
func (m MethodType) ParamSlots() int {
	n := 0
	for _, p := range m.Params {
		n += p.Slots()
	}
	return n
}

// String renders the method type back into descriptor syntax.
func (m MethodType) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for _, p := range m.Params {
		b.WriteString(p.String())
	}
	b.WriteByte(')')
	b.WriteString(m.Ret.String())
	return b.String()
}

// ParseType parses a single field type descriptor such as "I",
// "Ljava/lang/String;" or "[[D". Successful parses are memoized (the
// resolve path re-parses the same descriptors on every field access and
// invocation), so repeat calls allocate nothing; returned values are
// shared and must be treated as immutable.
func ParseType(desc string) (Type, error) {
	if t, ok := typeCache.get(desc); ok {
		descHits.Add(1)
		return t, nil
	}
	descMisses.Add(1)
	t, rest, err := parseType(desc, false)
	if err != nil {
		return Type{}, err
	}
	if rest != "" {
		return Type{}, fmt.Errorf("descriptor: trailing characters %q in %q", rest, desc)
	}
	typeCache.put(desc, t)
	return t, nil
}

func parseType(s string, allowVoid bool) (Type, string, error) {
	if s == "" {
		return Type{}, "", fmt.Errorf("descriptor: empty type")
	}
	switch s[0] {
	case 'B':
		return Type{Kind: KByte}, s[1:], nil
	case 'C':
		return Type{Kind: KChar}, s[1:], nil
	case 'D':
		return Type{Kind: KDouble}, s[1:], nil
	case 'F':
		return Type{Kind: KFloat}, s[1:], nil
	case 'I':
		return Type{Kind: KInt}, s[1:], nil
	case 'J':
		return Type{Kind: KLong}, s[1:], nil
	case 'S':
		return Type{Kind: KShort}, s[1:], nil
	case 'Z':
		return Type{Kind: KBoolean}, s[1:], nil
	case 'V':
		if !allowVoid {
			return Type{}, "", fmt.Errorf("descriptor: void only valid as return type")
		}
		return Type{Kind: KVoid}, s[1:], nil
	case 'L':
		end := strings.IndexByte(s, ';')
		if end <= 1 {
			return Type{}, "", fmt.Errorf("descriptor: unterminated class type in %q", s)
		}
		name := s[1:end]
		if name == "" || strings.ContainsAny(name, ".;[") {
			return Type{}, "", fmt.Errorf("descriptor: malformed class name %q", name)
		}
		return Type{Kind: KObject, ClassName: name}, s[end+1:], nil
	case '[':
		dims := 0
		for dims < len(s) && s[dims] == '[' {
			dims++
		}
		if dims > 255 {
			return Type{}, "", fmt.Errorf("descriptor: more than 255 array dimensions")
		}
		elem, rest, err := parseType(s[dims:], false)
		if err != nil {
			return Type{}, "", err
		}
		t := elem
		for i := 0; i < dims; i++ {
			e := t
			t = Type{Kind: KArray, Elem: &e}
		}
		return t, rest, nil
	}
	return Type{}, "", fmt.Errorf("descriptor: unknown type character %q", s[0])
}

// ParseMethodType parses a method descriptor such as
// "(ILjava/lang/String;)V". Successful parses are memoized like
// ParseType's; the returned MethodType (including its Params slice) is
// shared and must be treated as immutable.
func ParseMethodType(desc string) (MethodType, error) {
	if mt, ok := methodCache.get(desc); ok {
		descHits.Add(1)
		return mt, nil
	}
	descMisses.Add(1)
	return parseMethodTypeUncached(desc)
}

func parseMethodTypeUncached(desc string) (MethodType, error) {
	if desc == "" || desc[0] != '(' {
		return MethodType{}, fmt.Errorf("descriptor: method descriptor %q must start with '('", desc)
	}
	s := desc[1:]
	var mt MethodType
	for {
		if s == "" {
			return MethodType{}, fmt.Errorf("descriptor: unterminated parameter list in %q", desc)
		}
		if s[0] == ')' {
			s = s[1:]
			break
		}
		t, rest, err := parseType(s, false)
		if err != nil {
			return MethodType{}, fmt.Errorf("descriptor: %q: %v", desc, err)
		}
		mt.Params = append(mt.Params, t)
		if len(mt.Params) > 255 {
			return MethodType{}, fmt.Errorf("descriptor: more than 255 parameters in %q", desc)
		}
		s = rest
	}
	ret, rest, err := parseType(s, true)
	if err != nil {
		return MethodType{}, fmt.Errorf("descriptor: %q: %v", desc, err)
	}
	if rest != "" {
		return MethodType{}, fmt.Errorf("descriptor: trailing characters after return type in %q", desc)
	}
	mt.Ret = ret
	methodCache.put(desc, mt)
	return mt, nil
}
