package bytecode

import (
	"strings"
	"testing"

	"dvm/internal/classfile"
)

func TestParseTypeBasics(t *testing.T) {
	cases := []struct {
		in    string
		kind  BaseKind
		slots int
		str   string
	}{
		{"I", KInt, 1, "I"},
		{"J", KLong, 2, "J"},
		{"D", KDouble, 2, "D"},
		{"Z", KBoolean, 1, "Z"},
		{"Ljava/lang/String;", KObject, 1, "Ljava/lang/String;"},
		{"[I", KArray, 1, "[I"},
		{"[[Ljava/lang/Object;", KArray, 1, "[[Ljava/lang/Object;"},
	}
	for _, c := range cases {
		ty, err := ParseType(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if ty.Kind != c.kind || ty.Slots() != c.slots || ty.String() != c.str {
			t.Errorf("%q: got kind=%v slots=%d str=%q", c.in, ty.Kind, ty.Slots(), ty.String())
		}
	}
}

func TestParseTypeErrors(t *testing.T) {
	bad := []string{"", "V", "X", "L;", "Lfoo", "Ljava.lang.String;", "[", "II"}
	for _, in := range bad {
		if _, err := ParseType(in); err == nil {
			t.Errorf("ParseType(%q) succeeded", in)
		}
	}
}

func TestParseMethodType(t *testing.T) {
	mt, err := ParseMethodType("(IJLjava/lang/String;[D)V")
	if err != nil {
		t.Fatal(err)
	}
	if len(mt.Params) != 4 {
		t.Fatalf("params = %d", len(mt.Params))
	}
	if mt.ParamSlots() != 1+2+1+1 {
		t.Errorf("ParamSlots = %d", mt.ParamSlots())
	}
	if mt.Ret.Kind != KVoid || mt.Ret.Slots() != 0 {
		t.Errorf("ret = %+v", mt.Ret)
	}
	if mt.String() != "(IJLjava/lang/String;[D)V" {
		t.Errorf("String = %q", mt.String())
	}
}

func TestParseMethodTypeErrors(t *testing.T) {
	bad := []string{"", "I", "()", "(V)V", "()VV", "(I", "()Lfoo"}
	for _, in := range bad {
		if _, err := ParseMethodType(in); err == nil {
			t.Errorf("ParseMethodType(%q) succeeded", in)
		}
	}
}

func TestNestedArrayType(t *testing.T) {
	ty, err := ParseType("[[[I")
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	for ty.Kind == KArray {
		depth++
		ty = *ty.Elem
	}
	if depth != 3 || ty.Kind != KInt {
		t.Errorf("depth=%d elem=%v", depth, ty.Kind)
	}
}

func TestStackEffectFixed(t *testing.T) {
	cases := []struct {
		op        Opcode
		pop, push int
	}{
		{Iadd, 2, 1},
		{Ladd, 4, 2},
		{Dup, 1, 2},
		{Pop2, 2, 0},
		{AconstNull, 0, 1},
		{Lconst0, 0, 2},
		{Lcmp, 4, 1},
		{Iastore, 3, 0},
		{Return, 0, 0},
	}
	for _, c := range cases {
		pop, push, err := StackEffect(Inst{Op: c.op}, nil)
		if err != nil {
			t.Errorf("%s: %v", c.op.Name(), err)
			continue
		}
		if pop != c.pop || push != c.push {
			t.Errorf("%s: got %d/%d want %d/%d", c.op.Name(), pop, push, c.pop, c.push)
		}
	}
}

func TestStackEffectDescriptorDependent(t *testing.T) {
	pool := classfile.NewConstPool()
	fI := pool.AddFieldref("a/B", "x", "I")
	fJ := pool.AddFieldref("a/B", "y", "J")
	mv := pool.AddMethodref("a/B", "m", "(IJ)D")
	ms := pool.AddMethodref("a/B", "s", "(Ljava/lang/String;)V")

	check := func(in Inst, pop, push int) {
		t.Helper()
		gp, gq, err := StackEffect(in, pool)
		if err != nil {
			t.Fatalf("%s: %v", in.Op.Name(), err)
		}
		if gp != pop || gq != push {
			t.Errorf("%s: got %d/%d want %d/%d", in.Op.Name(), gp, gq, pop, push)
		}
	}
	check(Inst{Op: Getstatic, Index: fI}, 0, 1)
	check(Inst{Op: Getstatic, Index: fJ}, 0, 2)
	check(Inst{Op: Putfield, Index: fJ}, 3, 0)
	check(Inst{Op: Getfield, Index: fI}, 1, 1)
	check(Inst{Op: Invokevirtual, Index: mv}, 4, 2) // this + I + J(2) -> D(2)
	check(Inst{Op: Invokestatic, Index: ms}, 1, 0)
	check(Inst{Op: Multianewarray, Index: 1, Dims: 3}, 3, 1)
}

func TestMaxStackStraightLine(t *testing.T) {
	insts := []Inst{
		{Op: Iconst1, Target: -1},
		{Op: Iconst2, Target: -1},
		{Op: Iadd, Target: -1},
		{Op: Ireturn, Target: -1},
	}
	h, err := MaxStack(insts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Errorf("MaxStack = %d, want 2", h)
	}
}

func TestMaxStackBranchJoin(t *testing.T) {
	// if (x) push 1 else push 2; both paths meet at ireturn with height 1.
	insts := []Inst{
		{Op: Iload0, Target: -1},
		{Op: Ifeq, Target: 4},
		{Op: Iconst1, Target: -1},
		{Op: Goto, Target: 5},
		{Op: Iconst2, Target: -1},
		{Op: Ireturn, Target: -1},
	}
	h, err := MaxStack(insts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h != 1 {
		t.Errorf("MaxStack = %d, want 1", h)
	}
}

func TestMaxStackHandlerEntry(t *testing.T) {
	// Handler at index 1 starts with the thrown exception on the stack.
	insts := []Inst{
		{Op: Return, Target: -1},
		{Op: Athrow, Target: -1},
	}
	h, err := MaxStack(insts, nil, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if h != 1 {
		t.Errorf("MaxStack = %d, want 1", h)
	}
}

func TestMaxStackUnderflow(t *testing.T) {
	insts := []Inst{
		{Op: Iadd, Target: -1},
		{Op: Ireturn, Target: -1},
	}
	if _, err := MaxStack(insts, nil, nil); err == nil {
		t.Fatal("underflow not detected")
	}
}

func TestDisassembleSmoke(t *testing.T) {
	pool := classfile.NewConstPool()
	mref := pool.AddMethodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
	insts := []Inst{
		{Op: Ldc, Index: pool.AddString("hi"), Target: -1},
		{Op: Invokevirtual, Index: mref, Target: -1},
		{Op: Return, Target: -1},
	}
	code, _, err := Encode(insts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Disassemble(code, pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ldc", "invokevirtual", "println", "return"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
