package bytecode

import (
	"sync"
	"sync/atomic"
)

// The static service re-parses the same handful of descriptors on every
// resolve: phase-2/3 verification, MaxStack effects, and the rewriting
// services all call ParseType/ParseMethodType with strings drawn from a
// small working set (a proxy serving one organization sees the same
// library signatures over and over). A small memoization cache turns
// those re-parses into map hits with zero allocation.
//
// The cache is two-generation ("current" and "previous" maps): inserts
// go to current, and when current fills up it becomes previous and a
// fresh current starts. Lookups that hit previous are promoted. This
// bounds memory at roughly 2×descCacheLimit entries per kind while
// keeping the hot working set resident — hostile classfiles full of
// one-shot descriptors can only cycle the generations, never grow the
// maps without bound.
//
// Cached values are shared between callers, which is safe because Type
// and MethodType are treated as immutable everywhere: nothing in the
// repo mutates Params/Elem after parsing (descriptor strings round-trip
// through String() instead).

const descCacheLimit = 4096

type descCache[V any] struct {
	mu   sync.RWMutex
	cur  map[string]V
	prev map[string]V
}

func (c *descCache[V]) get(key string) (V, bool) {
	c.mu.RLock()
	if c.cur != nil {
		if v, ok := c.cur[key]; ok {
			c.mu.RUnlock()
			return v, true
		}
	}
	if c.prev != nil {
		if v, ok := c.prev[key]; ok {
			c.mu.RUnlock()
			// Promote so the entry survives the next rotation.
			c.put(key, v)
			return v, true
		}
	}
	c.mu.RUnlock()
	var zero V
	return zero, false
}

func (c *descCache[V]) put(key string, v V) {
	c.mu.Lock()
	if c.cur == nil {
		c.cur = make(map[string]V, 64)
	}
	if len(c.cur) >= descCacheLimit {
		c.prev = c.cur
		c.cur = make(map[string]V, 64)
	}
	c.cur[key] = v
	c.mu.Unlock()
}

func (c *descCache[V]) reset() {
	c.mu.Lock()
	c.cur, c.prev = nil, nil
	c.mu.Unlock()
}

var (
	typeCache   descCache[Type]
	methodCache descCache[MethodType]

	descHits   atomic.Int64
	descMisses atomic.Int64
)

// DescriptorCacheStats reports the cumulative hit/miss counts of the
// descriptor memoization cache, for telemetry gauges.
func DescriptorCacheStats() (hits, misses int64) {
	return descHits.Load(), descMisses.Load()
}

// ResetDescriptorCache empties the cache and zeroes its counters
// (tests and benchmarks).
func ResetDescriptorCache() {
	typeCache.reset()
	methodCache.reset()
	descHits.Store(0)
	descMisses.Store(0)
}
