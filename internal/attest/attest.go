// Package attest turns every cached rewrite into a quorum-attested
// artifact. The pipeline is byte-deterministic at any worker count, so
// N independent nodes transforming the same origin bytes must produce
// the same output digest; a divergence is evidence of a compromised,
// miscompiling, or bit-flipped node (multi-variant execution, dMVX).
//
// The package is deliberately a leaf: it defines the attestation
// record, the selection policy, the signing authority, and the per-peer
// suspicion ledger. The quorum *protocol* — dispatching origin bytes to
// ring successors, comparing votes, breaking ties — lives in
// internal/cluster, which owns membership and transport.
package attest

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"dvm/internal/signing"
)

// Header carries an encoded Attestation on hops that move bytes
// outside the batch envelope (client-facing class responses, disk-cache
// sidecars); batch entries carry it in their Att field.
const Header = "X-DVM-Attest"

// ErrUnattested marks a payload that arrived without an attestation on
// a hop where the receiver requires one.
var ErrUnattested = errors.New("attest: payload carries no attestation")

// ErrVerify marks an attestation whose digest or seal does not match
// the payload — corruption evidence, not a transport failure.
var ErrVerify = errors.New("attest: attestation verification failed")

// ErrNoQuorum marks a vote with no majority digest (e.g. three variants,
// three distinct outputs): nothing can be trusted, the flight fails.
var ErrNoQuorum = errors.New("attest: no digest reached a majority")

// ErrLocalDivergence marks the case where the local output lost the
// vote: this node is the minority. The flight must fail — a node must
// never serve or cache bytes its own fleet outvoted.
var ErrLocalDivergence = errors.New("attest: local output lost the quorum vote")

// Digest is the canonical artifact digest: hex SHA-256 of the
// transformed class bytes.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Attestation is the trust metadata stored alongside a cached artifact
// and carried on every hop that moves artifact bytes (peer fill,
// replication push, handoff). Receivers recompute the payload digest
// and check the seal before accepting the bytes.
type Attestation struct {
	Arch   string `json:"arch"`
	Class  string `json:"class"`
	// Digest is the hex SHA-256 of the transformed bytes.
	Digest string `json:"digest"`
	// Quorum is how many identical variant digests backed this artifact
	// (1 = local-only, today's trust model).
	Quorum int `json:"quorum"`
	// Voters are the nodes whose variants agreed, owner included.
	// Empty for single-node deployments.
	Voters []string `json:"voters,omitempty"`
	// Seal is the service MAC over the record; unforgeable without the
	// shared service key.
	Seal []byte `json:"seal"`
}

// record is the canonical byte form the seal covers. Voters are part of
// it: an attacker must not be able to rewrite the provenance.
func (a *Attestation) record() []byte {
	return []byte(fmt.Sprintf("dvm-attest\x00%s\x00%s\x00%s\x00%d\x00%s",
		a.Arch, a.Class, a.Digest, a.Quorum, strings.Join(a.Voters, ",")))
}

// Encode packs the attestation for an HTTP header (base64url of JSON).
func (a *Attestation) Encode() string {
	b, _ := json.Marshal(a)
	return base64.RawURLEncoding.EncodeToString(b)
}

// Decode unpacks a header value produced by Encode.
func Decode(s string) (*Attestation, error) {
	if s == "" {
		return nil, ErrUnattested
	}
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("attest: bad header encoding: %w", err)
	}
	var a Attestation
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("attest: bad header payload: %w", err)
	}
	return &a, nil
}

// Mode selects which keys get quorum attestation.
type Mode string

const (
	// ModeAlways attests every transform at the configured quorum.
	ModeAlways Mode = "always"
	// ModeSampled attests 1-in-SampleRate keys (deterministic by key
	// hash, so the same key is always either sampled or not).
	ModeSampled Mode = "sampled"
	// ModeHot attests only keys the caller's hot-set reports hot;
	// everything else runs at quorum 1.
	ModeHot Mode = "hot"
)

// Policy picks the quorum for each key.
type Policy struct {
	// Quorum is the total variant count, owner included. 1 disables
	// cross-checking and reproduces the pre-attestation trust model.
	Quorum int
	// Mode is the key selector; unselected keys run at quorum 1.
	Mode Mode
	// SampleRate is the 1-in-N rate for ModeSampled (default 16).
	SampleRate int
	// Hot reports whether a key is hot, for ModeHot. Nil means nothing
	// is hot.
	Hot func(arch, class string) bool
}

// QuorumFor returns the quorum this policy wants for one key.
func (p Policy) QuorumFor(arch, class string) int {
	if p.Quorum <= 1 {
		return 1
	}
	switch p.Mode {
	case ModeSampled:
		rate := p.SampleRate
		if rate <= 0 {
			rate = 16
		}
		h := fnv.New32a()
		h.Write([]byte(arch))
		h.Write([]byte{0})
		h.Write([]byte(class))
		if h.Sum32()%uint32(rate) != 0 {
			return 1
		}
	case ModeHot:
		if p.Hot == nil || !p.Hot(arch, class) {
			return 1
		}
	}
	return p.Quorum
}

// ParseMode validates a -attest-policy flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeAlways, ModeSampled, ModeHot:
		return Mode(s), nil
	case "":
		return ModeAlways, nil
	}
	return "", fmt.Errorf("attest: unknown policy mode %q (want always|sampled|hot)", s)
}

// DefaultQuarantineAfter is the divergence count that quarantines a
// peer when Config leaves it zero. Three: one divergence is already
// damning given a deterministic pipeline, but transient memory
// corruption exists; three independent minority votes do not happen by
// accident.
const DefaultQuarantineAfter = 3

// Suspicion is one peer's standing in the ledger, as surfaced in
// /healthz.
type Suspicion struct {
	Peer        string `json:"peer"`
	Divergences int    `json:"divergences"`
	Quarantined bool   `json:"quarantined"`
}

// Authority is one node's attestation engine: it signs artifacts that
// won their vote, verifies artifacts arriving on any hop, and keeps the
// per-peer suspicion ledger.
type Authority struct {
	signer          *signing.Signer
	policy          Policy
	quarantineAfter int

	mu     sync.Mutex
	ledger map[string]int // peer → divergence count
}

// Config assembles an Authority.
type Config struct {
	// Key is the shared service key artifacts are sealed with.
	Key []byte
	// Policy selects keys and quorum.
	Policy Policy
	// QuarantineAfter is the divergence count that quarantines a peer
	// (default DefaultQuarantineAfter).
	QuarantineAfter int
}

// New builds an Authority.
func New(cfg Config) *Authority {
	k := cfg.QuarantineAfter
	if k <= 0 {
		k = DefaultQuarantineAfter
	}
	return &Authority{
		signer:          signing.NewSigner(cfg.Key),
		policy:          cfg.Policy,
		quarantineAfter: k,
		ledger:          make(map[string]int),
	}
}

// QuorumFor returns the quorum the policy wants for one key, never
// consulting the ledger — quarantined peers shrink the candidate pool,
// not the goal.
func (a *Authority) QuorumFor(arch, class string) int {
	return a.policy.QuorumFor(arch, class)
}

// Attest seals an artifact that won its vote (or ran at quorum 1) and
// returns the finished record. Voters should include the local node.
func (a *Authority) Attest(arch, class string, data []byte, quorum int, voters []string) *Attestation {
	att := &Attestation{
		Arch:   arch,
		Class:  class,
		Digest: Digest(data),
		Quorum: quorum,
		Voters: append([]string(nil), voters...),
	}
	att.Seal = a.signer.SealBytes(att.record())
	return att
}

// Verify checks an attestation against the payload it claims to cover:
// the key must match, the recomputed digest must match, and the seal
// must verify under the service key. A nil attestation is ErrUnattested.
func (a *Authority) Verify(att *Attestation, arch, class string, data []byte) error {
	if att == nil {
		return ErrUnattested
	}
	if att.Arch != arch || att.Class != class {
		return fmt.Errorf("%w: attestation is for (%s, %s), payload is (%s, %s)",
			ErrVerify, att.Arch, att.Class, arch, class)
	}
	if att.Digest != Digest(data) {
		return fmt.Errorf("%w: payload digest mismatch", ErrVerify)
	}
	if !a.signer.VerifySeal(att.record(), att.Seal) {
		return fmt.Errorf("%w: bad seal", ErrVerify)
	}
	return nil
}

// Divergence records one minority vote by peer and reports whether the
// peer is now quarantined. The count is sticky: quarantine is an
// operator-visible state, not something refuted by later agreement —
// a node that lies once about artifact bytes cannot be trusted by
// counting the times it told the truth.
func (a *Authority) Divergence(peer string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ledger[peer]++
	return a.ledger[peer] >= a.quarantineAfter
}

// Quarantined reports whether peer has crossed the divergence
// threshold. Quarantined peers are skipped by peer fill and excluded
// from variant selection.
func (a *Authority) Quarantined(peer string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ledger[peer] >= a.quarantineAfter
}

// Divergences returns peer's current ledger count.
func (a *Authority) Divergences(peer string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ledger[peer]
}

// Suspicions snapshots the ledger, sorted by peer, for /healthz.
func (a *Authority) Suspicions() []Suspicion {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Suspicion, 0, len(a.ledger))
	for p, n := range a.ledger {
		out = append(out, Suspicion{
			Peer:        p,
			Divergences: n,
			Quarantined: n >= a.quarantineAfter,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Vote is one variant's answer in a quorum round.
type Vote struct {
	Voter  string
	Digest string
}

// Tally decides a quorum round: given the local digest and the variant
// votes, it returns the majority digest and the minority voters. The
// local node counts as one vote. A strict majority is required; with
// none, Majority is "" (caller re-runs at a higher quorum or fails).
func Tally(self, localDigest string, votes []Vote) (majority string, minority []string) {
	counts := map[string]int{localDigest: 1}
	for _, v := range votes {
		counts[v.Digest]++
	}
	total := 1 + len(votes)
	for d, n := range counts {
		if 2*n > total {
			majority = d
			break
		}
	}
	if majority == "" {
		return "", nil
	}
	if localDigest != majority {
		minority = append(minority, self)
	}
	for _, v := range votes {
		if v.Digest != majority {
			minority = append(minority, v.Voter)
		}
	}
	sort.Strings(minority)
	return majority, minority
}
