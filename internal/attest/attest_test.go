package attest

import (
	"errors"
	"strings"
	"testing"
)

func TestAttestVerifyRoundTrip(t *testing.T) {
	a := New(Config{Key: []byte("service-key")})
	data := []byte("transformed class bytes")
	att := a.Attest("sparc", "net/Applet001", data, 2, []string{"http://a", "http://b"})
	if att.Digest != Digest(data) {
		t.Fatalf("digest = %s, want %s", att.Digest, Digest(data))
	}
	if err := a.Verify(att, "sparc", "net/Applet001", data); err != nil {
		t.Fatalf("fresh attestation does not verify: %v", err)
	}
}

func TestVerifyRejectsTamperedPayload(t *testing.T) {
	a := New(Config{Key: []byte("k")})
	data := []byte("honest bytes")
	att := a.Attest("x86", "C", data, 1, nil)
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if err := a.Verify(att, "x86", "C", bad); !errors.Is(err, ErrVerify) {
		t.Fatalf("err = %v, want ErrVerify", err)
	}
}

func TestVerifyRejectsTamperedRecord(t *testing.T) {
	a := New(Config{Key: []byte("k")})
	data := []byte("honest bytes")
	att := a.Attest("x86", "C", data, 1, nil)

	forged := *att
	forged.Quorum = 3 // inflate claimed trust
	if err := a.Verify(&forged, "x86", "C", data); !errors.Is(err, ErrVerify) {
		t.Fatalf("quorum forgery: err = %v, want ErrVerify", err)
	}
	forged = *att
	forged.Voters = []string{"http://attacker"}
	if err := a.Verify(&forged, "x86", "C", data); !errors.Is(err, ErrVerify) {
		t.Fatalf("voter forgery: err = %v, want ErrVerify", err)
	}
}

func TestVerifyRejectsForeignKeyAndKeyMismatch(t *testing.T) {
	a := New(Config{Key: []byte("key-A")})
	b := New(Config{Key: []byte("key-B")})
	data := []byte("bytes")
	att := a.Attest("x86", "C", data, 1, nil)
	if err := b.Verify(att, "x86", "C", data); !errors.Is(err, ErrVerify) {
		t.Fatalf("foreign key: err = %v, want ErrVerify", err)
	}
	if err := a.Verify(att, "x86", "Other", data); !errors.Is(err, ErrVerify) {
		t.Fatalf("class mismatch: err = %v, want ErrVerify", err)
	}
	if err := a.Verify(nil, "x86", "C", data); !errors.Is(err, ErrUnattested) {
		t.Fatalf("nil attestation: err = %v, want ErrUnattested", err)
	}
}

func TestEncodeDecodeHeader(t *testing.T) {
	a := New(Config{Key: []byte("k")})
	att := a.Attest("sparc", "net/App", []byte("payload"), 2, []string{"http://a:1", "http://b:2"})
	got, err := Decode(att.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(got, "sparc", "net/App", []byte("payload")); err != nil {
		t.Fatalf("decoded attestation does not verify: %v", err)
	}
	if _, err := Decode(""); !errors.Is(err, ErrUnattested) {
		t.Fatalf("empty header: err = %v, want ErrUnattested", err)
	}
	if _, err := Decode("!!not base64!!"); err == nil {
		t.Fatal("garbage header decoded")
	}
}

func TestPolicyQuorumFor(t *testing.T) {
	always := Policy{Quorum: 3, Mode: ModeAlways}
	if q := always.QuorumFor("x86", "C"); q != 3 {
		t.Errorf("always: q = %d, want 3", q)
	}
	if q := (Policy{Quorum: 1, Mode: ModeAlways}).QuorumFor("x86", "C"); q != 1 {
		t.Errorf("quorum 1: q = %d, want 1", q)
	}

	// Sampled: deterministic per key, roughly 1-in-rate overall.
	sampled := Policy{Quorum: 2, Mode: ModeSampled, SampleRate: 4}
	hits := 0
	for i := 0; i < 400; i++ {
		class := "net/Applet" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
		q := sampled.QuorumFor("x86", class)
		if q != sampled.QuorumFor("x86", class) {
			t.Fatal("sampling is not deterministic per key")
		}
		if q == 2 {
			hits++
		}
	}
	if hits == 0 || hits == 400 {
		t.Errorf("sampled selected %d/400 keys, want a real subset", hits)
	}

	hot := Policy{Quorum: 2, Mode: ModeHot, Hot: func(arch, class string) bool { return class == "H" }}
	if q := hot.QuorumFor("x86", "H"); q != 2 {
		t.Errorf("hot key: q = %d, want 2", q)
	}
	if q := hot.QuorumFor("x86", "C"); q != 1 {
		t.Errorf("cold key: q = %d, want 1", q)
	}
}

func TestParseMode(t *testing.T) {
	for _, s := range []string{"always", "sampled", "hot", ""} {
		if _, err := ParseMode(s); err != nil {
			t.Errorf("ParseMode(%q): %v", s, err)
		}
	}
	if _, err := ParseMode("paranoid"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

func TestLedgerQuarantine(t *testing.T) {
	a := New(Config{Key: []byte("k"), QuarantineAfter: 3})
	p := "http://evil:1"
	if a.Quarantined(p) {
		t.Fatal("fresh peer already quarantined")
	}
	if a.Divergence(p) {
		t.Fatal("quarantined after 1 divergence, want threshold 3")
	}
	a.Divergence(p)
	if !a.Divergence(p) {
		t.Fatal("not quarantined after 3 divergences")
	}
	if !a.Quarantined(p) {
		t.Fatal("Quarantined disagrees with Divergence return")
	}
	sus := a.Suspicions()
	if len(sus) != 1 || sus[0].Peer != p || sus[0].Divergences != 3 || !sus[0].Quarantined {
		t.Fatalf("Suspicions = %+v", sus)
	}
}

func TestTally(t *testing.T) {
	self := "http://self"
	// Unanimous agreement.
	maj, min := Tally(self, "d1", []Vote{{"http://b", "d1"}, {"http://c", "d1"}})
	if maj != "d1" || len(min) != 0 {
		t.Fatalf("unanimous: maj=%q min=%v", maj, min)
	}
	// Variant is the minority.
	maj, min = Tally(self, "d1", []Vote{{"http://b", "d2"}, {"http://c", "d1"}})
	if maj != "d1" || len(min) != 1 || min[0] != "http://b" {
		t.Fatalf("variant minority: maj=%q min=%v", maj, min)
	}
	// Local node is the minority.
	maj, min = Tally(self, "dX", []Vote{{"http://b", "d1"}, {"http://c", "d1"}})
	if maj != "d1" || len(min) != 1 || min[0] != self {
		t.Fatalf("local minority: maj=%q min=%v", maj, min)
	}
	// 1-vs-1 split: no strict majority.
	maj, _ = Tally(self, "d1", []Vote{{"http://b", "d2"}})
	if maj != "" {
		t.Fatalf("split: maj=%q, want none", maj)
	}
	// Three-way disagreement: no majority either.
	maj, _ = Tally(self, "d1", []Vote{{"http://b", "d2"}, {"http://c", "d3"}})
	if maj != "" {
		t.Fatalf("three-way: maj=%q, want none", maj)
	}
	// Quorum 1: no votes, local wins trivially.
	maj, min = Tally(self, "d1", nil)
	if maj != "d1" || len(min) != 0 {
		t.Fatalf("quorum 1: maj=%q min=%v", maj, min)
	}
}
