package proxy

// Admission control (overload management): the paper's Figure 10 shows
// the proxy saturating; this file makes saturation survivable. Past the
// service rate, requests no longer pile up in an unbounded queue until
// their deadlines kill them all — they wait in a *bounded* queue with
// per-client fair scheduling, and everything beyond the bound is shed
// deliberately, cheapest victims first:
//
//  1. Fresh cache hits are never queued — a lookup the cache can answer
//     is served no matter how overloaded the miss path is.
//  2. Coalesced followers are never queued either: they ride an already
//     admitted flight for the cost of a channel wait, so they are shed
//     last (only when their whole flight is shed).
//  3. A request holding a stale cache entry is served the stale bytes
//     instead of queueing a refetch once the queue is under pressure —
//     freshness degrades before anyone is turned away.
//  4. Peer-fill work (a cluster sibling asking this node as the ring
//     owner) is rejected before local client work: the sibling has its
//     own origin fallback, a local client does not. The rejection is a
//     429 the sibling converts into backpressure, not a peer failure.
//  5. Cold misses — the requests that would pay an origin fetch plus a
//     pipeline rewrite — are rejected when the queue is full, when the
//     client exceeds its fair share of queue slots, or when the
//     request's own deadline cannot cover the expected wait plus the
//     expected service time (measured from the live origin-fetch and
//     pipeline histograms): work that will be thrown away anyway is
//     cheapest to refuse at the door.
//
// The controller is deliberately scoped to the miss path: it bounds the
// number of flights doing origin+pipeline work (Config.MaxConcurrent)
// and the number waiting for a slot (Config.MaxQueue). Cache hits and
// flight followers bypass it entirely.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"dvm/internal/telemetry"
)

// ErrOverloaded marks a request shed by admission control: the proxy is
// past saturation and chose to reject this request rather than queue it
// to death. The HTTP front end (and the cluster peer protocol) map it
// to 429 with a Retry-After hint. Like ErrNotFound it is a deliberate
// answer, not an outage: it never trips breakers and is not retried.
var ErrOverloaded = errors.New("proxy overloaded")

// Shed policies (Config.ShedPolicy).
const (
	// ShedPriority is the default: stale-serve before rejecting, shed
	// peer fills before local misses, per-client fair queue shares.
	ShedPriority = "priority"
	// ShedFIFO keeps the bounded queue and deadline checks but no
	// priority tricks: pure first-come-first-served with tail drop.
	ShedFIFO = "fifo"
	// ShedNone disables admission control entirely (the unbounded-queue
	// baseline the overload evaluation compares against).
	ShedNone = "none"
)

// peerClientPrefix marks requests arriving over the cluster peer
// protocol; internal/cluster sets X-DVM-Client to "peer:<self>".
const peerClientPrefix = "peer:"

// admitOutcome is what acquire decided for one flight.
type admitOutcome int

const (
	// admitOK: a service slot is held; the caller must release() when
	// the flight's work is done.
	admitOK admitOutcome = iota
	// admitStale: the request was shed onto its stale cache entry —
	// serve the stale bytes, do not fetch.
	admitStale
	// admitShed: rejected (the returned error wraps ErrOverloaded) or
	// abandoned (the ctx expired while queued).
	admitShed
)

// waiter is one queued flight.
type waiter struct {
	client  string
	ready   chan struct{} // closed on grant
	granted bool          // guarded by admission.mu
}

// admission is the bounded queue + shedding engine. A nil *admission
// admits everything (ShedNone / MaxQueue 0).
type admission struct {
	limit    int           // concurrent service slots
	maxQueue int           // waiters bound
	deadline time.Duration // max time in queue (0 = bounded only by ctx)
	priority bool          // ShedPriority vs ShedFIFO
	svcTime  func() time.Duration

	mu        sync.Mutex
	inService int
	queued    int
	queues    map[string][]*waiter // per-client FIFO
	order     []string             // round-robin rotation of clients with waiters
	inOrder   map[string]bool

	cAdmitted     *telemetry.Counter
	cShedFull     *telemetry.Counter
	cShedDeadline *telemetry.Counter
	cShedFair     *telemetry.Counter
	cShedPeer     *telemetry.Counter
	cShedStale    *telemetry.Counter
	hWait         *telemetry.Histogram
}

// newAdmission wires the controller and its metrics into the proxy's
// registry. svcTime returns the live expected service time (mean origin
// fetch + mean pipeline run); requests counts all proxy requests (for
// the SLO-burn gauge).
func newAdmission(cfg Config, reg *telemetry.Registry, svcTime func() time.Duration, requests *telemetry.Counter) *admission {
	a := &admission{
		limit:    cfg.MaxConcurrent,
		maxQueue: cfg.MaxQueue,
		deadline: cfg.QueueDeadline,
		priority: cfg.ShedPolicy == "" || cfg.ShedPolicy == ShedPriority,
		svcTime:  svcTime,
		queues:   make(map[string][]*waiter),
		inOrder:  make(map[string]bool),

		cAdmitted:     reg.Counter("admitted_total"),
		cShedFull:     reg.Counter("shed_queue_full_total"),
		cShedDeadline: reg.Counter("shed_deadline_total"),
		cShedFair:     reg.Counter("shed_fair_share_total"),
		cShedPeer:     reg.Counter("shed_backpressure_total"),
		cShedStale:    reg.Counter("shed_stale_served_total"),
		hWait:         reg.Histogram("admission_wait_seconds", nil),
	}
	reg.Gauge("queue_depth", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.queued)
	})
	reg.Gauge("queue_limit", func() float64 { return float64(a.maxQueue) })
	reg.Gauge("in_service", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.inService)
	})
	reg.Gauge("in_service_limit", func() float64 { return float64(a.limit) })
	// SLO burn: the fraction of all requests deliberately shed. 0 means
	// every request got real service; climbing toward 1 means the error
	// budget is burning and callers should back off or scale out.
	reg.Gauge("slo_burn_ratio", func() float64 {
		total := requests.Load()
		if total == 0 {
			return 0
		}
		return float64(a.shedTotal()) / float64(total)
	})
	return a
}

// shedTotal sums the rejection counters (not stale-serves: those
// requests were answered).
func (a *admission) shedTotal() int64 {
	return a.cShedFull.Load() + a.cShedDeadline.Load() + a.cShedFair.Load() + a.cShedPeer.Load()
}

// pressured reports whether the queue is at least half full (the
// stale-serve threshold). Nil-safe: no admission control, no pressure.
func (a *admission) pressured() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxQueue > 0 && a.queued*2 >= a.maxQueue
}

// acquire decides one flight's fate: a service slot (admitOK — caller
// must release()), a stale answer (admitStale), or a shed (admitShed
// with the reason). budget is the requester's remaining deadline budget
// (<0 = none). haveStale reports whether a stale cache entry could
// answer this request. Blocks (bounded by deadline and ctx) while the
// queue drains.
func (a *admission) acquire(ctx ctxDone, client string, haveStale bool, budget time.Duration) (admitOutcome, error) {
	if a == nil {
		return admitOK, nil
	}
	a.mu.Lock()
	if a.inService < a.limit && a.queued == 0 {
		a.inService++
		a.cAdmitted.Inc()
		a.mu.Unlock()
		return admitOK, nil
	}

	// The request must wait; decide whether it should be shed instead.
	full := a.queued >= a.maxQueue
	pressured := a.queued*2 >= a.maxQueue
	if a.priority && haveStale && pressured {
		// Serve the stale copy instead of queueing a refetch: under
		// pressure, freshness degrades before availability.
		a.cShedStale.Inc()
		a.mu.Unlock()
		return admitStale, nil
	}
	if full {
		a.cShedFull.Inc()
		a.mu.Unlock()
		return admitShed, fmt.Errorf("proxy: admission queue full (%d waiting): %w", a.maxQueue, ErrOverloaded)
	}
	if a.priority && strings.HasPrefix(client, peerClientPrefix) && a.queued*4 >= a.maxQueue*3 {
		// A cluster sibling asking us as the ring owner has its own
		// origin fallback; shed it before any local client.
		a.cShedPeer.Inc()
		a.mu.Unlock()
		return admitShed, fmt.Errorf("proxy: peer fill shed under load: %w", ErrOverloaded)
	}
	if a.priority {
		active := len(a.queues)
		if _, ok := a.queues[client]; !ok {
			active++
		}
		share := a.maxQueue / active
		if share < 1 {
			share = 1
		}
		if len(a.queues[client]) >= share {
			a.cShedFair.Inc()
			a.mu.Unlock()
			return admitShed, fmt.Errorf("proxy: client %q over its fair queue share (%d): %w", client, share, ErrOverloaded)
		}
	}
	// Deadline-aware drop: if the expected wait plus the expected
	// service time (live histogram means) cannot fit the requester's
	// remaining budget, the work would be thrown away — refuse it now.
	if svc := a.svcTime(); svc > 0 && budget >= 0 {
		expect := svc + svc*time.Duration(a.queued)/time.Duration(a.limit)
		if expect > budget {
			if a.priority && haveStale {
				a.cShedStale.Inc()
				a.mu.Unlock()
				return admitStale, nil
			}
			a.cShedDeadline.Inc()
			a.mu.Unlock()
			return admitShed, fmt.Errorf("proxy: expected wait %v exceeds request budget %v: %w", expect, budget, ErrOverloaded)
		}
	}

	w := &waiter{client: client, ready: make(chan struct{})}
	a.queues[client] = append(a.queues[client], w)
	a.queued++
	if !a.inOrder[client] {
		a.order = append(a.order, client)
		a.inOrder[client] = true
	}
	a.mu.Unlock()

	var timeout <-chan time.Time
	if a.deadline > 0 {
		t := time.NewTimer(a.deadline)
		defer t.Stop()
		timeout = t.C
	}
	wait := telemetry.StartTimer()
	select {
	case <-w.ready:
		a.hWait.Observe(wait.Elapsed())
		return admitOK, nil
	case <-ctx.Done():
	case <-timeout:
	}
	a.mu.Lock()
	if w.granted {
		// Raced with a grant: the slot is already ours, use it.
		a.mu.Unlock()
		a.hWait.Observe(wait.Elapsed())
		return admitOK, nil
	}
	a.removeLocked(w)
	a.mu.Unlock()
	a.hWait.Observe(wait.Elapsed())
	if err := ctx.Err(); err != nil {
		// Every waiter on this flight left; not a shed, an abandonment.
		return admitShed, err
	}
	if a.priority && haveStale {
		a.cShedStale.Inc()
		return admitStale, nil
	}
	a.cShedDeadline.Inc()
	return admitShed, fmt.Errorf("proxy: queued longer than %v: %w", a.deadline, ErrOverloaded)
}

// release returns a service slot and hands it to the next waiter in
// round-robin-over-clients order.
func (a *admission) release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.inService--
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked fills free service slots from the queue, one client at a
// time in rotation — a backlogged client cannot starve the others.
func (a *admission) grantLocked() {
	for a.inService < a.limit {
		w := a.popLocked()
		if w == nil {
			return
		}
		w.granted = true
		a.inService++
		a.cAdmitted.Inc()
		close(w.ready)
	}
}

// popLocked removes and returns the next waiter in client rotation.
func (a *admission) popLocked() *waiter {
	for len(a.order) > 0 {
		c := a.order[0]
		a.order = a.order[1:]
		q := a.queues[c]
		if len(q) == 0 {
			delete(a.queues, c)
			delete(a.inOrder, c)
			continue
		}
		w := q[0]
		if len(q) == 1 {
			delete(a.queues, c)
			delete(a.inOrder, c)
		} else {
			a.queues[c] = q[1:]
			a.order = append(a.order, c)
		}
		a.queued--
		return w
	}
	return nil
}

// removeLocked takes an abandoned waiter out of its client queue.
func (a *admission) removeLocked(w *waiter) {
	q := a.queues[w.client]
	for i, x := range q {
		if x == w {
			a.queues[w.client] = append(q[:i:i], q[i+1:]...)
			a.queued--
			break
		}
	}
	if len(a.queues[w.client]) == 0 {
		delete(a.queues, w.client)
	}
}

// ctxDone is the slice of context.Context acquire needs; it keeps the
// queue engine independently testable.
type ctxDone interface {
	Done() <-chan struct{}
	Err() error
}
