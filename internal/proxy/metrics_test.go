package proxy_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
)

// promValue extracts the value of one exact metric line from a
// Prometheus text exposition.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in /metrics output:\n%s", name, body)
	return 0
}

// TestMetricsRequestHistogramMatchesStats is the acceptance criterion
// tying the two telemetry surfaces together: the request-latency
// histogram on /metrics must have observed exactly Stats().Requests
// requests — every request goes through the root span, the root span is
// observed into the histogram, no path is missed or double-counted.
func TestMetricsRequestHistogramMatchesStats(t *testing.T) {
	p := proxy.New(origin(t), proxy.Config{
		Pipeline:     rewrite.NewPipeline(),
		CacheEnabled: true,
	})
	// A mix of misses, hits, and an error: all must be observed.
	for i := 0; i < 3; i++ {
		if _, err := p.Request(context.Background(), proxy.Lookup{Client: fmt.Sprintf("c%d", i), Arch: "dvm", Class: "app/Dep"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Missing"}); err == nil {
		t.Fatal("expected not-found error")
	}

	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	requests := p.Stats().Requests
	if requests != 4 {
		t.Fatalf("Stats().Requests = %d, want 4", requests)
	}
	if got := promValue(t, body, "dvm_proxy_request_seconds_count"); got != float64(requests) {
		t.Errorf("request_seconds_count = %v, want %d (histogram must observe every request)", got, requests)
	}
	if got := promValue(t, body, `dvm_proxy_request_seconds_bucket{le="+Inf"}`); got != float64(requests) {
		t.Errorf("+Inf bucket = %v, want %d (cumulative buckets must end at the count)", got, requests)
	}
	if got := promValue(t, body, "dvm_proxy_requests_total"); got != float64(requests) {
		t.Errorf("requests_total = %v, want %d", got, requests)
	}
	// The derived Stats snapshot and the histogram agree with the
	// in-process view too, not just over HTTP.
	if lat := p.RequestLatency(); lat.Count() != requests {
		t.Errorf("RequestLatency().Count() = %d, want %d", lat.Count(), requests)
	}

	// And /healthz is the same registry through the shared schema.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	hbody, err := io.ReadAll(hresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	h, err := telemetry.ParseHealth(hbody)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counters["requests_total"] != requests {
		t.Errorf("healthz requests_total = %d, want %d", h.Counters["requests_total"], requests)
	}
}
