package proxy

import (
	"context"
	"fmt"
	"sync/atomic"

	"dvm/internal/telemetry"
)

// ReplicaGroup addresses the centralization concern of §2: "Centralization
// can lead to a bottleneck in performance or result in a single point of
// failure within the network. These problems can be addressed by
// replicated or recoverable server implementations."
//
// The group fronts several independent proxies over the same origin.
// Static service components need no shared mutable state ("they do not
// inherently need to synchronize with clients or require exclusive
// access to shared state"), so replicas are plain copies; requests are
// spread round-robin and a replica failure falls over to the next.
type ReplicaGroup struct {
	replicas []*Proxy
	next     atomic.Uint64
}

// NewReplicaGroup builds n replicas over the origin, each with its own
// cache and pipeline built by mkConfig (called once per replica).
func NewReplicaGroup(origin Origin, n int, mkConfig func(i int) Config) (*ReplicaGroup, error) {
	if n <= 0 {
		return nil, fmt.Errorf("proxy: replica group needs at least 1 replica")
	}
	g := &ReplicaGroup{}
	for i := 0; i < n; i++ {
		g.replicas = append(g.replicas, New(origin, mkConfig(i)))
	}
	return g, nil
}

// NewReplicaGroupMixed builds one replica per origin (used when replicas
// sit on different hosts with different upstream connectivity).
func NewReplicaGroupMixed(origins []Origin, mkConfig func(i int) Config) (*ReplicaGroup, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("proxy: replica group needs at least 1 replica")
	}
	g := &ReplicaGroup{}
	for i, o := range origins {
		g.replicas = append(g.replicas, New(o, mkConfig(i)))
	}
	return g, nil
}

// Size returns the number of replicas.
func (g *ReplicaGroup) Size() int { return len(g.replicas) }

// Replica returns the i-th replica (diagnostics, per-replica stats).
func (g *ReplicaGroup) Replica(i int) *Proxy { return g.replicas[i] }

// Request serves a class from the next replica in round-robin order,
// failing over to the remaining replicas on error. The caller's ctx
// bounds the whole failover sweep; once it expires no further replicas
// are tried.
func (g *ReplicaGroup) Request(ctx context.Context, l Lookup) (Result, error) {
	start := int(g.next.Add(1)-1) % len(g.replicas)
	var firstErr error
	var firstRes Result
	for i := 0; i < len(g.replicas); i++ {
		if cerr := ctx.Err(); cerr != nil {
			if firstErr == nil {
				firstErr = cerr
			}
			break
		}
		p := g.replicas[(start+i)%len(g.replicas)]
		res, err := p.Request(ctx, l)
		if err == nil {
			return res, nil
		}
		if firstErr == nil {
			firstErr, firstRes = err, res
		}
	}
	return firstRes, firstErr
}

// RequestLatency merges the replicas' request-latency histograms into
// one group-wide snapshot.
func (g *ReplicaGroup) RequestLatency() telemetry.HistSnapshot {
	var s telemetry.HistSnapshot
	for _, p := range g.replicas {
		_ = s.Merge(p.RequestLatency())
	}
	return s
}

// Stats aggregates the replica counters.
func (g *ReplicaGroup) Stats() Stats {
	var out Stats
	for _, p := range g.replicas {
		s := p.Stats()
		out.Requests += s.Requests
		out.CacheHits += s.CacheHits
		out.Coalesced += s.Coalesced
		out.OriginFetches += s.OriginFetches
		out.FetchRetries += s.FetchRetries
		out.FetchErrors += s.FetchErrors
		out.StaleServed += s.StaleServed
		out.PeerFetches += s.PeerFetches
		out.PeerHits += s.PeerHits
		out.OwnerFetches += s.OwnerFetches
		out.Rejections += s.Rejections
		out.Shed += s.Shed
		out.ShedStale += s.ShedStale
		out.CoalescedFailures += s.CoalescedFailures
		out.FlightsAbandoned += s.FlightsAbandoned
		out.BytesIn += s.BytesIn
		out.BytesOut += s.BytesOut
		out.ProxyTime += s.ProxyTime
	}
	return out
}
