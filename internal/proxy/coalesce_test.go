package proxy_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

// countingOrigin counts real upstream fetches.
type countingOrigin struct {
	proxy.Origin
	fetches atomic.Int64
}

func (c *countingOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	c.fetches.Add(1)
	return c.Origin.Fetch(ctx, name)
}

// TestProxyCoalescesConcurrentMisses is the concurrency stress test:
// many goroutines requesting few classes through a slow origin must
// produce exactly one origin fetch and one pipeline run per class,
// while every request is counted and audited. Run under -race.
func TestProxyCoalescesConcurrentMisses(t *testing.T) {
	const goroutines = 48
	classes := []string{"app/Main", "app/Dep"}

	cnt := &countingOrigin{Origin: origin(t)}
	var pipelineRuns atomic.Int64
	pipe := rewrite.NewPipeline(
		verifier.Filter(),
		rewrite.FilterFunc{
			FilterName: "count",
			Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
				pipelineRuns.Add(1)
				return nil
			},
		},
	)
	slow := proxy.DelayedOrigin{
		Origin: cnt,
		// Long enough that every concurrent request for a class joins
		// the first one's flight.
		Delay: func(string) { time.Sleep(100 * time.Millisecond) },
	}

	var auditMu sync.Mutex
	var recs []proxy.RequestRecord
	p := proxy.New(slow, proxy.Config{
		Pipeline:     pipe,
		CacheEnabled: true,
		OnAudit: func(r proxy.RequestRecord) {
			auditMu.Lock()
			recs = append(recs, r)
			auditMu.Unlock()
		},
	})

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: classes[i%len(classes)]}); err != nil {
				t.Errorf("request: %v", err)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if got := cnt.fetches.Load(); got != int64(len(classes)) {
		t.Errorf("origin fetches = %d, want %d (one per class)", got, len(classes))
	}
	if got := pipelineRuns.Load(); got != int64(len(classes)) {
		t.Errorf("pipeline runs = %d, want %d (one per class)", got, len(classes))
	}
	st := p.Stats()
	if st.Requests != goroutines {
		t.Errorf("requests = %d, want %d", st.Requests, goroutines)
	}
	if st.OriginFetches != int64(len(classes)) {
		t.Errorf("stats.OriginFetches = %d, want %d", st.OriginFetches, len(classes))
	}
	// Every follower is a cache hit (coalesced or post-store); leaders
	// are the only misses.
	if st.CacheHits != goroutines-int64(len(classes)) {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, goroutines-len(classes))
	}
	if st.Coalesced == 0 {
		t.Error("no coalesced requests despite concurrent identical misses")
	}
	if st.Coalesced > st.CacheHits {
		t.Errorf("coalesced (%d) must be a subset of cache hits (%d)", st.Coalesced, st.CacheHits)
	}

	// All requests audited; exactly one non-hit record per class, and
	// coalesced records are marked as coalesced cache hits.
	auditMu.Lock()
	defer auditMu.Unlock()
	if len(recs) != goroutines {
		t.Fatalf("audit records = %d, want %d", len(recs), goroutines)
	}
	var misses, coalesced int64
	for _, r := range recs {
		if !r.CacheHit {
			misses++
		}
		if r.Coalesced {
			coalesced++
			if !r.CacheHit {
				t.Errorf("coalesced record not marked as cache hit: %+v", r)
			}
		}
	}
	if misses != int64(len(classes)) {
		t.Errorf("miss records = %d, want %d", misses, len(classes))
	}
	if coalesced != st.Coalesced {
		t.Errorf("coalesced records = %d, stats say %d", coalesced, st.Coalesced)
	}
}

// TestProxyCoalescingWithoutCache checks that in-flight dedup works even
// with the result cache disabled (the Figure 10 worst case): concurrent
// requests still share one fetch, but later requests refetch.
func TestProxyCoalescingWithoutCache(t *testing.T) {
	cnt := &countingOrigin{Origin: origin(t)}
	slow := proxy.DelayedOrigin{
		Origin: cnt,
		Delay:  func(string) { time.Sleep(50 * time.Millisecond) },
	}
	p := proxy.New(slow, proxy.Config{Pipeline: rewrite.NewPipeline(verifier.Filter())})

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
				t.Errorf("request: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := cnt.fetches.Load(); got != 1 {
		t.Errorf("concurrent fetches = %d, want 1", got)
	}
	// Sequential request after the flight completed: cache is off, so it
	// must hit the origin again.
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	if got := cnt.fetches.Load(); got != 2 {
		t.Errorf("post-flight fetches = %d, want 2", got)
	}
	if st := p.Stats(); st.Coalesced != 7 {
		t.Errorf("coalesced = %d, want 7", st.Coalesced)
	}
}

// TestProxyFetchErrorAudited: a failed origin fetch must still reach the
// administration console as an audit record.
func TestProxyFetchErrorAudited(t *testing.T) {
	var mu sync.Mutex
	var recs []proxy.RequestRecord
	p := proxy.New(proxy.MapOrigin{}, proxy.Config{
		Pipeline: rewrite.NewPipeline(verifier.Filter()),
		OnAudit: func(r proxy.RequestRecord) {
			mu.Lock()
			recs = append(recs, r)
			mu.Unlock()
		},
	})
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Missing"}); err == nil {
		t.Fatal("missing class did not error")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1 (failed fetches must be audited)", len(recs))
	}
	if recs[0].FetchError == "" {
		t.Errorf("record has no FetchError: %+v", recs[0])
	}
	if st := p.Stats(); st.FetchErrors != 1 {
		t.Errorf("stats.FetchErrors = %d, want 1", st.FetchErrors)
	}
}

// TestProxyCoalescedFetchErrorAudited: followers of a failed flight get
// their own audit records too.
func TestProxyCoalescedFetchErrorAudited(t *testing.T) {
	var mu sync.Mutex
	var recs []proxy.RequestRecord
	slow := proxy.DelayedOrigin{
		Origin: proxy.MapOrigin{}, // every fetch fails
		Delay:  func(string) { time.Sleep(50 * time.Millisecond) },
	}
	p := proxy.New(slow, proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter()),
		CacheEnabled: true,
		OnAudit: func(r proxy.RequestRecord) {
			mu.Lock()
			recs = append(recs, r)
			mu.Unlock()
		},
	})
	start := make(chan struct{})
	var wg sync.WaitGroup
	errors := atomic.Int64{}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Gone"}); err != nil {
				errors.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if errors.Load() != 4 {
		t.Errorf("errors = %d, want 4 (followers share the leader's failure)", errors.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recs) != 4 {
		t.Fatalf("audit records = %d, want 4", len(recs))
	}
	for _, r := range recs {
		if r.FetchError == "" {
			t.Errorf("record missing FetchError: %+v", r)
		}
	}
	// The origin failed once; one failed flight must not inflate
	// fetch_errors_total by the number of coalesced waiters. Followers
	// are counted on their own coalesced_failures_total instead.
	st := p.Stats()
	if st.FetchErrors != 1 {
		t.Errorf("stats.FetchErrors = %d, want 1 (one failed fetch, counted once)", st.FetchErrors)
	}
	if st.CoalescedFailures != 3 {
		t.Errorf("stats.CoalescedFailures = %d, want 3", st.CoalescedFailures)
	}
}
