package proxy

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"

	"dvm/internal/attest"
)

// The on-disk cache backs the in-memory cache with files, giving the
// proxy the paper's two properties: "accesses to classes that have been
// fetched by another DVM client are served from an on-disk cache on the
// proxy", and recoverability — a restarted proxy resumes serving
// previously transformed classes without re-fetching or re-rewriting
// them (§2's "replicated or recoverable server implementations").
//
// Entries are keyed by (arch, class) exactly like the memory cache; the
// file name is a digest of the key so arbitrary class names map to safe
// paths.

// diskCachePath returns the file path for a cache key.
func (p *Proxy) diskCachePath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(p.cfg.DiskCacheDir, hex.EncodeToString(sum[:16])+".class")
}

// diskCacheGet loads a cached transformation from disk, if present.
// fresh reports whether the file's age is within CacheTTL (always true
// when no TTL is configured); stale disk entries remain usable as the
// stale-if-error fallback. The attestation sidecar, if present, is
// loaded alongside so a restarted proxy keeps serving verifiable
// artifacts (a sidecar that fails to decode just yields a nil
// attestation — peers re-verify and fall back on their own).
func (p *Proxy) diskCacheGet(key string) (data []byte, att *attest.Attestation, fresh, ok bool) {
	if p.cfg.DiskCacheDir == "" {
		return nil, nil, false, false
	}
	path := p.diskCachePath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, false
	}
	if b, aerr := os.ReadFile(path + ".att"); aerr == nil {
		att, _ = attest.Decode(string(b))
	}
	fresh = true
	if p.cfg.CacheTTL > 0 {
		if fi, serr := os.Stat(path); serr == nil {
			fresh = p.now().Sub(fi.ModTime()) <= p.cfg.CacheTTL
		}
	}
	return data, att, fresh, true
}

// diskCachePut stores a transformation on disk (best effort: a full or
// read-only disk degrades to memory-only caching rather than failing the
// request). Each writer stages into its own unique temp file and then
// atomically renames it into place, so concurrent writers of the same
// key cannot interleave partial writes or rename each other's
// half-written staging file; readers always see a complete entry.
func (p *Proxy) diskCachePut(key string, data []byte, att *attest.Attestation) {
	if p.cfg.DiskCacheDir == "" {
		return
	}
	if err := os.MkdirAll(p.cfg.DiskCacheDir, 0o755); err != nil {
		return
	}
	path := p.diskCachePath(key)
	if !writeAtomic(p.cfg.DiskCacheDir, path, data) {
		return
	}
	// The attestation rides in a sidecar next to the class bytes, so an
	// attested artifact survives a proxy restart with its trust metadata
	// intact. Written after the data file: a crash between the two loses
	// the sidecar, never pairs a sidecar with stale bytes it can't cover.
	if att != nil {
		writeAtomic(p.cfg.DiskCacheDir, path+".att", []byte(att.Encode()))
	} else {
		os.Remove(path + ".att")
	}
}

// writeAtomic stages data in a unique temp file and renames it into
// place, so concurrent writers of the same key cannot interleave
// partial writes; readers always see a complete file. Reports success.
func writeAtomic(dir, path string, data []byte) bool {
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return false
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return false
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	return true
}
