package proxy

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
)

// The on-disk cache backs the in-memory cache with files, giving the
// proxy the paper's two properties: "accesses to classes that have been
// fetched by another DVM client are served from an on-disk cache on the
// proxy", and recoverability — a restarted proxy resumes serving
// previously transformed classes without re-fetching or re-rewriting
// them (§2's "replicated or recoverable server implementations").
//
// Entries are keyed by (arch, class) exactly like the memory cache; the
// file name is a digest of the key so arbitrary class names map to safe
// paths.

// diskCachePath returns the file path for a cache key.
func (p *Proxy) diskCachePath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(p.cfg.DiskCacheDir, hex.EncodeToString(sum[:16])+".class")
}

// diskCacheGet loads a cached transformation from disk, if present.
// fresh reports whether the file's age is within CacheTTL (always true
// when no TTL is configured); stale disk entries remain usable as the
// stale-if-error fallback.
func (p *Proxy) diskCacheGet(key string) (data []byte, fresh, ok bool) {
	if p.cfg.DiskCacheDir == "" {
		return nil, false, false
	}
	path := p.diskCachePath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, false
	}
	fresh = true
	if p.cfg.CacheTTL > 0 {
		if fi, serr := os.Stat(path); serr == nil {
			fresh = p.now().Sub(fi.ModTime()) <= p.cfg.CacheTTL
		}
	}
	return data, fresh, true
}

// diskCachePut stores a transformation on disk (best effort: a full or
// read-only disk degrades to memory-only caching rather than failing the
// request). Each writer stages into its own unique temp file and then
// atomically renames it into place, so concurrent writers of the same
// key cannot interleave partial writes or rename each other's
// half-written staging file; readers always see a complete entry.
func (p *Proxy) diskCachePut(key string, data []byte) {
	if p.cfg.DiskCacheDir == "" {
		return
	}
	if err := os.MkdirAll(p.cfg.DiskCacheDir, 0o755); err != nil {
		return
	}
	path := p.diskCachePath(key)
	tmp, err := os.CreateTemp(p.cfg.DiskCacheDir, filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
