package proxy_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/resilience"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
)

// Chaos suite: injected origin faults must degrade the proxy along its
// declared failure semantics — stale-if-error for availability, breaker
// trips surfaced in Stats and /healthz, and distinct HTTP statuses per
// failure class. Deterministic seeds; safe under -race.

// switchOrigin lets a test swap the upstream mid-run (healthy -> faulty).
type switchOrigin struct{ cur atomic.Pointer[proxy.Origin] }

func newSwitchOrigin(o proxy.Origin) *switchOrigin {
	s := &switchOrigin{}
	s.set(o)
	return s
}

func (s *switchOrigin) set(o proxy.Origin) { s.cur.Store(&o) }

func (s *switchOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	return (*s.cur.Load()).Fetch(ctx, name)
}

// failingOrigin fails every fetch with a transient (retryable) error.
type failingOrigin struct{ calls atomic.Int64 }

func (f *failingOrigin) Fetch(context.Context, string) ([]byte, error) {
	f.calls.Add(1)
	return nil, errors.New("origin unreachable")
}

// hangingOrigin blocks until the fetch context is cancelled.
type hangingOrigin struct{}

func (hangingOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestStaleIfErrorServesExpiredEntry(t *testing.T) {
	org := origin(t)
	sw := newSwitchOrigin(org)
	p := proxy.New(sw, proxy.Config{
		Pipeline:     rewrite.NewPipeline(),
		CacheEnabled: true,
		CacheTTL:     5 * time.Millisecond,
		RetrySeed:    1,
	})
	wantRes, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"})
	if err != nil {
		t.Fatalf("prime: %v", err)
	}

	sw.set(&failingOrigin{})
	time.Sleep(10 * time.Millisecond) // let the entry expire

	gotRes, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"})
	if err != nil {
		t.Fatalf("degraded request failed instead of serving stale: %v", err)
	}
	if string(gotRes.Data) != string(wantRes.Data) {
		t.Fatal("stale response differs from the cached transformation")
	}
	s := p.Stats()
	if s.StaleServed != 1 {
		t.Fatalf("StaleServed = %d, want 1", s.StaleServed)
	}

	// Not-found is a definitive answer, never a stale fallback.
	sw.set(proxy.MapOrigin{})
	time.Sleep(10 * time.Millisecond)
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); !errors.Is(err, proxy.ErrNotFound) {
		t.Fatalf("expired entry + not-found origin: err = %v, want ErrNotFound", err)
	}
}

// TestChaosThirtyPercentErrorOrigin is the acceptance scenario: after a
// warm cache, a 30%-error origin must not fail a single request —
// expired entries ride through on stale-if-error.
func TestChaosThirtyPercentErrorOrigin(t *testing.T) {
	org := origin(t)
	sw := newSwitchOrigin(org)
	p := proxy.New(sw, proxy.Config{
		Pipeline:         rewrite.NewPipeline(),
		CacheEnabled:     true,
		CacheTTL:         time.Millisecond,
		FetchRetries:     1,
		RetrySeed:        7,
		BreakerThreshold: -1, // isolate stale-if-error from breaker fail-fast
	})
	for _, class := range []string{"app/Main", "app/Dep"} {
		if _, err := p.Request(context.Background(), proxy.Lookup{Client: "warm", Arch: "dvm", Class: class}); err != nil {
			t.Fatalf("prime %s: %v", class, err)
		}
	}

	faulty := netsim.NewFaultyOrigin(org, netsim.FaultSpec{Seed: 42, ErrorRate: 0.3})
	sw.set(faulty)

	const clients, rounds = 4, 25
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				class := []string{"app/Main", "app/Dep"}[i%2]
				if _, err := p.Request(context.Background(), proxy.Lookup{Client: fmt.Sprintf("c%d", c), Arch: "dvm", Class: class}); err != nil {
					failures.Add(1)
				}
				time.Sleep(2 * time.Millisecond) // let entries expire between rounds
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed despite warm cache + stale-if-error", n)
	}
	s := p.Stats()
	if faulty.Stats().Errors > 0 && s.StaleServed == 0 {
		t.Fatalf("origin injected %d errors but StaleServed = 0", faulty.Stats().Errors)
	}
}

func TestProxyBreakerTripsAndRecovers(t *testing.T) {
	org := origin(t)
	failing := &failingOrigin{}
	sw := newSwitchOrigin(failing)
	p := proxy.New(sw, proxy.Config{
		Pipeline:         rewrite.NewPipeline(),
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
	})

	for i := 0; i < 2; i++ {
		if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err == nil {
			t.Fatal("request against dead origin succeeded")
		}
	}
	calls := failing.calls.Load()
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("breaker should be open: err = %v", err)
	}
	if failing.calls.Load() != calls {
		t.Fatal("open breaker still let a fetch through")
	}
	s := p.Stats()
	if s.Breaker.Trips < 1 || s.Breaker.State != "open" {
		t.Fatalf("breaker stats = %+v, want >=1 trip, open", s.Breaker)
	}

	// Heal the origin; after the cooldown a half-open probe closes it.
	sw.set(org)
	time.Sleep(35 * time.Millisecond)
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatalf("post-recovery request: %v", err)
	}
	if got := p.Stats().Breaker.State; got != "closed" {
		t.Fatalf("breaker state after recovery = %s, want closed", got)
	}
}

func TestHandlerErrorMapping(t *testing.T) {
	cases := []struct {
		name       string
		cfg        proxy.Config
		origin     proxy.Origin
		prep       func(p *proxy.Proxy) // drive the proxy into the target state
		wantStatus int
		wantRetry  bool
	}{
		{
			name:       "not found -> 404",
			origin:     proxy.MapOrigin{},
			wantStatus: http.StatusNotFound,
		},
		{
			name:       "origin deadline -> 504",
			origin:     hangingOrigin{},
			cfg:        proxy.Config{FetchTimeout: 10 * time.Millisecond},
			wantStatus: http.StatusGatewayTimeout,
		},
		{
			name:   "breaker open -> 503 with Retry-After",
			origin: &failingOrigin{},
			cfg:    proxy.Config{BreakerThreshold: 1, BreakerCooldown: time.Minute},
			prep: func(p *proxy.Proxy) {
				_, _ = p.Request(context.Background(), proxy.Lookup{Client: "prep", Arch: "dvm", Class: "app/Trip"})
			},
			wantStatus: http.StatusServiceUnavailable,
			wantRetry:  true,
		},
		{
			name:       "other upstream failure -> 502",
			origin:     &failingOrigin{},
			wantStatus: http.StatusBadGateway,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Pipeline = rewrite.NewPipeline()
			p := proxy.New(tc.origin, cfg)
			if tc.prep != nil {
				tc.prep(p)
			}
			ts := httptest.NewServer(p.Handler())
			defer ts.Close()

			req, _ := http.NewRequest(http.MethodGet, ts.URL+"/classes/app/Missing.class", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if tc.wantRetry && resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 missing Retry-After header")
			}
		})
	}
}

func TestHealthzExposesBreakerAndStale(t *testing.T) {
	p := proxy.New(&failingOrigin{}, proxy.Config{
		Pipeline:         rewrite.NewPipeline(),
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
	})
	_, _ = p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/X"})
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	h, err := telemetry.ParseHealth(body)
	if err != nil {
		t.Fatalf("healthz did not parse as the shared schema: %v\n%s", err, body)
	}
	if h.Service != "proxy" {
		t.Fatalf("healthz service = %q, want proxy", h.Service)
	}
	if h.Status != telemetry.StatusDegraded {
		t.Fatalf("healthz status = %q with the origin breaker open, want degraded", h.Status)
	}
	b, ok := h.Breakers["origin"]
	if !ok {
		t.Fatalf("healthz missing origin breaker:\n%s", body)
	}
	if b.State != "open" || b.Trips != 1 {
		t.Fatalf("origin breaker = %+v, want state=open trips=1", b)
	}
	if got := h.Counters["stale_served_total"]; got != 0 {
		t.Fatalf("stale_served_total = %d, want 0 (nothing cached to serve stale)", got)
	}
}

// TestCoalescedFollowerHonorsOwnContext: a follower with an expired
// context must detach from the flight without affecting the leader.
func TestCoalescedFollowerHonorsOwnContext(t *testing.T) {
	org := origin(t)
	release := make(chan struct{})
	slow := proxy.DelayedOrigin{Origin: org, Delay: func(string) { <-release }}
	p := proxy.New(slow, proxy.Config{Pipeline: rewrite.NewPipeline(), CacheEnabled: true})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := p.Request(context.Background(), proxy.Lookup{Client: "leader", Arch: "dvm", Class: "app/Dep"})
		leaderDone <- err
	}()
	// Wait for the leader to own the flight.
	deadline := time.Now().Add(time.Second)
	for p.Stats().OriginFetches == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := p.Request(ctx, proxy.Lookup{Client: "follower", Arch: "dvm", Class: "app/Dep"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after follower gave up: %v", err)
	}
}
