package proxy_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/compiler"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/verifier"
)

// origin builds a small two-class application origin.
func origin(t *testing.T) proxy.MapOrigin {
	t.Helper()
	mn := classgen.NewClass("app/Main", "java/lang/Object")
	run := mn.Method(classfile.AccPublic|classfile.AccStatic, "run", "()I")
	run.InvokeStatic("app/Dep", "val", "()I")
	run.IConst(2).IMul()
	run.IReturn()
	dep := classgen.NewClass("app/Dep", "java/lang/Object")
	val := dep.Method(classfile.AccPublic|classfile.AccStatic, "val", "()I")
	val.IConst(21).IReturn()

	mb, err := mn.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	db, err := dep.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return proxy.MapOrigin{"app/Main": mb, "app/Dep": db}
}

func fullPipeline(t *testing.T) *rewrite.Pipeline {
	t.Helper()
	pol, err := security.ParsePolicy([]byte(`
<policy>
  <domain id="apps"><grant permission="*" target="*"/></domain>
  <assign domain="apps" codebase="app/*"/>
  <operation permission="call.val" class="app/Dep" method="val"/>
</policy>`))
	if err != nil {
		t.Fatal(err)
	}
	return rewrite.NewPipeline(
		verifier.Filter(),
		security.Filter(pol),
		monitor.Filter(monitor.Config{Methods: true, Skip: monitor.SkipInitializers}),
		compiler.Filter(),
	)
}

func TestProxyEndToEndExecution(t *testing.T) {
	p := proxy.New(origin(t), proxy.Config{Pipeline: fullPipeline(t), CacheEnabled: true})
	vm, err := jvm.New(p.Loader("client-1", compiler.ArchDVM), &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	srv := security.NewServer(mustPolicy(t))
	vm.CheckAccess = security.NewManager(srv, "apps")
	coll := monitor.NewCollector()
	monitor.Attach(vm, coll, monitor.ClientInfo{User: "u", Arch: compiler.ArchDVM})

	v, thrown, err := vm.MainThread().InvokeByName("app/Main", "run", "()I", nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown != nil {
		t.Fatalf("thrown: %s", jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 42 {
		t.Errorf("run = %d, want 42", v.Int())
	}
	// All dynamic components fired.
	if vm.Stats.SecurityChecks == 0 {
		t.Error("no security checks executed")
	}
	if vm.Stats.AuditEvents == 0 {
		t.Error("no audit events")
	}
	st := p.Stats()
	if st.Requests < 2 || st.OriginFetches != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func mustPolicy(t *testing.T) *security.Policy {
	t.Helper()
	pol, err := security.ParsePolicy([]byte(`
<policy>
  <domain id="apps"><grant permission="*" target="*"/></domain>
  <assign domain="apps" codebase="app/*"/>
</policy>`))
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestProxyCacheSharedAcrossClients(t *testing.T) {
	p := proxy.New(origin(t), proxy.Config{Pipeline: rewrite.NewPipeline(verifier.Filter()), CacheEnabled: true})
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c1", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c2", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.CacheHits != 1 || st.OriginFetches != 1 {
		t.Errorf("hits=%d fetches=%d, want 1/1", st.CacheHits, st.OriginFetches)
	}
	// Different arch is a different cache entry (compiled output differs).
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c3", Arch: "x86-jdk", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().OriginFetches; got != 2 {
		t.Errorf("arch-keyed fetches = %d, want 2", got)
	}
}

func TestProxyCacheDisabled(t *testing.T) {
	p := proxy.New(origin(t), proxy.Config{Pipeline: rewrite.NewPipeline(verifier.Filter())})
	for i := 0; i < 3; i++ {
		if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.CacheHits != 0 || st.OriginFetches != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyCacheEviction(t *testing.T) {
	org := origin(t)
	budget := len(org["app/Main"]) // roughly one transformed class
	p := proxy.New(org, proxy.Config{
		Pipeline: rewrite.NewPipeline(), CacheEnabled: true, CacheBudget: budget,
	})
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Main"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	if entries := p.CacheEntries(); len(entries) >= 2 {
		t.Errorf("cache holds %d entries over budget: %v", len(entries), entries)
	}
}

func TestRejectedClassBecomesVerifyError(t *testing.T) {
	// A structurally valid but type-unsafe class (float where int
	// expected) must be replaced, not dropped.
	bad := classgen.NewClass("app/Bad", "java/lang/Object")
	m := bad.Method(classfile.AccPublic|classfile.AccStatic, "f", "()I")
	m.FConst(1)
	m.IReturn()
	data, err := bad.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	p := proxy.New(proxy.MapOrigin{"app/Bad": data},
		proxy.Config{Pipeline: rewrite.NewPipeline(verifier.Filter())})
	out, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Bad"})
	if err != nil {
		t.Fatalf("rejection must not be a transport error: %v", err)
	}
	if p.Stats().Rejections != 1 {
		t.Error("rejection not counted")
	}
	vm, err := jvm.New(jvm.MapLoader{"app/Bad": out.Data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	thrown, err := vm.RunMain("app/Bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil || thrown.Class.Name != "java/lang/VerifyError" {
		t.Errorf("thrown = %v, want VerifyError", jvm.DescribeThrowable(thrown))
	}
}

func TestHTTPFrontEnd(t *testing.T) {
	p := proxy.New(origin(t), proxy.Config{Pipeline: fullPipeline(t), CacheEnabled: true})
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	loader := proxy.HTTPLoader(ts.URL, "http-client", compiler.ArchDVM)
	vm, err := jvm.New(loader, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	srv := security.NewServer(mustPolicy(t))
	vm.CheckAccess = security.NewManager(srv, "apps")
	v, thrown, err := vm.MainThread().InvokeByName("app/Main", "run", "()I", nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown != nil {
		t.Fatalf("thrown: %s", jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 42 {
		t.Errorf("run over HTTP = %d", v.Int())
	}
	// Missing class: 404.
	if _, err := loader.Load("app/Nope"); err == nil {
		t.Error("missing class did not error")
	}
}

func TestProxyConcurrentRequests(t *testing.T) {
	p := proxy.New(origin(t), proxy.Config{Pipeline: rewrite.NewPipeline(verifier.Filter()), CacheEnabled: true})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "app/Main"
			if i%2 == 0 {
				name = "app/Dep"
			}
			if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: name}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := p.Stats().Requests; got != 64 {
		t.Errorf("requests = %d", got)
	}
}

func TestAuditTrail(t *testing.T) {
	var mu sync.Mutex
	var recs []proxy.RequestRecord
	p := proxy.New(origin(t), proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter()),
		CacheEnabled: true,
		OnAudit: func(r proxy.RequestRecord) {
			mu.Lock()
			recs = append(recs, r)
			mu.Unlock()
		},
	})
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "alice", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "bob", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("audit records = %d", len(recs))
	}
	if recs[0].Client != "alice" || recs[0].CacheHit || recs[1].Client != "bob" || !recs[1].CacheHit {
		t.Errorf("records = %+v", recs)
	}
	if recs[0].ProxyTime <= 0 {
		t.Error("proxy processing time not recorded")
	}
}
