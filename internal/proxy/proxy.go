// Package proxy implements the DVM's service proxy (paper §3): a
// transparent interceptor on the path between clients and code origins.
// It fetches requested classes, parses them once, runs the static
// service pipeline (verifier, security, auditor, optimizer, compiler)
// over the in-memory form, re-serializes, caches the result, and serves
// it — generating an audit trail for the remote administration console.
//
// "The proxy uses a cache to avoid rewriting code shared between
// clients"; rejected classes are replaced with a VerifyError-raising
// stand-in so failures surface through the normal Java exception
// mechanism on the client (§3.1).
//
// Concurrency: simultaneous misses for the same (arch, class) are
// coalesced — one leader performs the origin fetch and the pipeline run
// while followers wait and share the result. Followers still count as
// requests and receive their own audit records, marked as coalesced
// cache hits, so the administration console sees every client. The
// result cache is a byte-budgeted LRU: hits refresh recency, replacing
// a key updates the byte accounting, and an entry larger than the whole
// budget is skipped (logged) rather than allowed to wipe the cache and
// then fail to stay resident.
//
// Failure semantics: the origin hop carries a per-attempt deadline, a
// retry policy with backoff+jitter, and a circuit breaker
// (internal/resilience). When the origin is down the proxy *fails
// open with stale data*: a cached entry past its TTL is normally
// revalidated, but if the revalidating fetch fails the stale bytes are
// served (stale-if-error, counted in Stats.StaleServed) — an
// unreachable origin degrades freshness, never availability, matching
// the paper's split between trust-critical and auxiliary services.
//
// Clustering: when Config.PeerFill is set (internal/cluster), a cache
// miss is routed through it before the origin hop. The hook implements
// the sharded-fleet protocol: if another node owns the key on the
// consistent-hash ring, the transformed bytes are filled from that peer
// (one origin fetch and one pipeline run cluster-wide); if this node is
// the owner, or the peer hop fails, the miss falls through to the local
// origin path, so a peer outage degrades sharing, never availability.
package proxy

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvm/internal/resilience"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

// ErrNotFound marks an origin's definitive "no such class" answer.
// Unlike a timeout or connection error it is not evidence the origin is
// down: it is never retried, never trips the breaker, and never falls
// back to stale cache. The HTTP front end maps it to 404.
var ErrNotFound = errors.New("class not found")

// Origin supplies original (untransformed) class bytes, e.g. a web
// server on the open Internet. Fetch must honor ctx cancellation: a
// hung origin is abandoned when the per-hop deadline expires.
type Origin interface {
	Fetch(ctx context.Context, name string) ([]byte, error)
}

// MapOrigin serves classes from memory.
type MapOrigin map[string][]byte

// Fetch implements Origin.
func (m MapOrigin) Fetch(_ context.Context, name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("origin: %s: %w", name, ErrNotFound)
	}
	return b, nil
}

// DelayedOrigin wraps an origin with a per-fetch delay callback (the
// synthetic Internet).
type DelayedOrigin struct {
	Origin
	// Delay is invoked before each fetch with the class name; it may
	// sleep (scaled) or advance a simulated clock.
	Delay func(name string)
}

// Fetch implements Origin.
func (d DelayedOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	if d.Delay != nil {
		d.Delay(name)
	}
	return d.Origin.Fetch(ctx, name)
}

// RequestRecord is one entry of the proxy's audit trail.
type RequestRecord struct {
	Client    string
	Arch      string
	Class     string
	Bytes     int
	CacheHit  bool
	Coalesced bool // joined an in-flight fetch for the same class
	Rejected  bool // verification failure, replacement served
	// Stale marks a degraded response: the origin was unreachable and an
	// expired cache entry was served instead (stale-if-error).
	Stale bool
	// Peer is the cluster node that supplied the bytes when the miss was
	// filled over the peer protocol instead of from the origin.
	Peer string
	// PeerError records a failed peer-fill attempt that fell back to a
	// local origin fetch (the owner was down or unreachable).
	PeerError string
	// FetchError is set when the origin fetch (or replacement
	// construction) failed; the administration console must see failed
	// and degraded fetches too. With Stale set, bytes were still served.
	FetchError string
	Duration   time.Duration
	ProxyTime  time.Duration // time spent parsing/transforming (excludes origin fetch)
}

// Config parameterizes a proxy.
type Config struct {
	// Pipeline is the static service pipeline applied to every class.
	Pipeline *rewrite.Pipeline
	// CacheEnabled turns on the shared result cache.
	CacheEnabled bool
	// CacheBudget bounds cached bytes (0 = unlimited).
	CacheBudget int
	// CacheTTL is how long a cached entry is considered fresh
	// (0 = forever). An expired entry is revalidated by refetching; if
	// the origin is unreachable the stale bytes are served instead
	// (stale-if-error).
	CacheTTL time.Duration
	// DiskCacheDir, when set, backs the memory cache with files so a
	// restarted proxy recovers its transformed classes ("served from an
	// on-disk cache on the proxy", §4.1.2). Requires CacheEnabled.
	DiskCacheDir string

	// FetchTimeout bounds each origin fetch attempt (0 = no per-attempt
	// deadline; the caller's ctx still applies).
	FetchTimeout time.Duration
	// FetchRetries is the number of retries after the first failed fetch
	// attempt (0 = no retries). Not-found answers are never retried.
	FetchRetries int
	// RetryBase is the first backoff delay between retries (default 50ms).
	RetryBase time.Duration
	// RetrySeed makes the retry jitter deterministic (tests).
	RetrySeed uint64
	// BreakerThreshold is the number of consecutive origin failures that
	// trips the origin circuit breaker (0 = default 5, <0 = disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// half-open probe (default 5s).
	BreakerCooldown time.Duration

	// PeerFill, when set, is consulted on every cache miss before the
	// origin hop. A sharded cluster (internal/cluster) uses it to route
	// the miss to the ring node that owns the key and fill the cache from
	// that peer's already-transformed copy. See PeerResult for the three
	// possible outcomes; a nil hook (standalone proxy) always behaves as
	// PeerSelf.
	PeerFill func(ctx context.Context, arch, class string) PeerResult

	// MemoryBudget models the server's physical memory: when the bytes
	// held by in-flight requests exceed it, each request pays a paging
	// penalty proportional to the overshoot (reproduces the >250-client
	// degradation of Figure 10). 0 disables the model.
	MemoryBudget int64
	// PagingPenaltyPerMB is the added delay per MiB of overshoot
	// (default 2ms when MemoryBudget is set).
	PagingPenaltyPerMB time.Duration
	// OnAudit receives the audit trail (central administration console).
	OnAudit func(RequestRecord)
}

// PeerOutcome says how a PeerFill attempt resolved.
type PeerOutcome int

const (
	// PeerSelf: this node owns the key on the ring (or no routing
	// applies); fetch from the origin and run the pipeline locally.
	PeerSelf PeerOutcome = iota
	// PeerServed: the owning peer returned the transformed class; serve
	// it without touching the origin or the pipeline.
	PeerServed
	// PeerFailed: the owning peer was down or unreachable; degrade to a
	// local origin fetch so a peer outage never fails a request.
	PeerFailed
)

// PeerResult is the outcome of routing a cache miss through the cluster
// ring (Config.PeerFill).
type PeerResult struct {
	Outcome PeerOutcome
	// Data is the transformed class (Outcome == PeerServed).
	Data []byte
	// CacheLocal stores the peer's bytes in this node's own cache too:
	// the cluster replicates hot keys toward their readers so the ring
	// owner does not become a hotspot.
	CacheLocal bool
	// Rejected and Stale mirror the owner's response flags so audit
	// records and client semantics survive the peer hop.
	Rejected bool
	Stale    bool
	// Peer identifies the node that served (or failed to serve) the key.
	Peer string
	// Err is the peer hop failure (Outcome == PeerFailed).
	Err error
}

// RequestInfo describes how a request was served; the peer protocol
// forwards it as response headers so flags survive the extra hop.
type RequestInfo struct {
	CacheHit  bool
	Coalesced bool
	Rejected  bool
	Stale     bool
	Peer      string // cluster node that supplied the bytes, if any
}

// Stats is a snapshot of proxy counters.
type Stats struct {
	Requests      int64
	CacheHits     int64
	Coalesced     int64 // requests served by joining an in-flight fetch (subset of CacheHits)
	OriginFetches int64
	FetchRetries  int64 // retry attempts scheduled against the origin
	FetchErrors   int64
	StaleServed   int64 // degraded responses served from expired cache (stale-if-error)
	PeerFetches   int64 // misses routed to the owning cluster peer
	PeerHits      int64 // peer fetches that returned the transformed class
	OwnerFetches  int64 // origin fetches performed as the key's ring owner
	Rejections    int64
	BytesIn       int64
	BytesOut      int64
	ProxyTime     time.Duration
	// Breaker is the origin circuit-breaker snapshot.
	Breaker resilience.BreakerCounts
}

// cacheEntry is one LRU cache element.
type cacheEntry struct {
	key      string
	data     []byte
	storedAt time.Time
}

// flight is one in-progress origin fetch + pipeline run that concurrent
// requests for the same key share.
type flight struct {
	done     chan struct{} // closed when the leader finishes
	data     []byte
	rejected bool
	stale    bool
	peer     string // cluster node that filled the miss, if any
	err      error
}

// Proxy is the static-service host.
type Proxy struct {
	origin  Origin
	cfg     Config
	breaker *resilience.Breaker
	hop     resilience.Hop
	now     func() time.Time // clock hook for TTL tests

	mu         sync.Mutex
	cache      map[string]*list.Element // key: arch + "\x00" + class
	lru        *list.List               // front = most recently used
	cacheBytes int

	flightMu sync.Mutex
	flights  map[string]*flight

	inFlight atomic.Int64

	statRequests      atomic.Int64
	statCacheHits     atomic.Int64
	statCoalesced     atomic.Int64
	statOriginFetches atomic.Int64
	statFetchRetries  atomic.Int64
	statFetchErrors   atomic.Int64
	statStaleServed   atomic.Int64
	statPeerFetches   atomic.Int64
	statPeerHits      atomic.Int64
	statOwnerFetches  atomic.Int64
	statRejections    atomic.Int64
	statBytesIn       atomic.Int64
	statBytesOut      atomic.Int64
	statProxyTime     atomic.Int64 // nanoseconds
}

// connectionMemory is the modeled per-connection server memory (socket
// buffers, HTTP state, worker stack) held for an in-flight request.
const connectionMemory = 256 << 10

// New creates a proxy in front of origin.
func New(origin Origin, cfg Config) *Proxy {
	if cfg.Pipeline == nil {
		cfg.Pipeline = rewrite.NewPipeline()
	}
	if cfg.MemoryBudget > 0 && cfg.PagingPenaltyPerMB == 0 {
		cfg.PagingPenaltyPerMB = 2 * time.Millisecond
	}
	p := &Proxy{
		origin:  origin,
		cfg:     cfg,
		now:     time.Now,
		cache:   make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
	p.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Threshold: cfg.BreakerThreshold,
		Cooldown:  cfg.BreakerCooldown,
	})
	p.hop = resilience.Hop{
		Timeout: cfg.FetchTimeout,
		Retry: resilience.RetryPolicy{
			Attempts: 1 + cfg.FetchRetries,
			Base:     cfg.RetryBase,
			Seed:     cfg.RetrySeed,
		},
		Breaker: p.breaker,
		OnRetry: func(int, error) { p.statFetchRetries.Add(1) },
	}
	return p
}

// Breaker exposes the origin circuit breaker (diagnostics, shared
// upstream wiring).
func (p *Proxy) Breaker() *resilience.Breaker { return p.breaker }

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:      p.statRequests.Load(),
		CacheHits:     p.statCacheHits.Load(),
		Coalesced:     p.statCoalesced.Load(),
		OriginFetches: p.statOriginFetches.Load(),
		FetchRetries:  p.statFetchRetries.Load(),
		FetchErrors:   p.statFetchErrors.Load(),
		StaleServed:   p.statStaleServed.Load(),
		PeerFetches:   p.statPeerFetches.Load(),
		PeerHits:      p.statPeerHits.Load(),
		OwnerFetches:  p.statOwnerFetches.Load(),
		Rejections:    p.statRejections.Load(),
		BytesIn:       p.statBytesIn.Load(),
		BytesOut:      p.statBytesOut.Load(),
		ProxyTime:     time.Duration(p.statProxyTime.Load()),
		Breaker:       p.breaker.Counts(),
	}
}

// CacheEntries returns the cached keys, sorted (diagnostics).
func (p *Proxy) CacheEntries() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.cache))
	for k := range p.cache {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Request serves one class to one client: the full intercept path. The
// ctx bounds the whole request (client disconnect, caller deadline);
// per-attempt origin deadlines come from Config.FetchTimeout.
func (p *Proxy) Request(ctx context.Context, client, arch, class string) ([]byte, error) {
	data, _, err := p.RequestDetail(ctx, client, arch, class)
	return data, err
}

// RequestDetail is Request plus a description of how the response was
// produced; the cluster peer protocol needs the flags to forward them
// across the extra hop.
func (p *Proxy) RequestDetail(ctx context.Context, client, arch, class string) ([]byte, RequestInfo, error) {
	start := time.Now()
	p.statRequests.Add(1)
	key := arch + "\x00" + class

	var staleData []byte // expired cache entry kept for stale-if-error
	var haveStale bool
	if p.cfg.CacheEnabled {
		data, fresh, ok := p.memGet(key)
		if !ok {
			// Second level: the on-disk cache (survives proxy restarts).
			// Only a fresh disk entry is promoted to memory; a stale one
			// is kept solely as the stale-if-error fallback so it still
			// gets revalidated on the next request.
			if d, diskFresh, hit := p.diskCacheGet(key); hit {
				data, fresh, ok = d, diskFresh, true
				if diskFresh {
					p.storeMem(key, d)
				}
			}
		}
		if ok && fresh {
			p.statCacheHits.Add(1)
			p.statBytesOut.Add(int64(len(data)))
			p.audit(RequestRecord{
				Client: client, Arch: arch, Class: class, Bytes: len(data),
				CacheHit: true, Duration: time.Since(start),
			})
			return data, RequestInfo{CacheHit: true}, nil
		}
		if ok {
			staleData, haveStale = data, true
		}
	}

	// Coalesce concurrent misses: if another request is already fetching
	// and transforming this key, join it instead of duplicating the
	// origin fetch and the pipeline run.
	p.flightMu.Lock()
	if f, ok := p.flights[key]; ok {
		p.flightMu.Unlock()
		return p.awaitFlight(ctx, f, client, arch, class, start)
	}
	f := &flight{done: make(chan struct{})}
	p.flights[key] = f
	p.flightMu.Unlock()

	data, info, err := p.lead(ctx, f, key, client, arch, class, staleData, haveStale, start)
	// Publish the outcome only after the cache holds the result (success
	// path inside lead), so new requests find either the flight or the
	// cached entry; then wake the followers.
	p.flightMu.Lock()
	delete(p.flights, key)
	p.flightMu.Unlock()
	close(f.done)
	return data, info, err
}

// awaitFlight is the follower path: hold connection memory (the client
// is a live connection even while it waits), share the leader's result,
// and emit this client's own audit record marked as a coalesced hit.
func (p *Proxy) awaitFlight(ctx context.Context, f *flight, client, arch, class string, start time.Time) ([]byte, RequestInfo, error) {
	p.inFlight.Add(connectionMemory)
	defer p.inFlight.Add(-connectionMemory)
	select {
	case <-f.done:
	case <-ctx.Done():
		// This client gave up (disconnect or deadline); the leader's
		// fetch continues for the others.
		err := ctx.Err()
		p.audit(RequestRecord{
			Client: client, Arch: arch, Class: class,
			Coalesced: true, FetchError: err.Error(), Duration: time.Since(start),
		})
		return nil, RequestInfo{Coalesced: true}, err
	}
	if f.err != nil {
		p.statFetchErrors.Add(1)
		p.audit(RequestRecord{
			Client: client, Arch: arch, Class: class,
			Coalesced: true, FetchError: f.err.Error(), Duration: time.Since(start),
		})
		return nil, RequestInfo{Coalesced: true}, f.err
	}
	p.statCacheHits.Add(1)
	p.statCoalesced.Add(1)
	if f.stale {
		p.statStaleServed.Add(1)
	}
	p.statBytesOut.Add(int64(len(f.data)))
	info := RequestInfo{CacheHit: true, Coalesced: true, Rejected: f.rejected, Stale: f.stale, Peer: f.peer}
	p.audit(RequestRecord{
		Client: client, Arch: arch, Class: class, Bytes: len(f.data),
		CacheHit: true, Coalesced: true, Rejected: f.rejected, Stale: f.stale,
		Peer: f.peer, Duration: time.Since(start),
	})
	return f.data, info, nil
}

// lead is the miss path run by exactly one request per key: peer fill
// (sharded cluster), origin fetch (deadline + retry + breaker), memory
// model, pipeline, caching, auditing. The result is left in f for the
// followers. When the origin is unreachable and a stale cache entry
// exists, it is served instead (stale-if-error).
func (p *Proxy) lead(ctx context.Context, f *flight, key, client, arch, class string, staleData []byte, haveStale bool, start time.Time) ([]byte, RequestInfo, error) {
	// Memory model: an in-flight request holds connection state and
	// transfer buffers for its whole lifetime (including the upstream
	// fetch), plus the parsed class afterwards.
	held := int64(connectionMemory)
	p.inFlight.Add(held)
	defer func() { p.inFlight.Add(-held) }()

	// Sharded cluster: ask the key's ring owner before the origin. A
	// peer-served miss skips both the origin fetch and the pipeline run —
	// the owner already paid for them once on behalf of the whole fleet.
	var peerErr string
	if p.cfg.PeerFill != nil {
		switch res := p.cfg.PeerFill(ctx, arch, class); res.Outcome {
		case PeerServed:
			p.statPeerFetches.Add(1)
			p.statPeerHits.Add(1)
			if res.Stale {
				p.statStaleServed.Add(1)
			}
			if p.cfg.CacheEnabled && res.CacheLocal {
				// Hot key: replicate the owner's copy into the local LRU
				// (and disk cache) so this node stops round-tripping for it.
				p.storeMem(key, res.Data)
				p.diskCachePut(key, res.Data)
			}
			f.data, f.rejected, f.stale, f.peer = res.Data, res.Rejected, res.Stale, res.Peer
			p.statBytesOut.Add(int64(len(res.Data)))
			info := RequestInfo{Rejected: res.Rejected, Stale: res.Stale, Peer: res.Peer}
			p.audit(RequestRecord{
				Client: client, Arch: arch, Class: class, Bytes: len(res.Data),
				Rejected: res.Rejected, Stale: res.Stale, Peer: res.Peer,
				Duration: time.Since(start),
			})
			return res.Data, info, nil
		case PeerFailed:
			// Owner down or unreachable: degrade to a local origin fetch.
			// Sharing is lost for this key, availability is not.
			p.statPeerFetches.Add(1)
			if res.Err != nil {
				peerErr = res.Err.Error()
			}
		default: // PeerSelf: this node owns the key
			p.statOwnerFetches.Add(1)
		}
	}

	p.statOriginFetches.Add(1)
	var raw []byte
	err := p.hop.Do(ctx, func(actx context.Context) error {
		b, ferr := p.origin.Fetch(actx, class)
		if ferr != nil {
			if errors.Is(ferr, ErrNotFound) {
				// A definitive answer, not an outage: no retry, no
				// breaker penalty, no stale fallback.
				return resilience.Permanent(ferr)
			}
			return ferr
		}
		raw = b
		return nil
	})
	if err != nil {
		if haveStale && !errors.Is(err, ErrNotFound) {
			// Degraded mode: the origin is down but we still hold the
			// previous transformation. Freshness degrades; availability
			// does not.
			p.statStaleServed.Add(1)
			p.statBytesOut.Add(int64(len(staleData)))
			f.data, f.stale = staleData, true
			p.touchStale(key)
			p.audit(RequestRecord{
				Client: client, Arch: arch, Class: class, Bytes: len(staleData),
				CacheHit: true, Stale: true, FetchError: err.Error(),
				PeerError: peerErr, Duration: time.Since(start),
			})
			return staleData, RequestInfo{CacheHit: true, Stale: true}, nil
		}
		f.err = err
		p.statFetchErrors.Add(1)
		p.audit(RequestRecord{
			Client: client, Arch: arch, Class: class,
			FetchError: err.Error(), PeerError: peerErr, Duration: time.Since(start),
		})
		return nil, RequestInfo{}, err
	}
	p.statBytesIn.Add(int64(len(raw)))
	extra := int64(len(raw)) * 4 // parsed form is a few times the wire size
	held += extra
	total := p.inFlight.Add(extra)
	if p.cfg.MemoryBudget > 0 && total > p.cfg.MemoryBudget {
		overMB := float64(total-p.cfg.MemoryBudget) / (1 << 20)
		penalty := time.Duration(overMB * float64(p.cfg.PagingPenaltyPerMB))
		if penalty > 0 {
			time.Sleep(penalty)
		}
	}

	tstart := time.Now()
	rctx := rewrite.NewContext()
	rctx.ClientID = client
	rctx.ClientArch = arch
	out, perr := p.cfg.Pipeline.Process(raw, rctx)
	rejected := false
	if perr != nil {
		// A verification (or other service) rejection becomes a
		// replacement class that raises VerifyError on the client.
		rejected = true
		p.statRejections.Add(1)
		repl, rerr := verifier.MakeErrorClass(class, perr.Error())
		if rerr != nil {
			err := fmt.Errorf("proxy: building replacement for %s: %v (original error: %w)", class, rerr, perr)
			f.err = err
			p.statFetchErrors.Add(1)
			p.audit(RequestRecord{
				Client: client, Arch: arch, Class: class, Rejected: true,
				FetchError: err.Error(), Duration: time.Since(start),
			})
			return nil, RequestInfo{}, err
		}
		out = repl
	}
	proxyTime := time.Since(tstart)
	p.statProxyTime.Add(int64(proxyTime))

	if p.cfg.CacheEnabled {
		p.storeMem(key, out)
		p.diskCachePut(key, out)
	}
	f.data, f.rejected = out, rejected

	p.statBytesOut.Add(int64(len(out)))
	p.audit(RequestRecord{
		Client: client, Arch: arch, Class: class, Bytes: len(out),
		Rejected: rejected, PeerError: peerErr,
		Duration: time.Since(start), ProxyTime: proxyTime,
	})
	return out, RequestInfo{Rejected: rejected}, nil
}

// memGet looks up the in-memory cache; a hit refreshes LRU recency.
// fresh reports whether the entry is within CacheTTL (always true when
// no TTL is configured).
func (p *Proxy) memGet(key string) (data []byte, fresh, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.cache[key]
	if !ok {
		return nil, false, false
	}
	p.lru.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	fresh = p.cfg.CacheTTL <= 0 || p.now().Sub(ent.storedAt) <= p.cfg.CacheTTL
	return ent.data, fresh, true
}

// touchStale refreshes the timestamp on a stale entry that was just
// served via stale-if-error, so a down origin is re-probed once per TTL
// window per key instead of on every request (the breaker bounds the
// damage regardless; this bounds audit noise).
func (p *Proxy) touchStale(key string) {
	if p.cfg.CacheTTL <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.cache[key]; ok {
		el.Value.(*cacheEntry).storedAt = p.now()
	}
}

// storeMem inserts or replaces an entry in the in-memory cache with LRU
// eviction. A replacement (e.g. a fresher transform after a pipeline
// config change, or a disk/memory disagreement) overwrites the stale
// bytes and fixes the byte accounting.
func (p *Proxy) storeMem(key string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.CacheBudget > 0 && len(data) > p.cfg.CacheBudget {
		// Caching this would evict everything and the entry still could
		// not stay resident; serve it uncached instead.
		log.Printf("proxy: cache: entry %q (%d bytes) exceeds cache budget (%d); not cached",
			keyClass(key), len(data), p.cfg.CacheBudget)
		return
	}
	if el, ok := p.cache[key]; ok {
		ent := el.Value.(*cacheEntry)
		p.cacheBytes += len(data) - len(ent.data)
		ent.data = data
		ent.storedAt = p.now()
		p.lru.MoveToFront(el)
	} else {
		p.cache[key] = p.lru.PushFront(&cacheEntry{key: key, data: data, storedAt: p.now()})
		p.cacheBytes += len(data)
	}
	for p.cfg.CacheBudget > 0 && p.cacheBytes > p.cfg.CacheBudget {
		back := p.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		p.lru.Remove(back)
		delete(p.cache, ent.key)
		p.cacheBytes -= len(ent.data)
	}
}

// keyClass extracts the class name from an arch\x00class cache key for
// human-readable logs.
func keyClass(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[i+1:]
		}
	}
	return key
}

func (p *Proxy) audit(r RequestRecord) {
	if p.cfg.OnAudit != nil {
		p.cfg.OnAudit(r)
	}
}
