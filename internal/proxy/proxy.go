// Package proxy implements the DVM's service proxy (paper §3): a
// transparent interceptor on the path between clients and code origins.
// It fetches requested classes, parses them once, runs the static
// service pipeline (verifier, security, auditor, optimizer, compiler)
// over the in-memory form, re-serializes, caches the result, and serves
// it — generating an audit trail for the remote administration console.
//
// "The proxy uses a cache to avoid rewriting code shared between
// clients"; rejected classes are replaced with a VerifyError-raising
// stand-in so failures surface through the normal Java exception
// mechanism on the client (§3.1).
package proxy

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

// Origin supplies original (untransformed) class bytes, e.g. a web
// server on the open Internet.
type Origin interface {
	Fetch(name string) ([]byte, error)
}

// MapOrigin serves classes from memory.
type MapOrigin map[string][]byte

// Fetch implements Origin.
func (m MapOrigin) Fetch(name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("origin: %s not found", name)
	}
	return b, nil
}

// DelayedOrigin wraps an origin with a per-fetch delay callback (the
// synthetic Internet).
type DelayedOrigin struct {
	Origin
	// Delay is invoked before each fetch with the class name; it may
	// sleep (scaled) or advance a simulated clock.
	Delay func(name string)
}

// Fetch implements Origin.
func (d DelayedOrigin) Fetch(name string) ([]byte, error) {
	if d.Delay != nil {
		d.Delay(name)
	}
	return d.Origin.Fetch(name)
}

// RequestRecord is one entry of the proxy's audit trail.
type RequestRecord struct {
	Client    string
	Arch      string
	Class     string
	Bytes     int
	CacheHit  bool
	Rejected  bool // verification failure, replacement served
	Duration  time.Duration
	ProxyTime time.Duration // time spent parsing/transforming (excludes origin fetch)
}

// Config parameterizes a proxy.
type Config struct {
	// Pipeline is the static service pipeline applied to every class.
	Pipeline *rewrite.Pipeline
	// CacheEnabled turns on the shared result cache.
	CacheEnabled bool
	// CacheBudget bounds cached bytes (0 = unlimited).
	CacheBudget int
	// DiskCacheDir, when set, backs the memory cache with files so a
	// restarted proxy recovers its transformed classes ("served from an
	// on-disk cache on the proxy", §4.1.2). Requires CacheEnabled.
	DiskCacheDir string
	// MemoryBudget models the server's physical memory: when the bytes
	// held by in-flight requests exceed it, each request pays a paging
	// penalty proportional to the overshoot (reproduces the >250-client
	// degradation of Figure 10). 0 disables the model.
	MemoryBudget int64
	// PagingPenaltyPerMB is the added delay per MiB of overshoot
	// (default 2ms when MemoryBudget is set).
	PagingPenaltyPerMB time.Duration
	// OnAudit receives the audit trail (central administration console).
	OnAudit func(RequestRecord)
}

// Stats is a snapshot of proxy counters.
type Stats struct {
	Requests      int64
	CacheHits     int64
	OriginFetches int64
	Rejections    int64
	BytesIn       int64
	BytesOut      int64
	ProxyTime     time.Duration
}

// Proxy is the static-service host.
type Proxy struct {
	origin Origin
	cfg    Config

	mu         sync.Mutex
	cache      map[string][]byte // key: arch + "\x00" + class
	cacheBytes int
	cacheOrder []string // FIFO eviction order

	inFlight atomic.Int64

	statRequests      atomic.Int64
	statCacheHits     atomic.Int64
	statOriginFetches atomic.Int64
	statRejections    atomic.Int64
	statBytesIn       atomic.Int64
	statBytesOut      atomic.Int64
	statProxyTime     atomic.Int64 // nanoseconds
}

// connectionMemory is the modeled per-connection server memory (socket
// buffers, HTTP state, worker stack) held for an in-flight request.
const connectionMemory = 256 << 10

// New creates a proxy in front of origin.
func New(origin Origin, cfg Config) *Proxy {
	if cfg.Pipeline == nil {
		cfg.Pipeline = rewrite.NewPipeline()
	}
	if cfg.MemoryBudget > 0 && cfg.PagingPenaltyPerMB == 0 {
		cfg.PagingPenaltyPerMB = 2 * time.Millisecond
	}
	return &Proxy{origin: origin, cfg: cfg, cache: make(map[string][]byte)}
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:      p.statRequests.Load(),
		CacheHits:     p.statCacheHits.Load(),
		OriginFetches: p.statOriginFetches.Load(),
		Rejections:    p.statRejections.Load(),
		BytesIn:       p.statBytesIn.Load(),
		BytesOut:      p.statBytesOut.Load(),
		ProxyTime:     time.Duration(p.statProxyTime.Load()),
	}
}

// CacheEntries returns the cached keys, sorted (diagnostics).
func (p *Proxy) CacheEntries() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]string(nil), p.cacheOrder...)
	sort.Strings(out)
	return out
}

// Request serves one class to one client: the full intercept path.
func (p *Proxy) Request(client, arch, class string) ([]byte, error) {
	start := time.Now()
	p.statRequests.Add(1)
	key := arch + "\x00" + class

	if p.cfg.CacheEnabled {
		p.mu.Lock()
		data, ok := p.cache[key]
		p.mu.Unlock()
		if !ok {
			// Second level: the on-disk cache (survives proxy restarts).
			if d, hit := p.diskCacheGet(key); hit {
				data, ok = d, true
				p.storeMem(key, d)
			}
		}
		if ok {
			p.statCacheHits.Add(1)
			p.statBytesOut.Add(int64(len(data)))
			p.audit(RequestRecord{
				Client: client, Arch: arch, Class: class, Bytes: len(data),
				CacheHit: true, Duration: time.Since(start),
			})
			return data, nil
		}
	}

	// Memory model: an in-flight request holds connection state and
	// transfer buffers for its whole lifetime (including the upstream
	// fetch), plus the parsed class afterwards.
	held := int64(connectionMemory)
	p.inFlight.Add(held)
	defer func() { p.inFlight.Add(-held) }()

	p.statOriginFetches.Add(1)
	raw, err := p.origin.Fetch(class)
	if err != nil {
		return nil, err
	}
	p.statBytesIn.Add(int64(len(raw)))
	extra := int64(len(raw)) * 4 // parsed form is a few times the wire size
	held += extra
	total := p.inFlight.Add(extra)
	if p.cfg.MemoryBudget > 0 && total > p.cfg.MemoryBudget {
		overMB := float64(total-p.cfg.MemoryBudget) / (1 << 20)
		penalty := time.Duration(overMB * float64(p.cfg.PagingPenaltyPerMB))
		if penalty > 0 {
			time.Sleep(penalty)
		}
	}

	tstart := time.Now()
	ctx := rewrite.NewContext()
	ctx.ClientID = client
	ctx.ClientArch = arch
	out, perr := p.cfg.Pipeline.Process(raw, ctx)
	rejected := false
	if perr != nil {
		// A verification (or other service) rejection becomes a
		// replacement class that raises VerifyError on the client.
		rejected = true
		p.statRejections.Add(1)
		repl, rerr := verifier.MakeErrorClass(class, perr.Error())
		if rerr != nil {
			return nil, fmt.Errorf("proxy: building replacement for %s: %v (original error: %w)", class, rerr, perr)
		}
		out = repl
	}
	proxyTime := time.Since(tstart)
	p.statProxyTime.Add(int64(proxyTime))

	if p.cfg.CacheEnabled {
		p.storeMem(key, out)
		p.diskCachePut(key, out)
	}

	p.statBytesOut.Add(int64(len(out)))
	p.audit(RequestRecord{
		Client: client, Arch: arch, Class: class, Bytes: len(out),
		Rejected: rejected, Duration: time.Since(start), ProxyTime: proxyTime,
	})
	return out, nil
}

// storeMem inserts into the in-memory cache with FIFO eviction.
func (p *Proxy) storeMem(key string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.cache[key]; dup {
		return
	}
	p.cache[key] = data
	p.cacheBytes += len(data)
	p.cacheOrder = append(p.cacheOrder, key)
	for p.cfg.CacheBudget > 0 && p.cacheBytes > p.cfg.CacheBudget && len(p.cacheOrder) > 0 {
		victim := p.cacheOrder[0]
		p.cacheOrder = p.cacheOrder[1:]
		p.cacheBytes -= len(p.cache[victim])
		delete(p.cache, victim)
	}
}

func (p *Proxy) audit(r RequestRecord) {
	if p.cfg.OnAudit != nil {
		p.cfg.OnAudit(r)
	}
}
