// Package proxy implements the DVM's service proxy (paper §3): a
// transparent interceptor on the path between clients and code origins.
// It fetches requested classes, parses them once, runs the static
// service pipeline (verifier, security, auditor, optimizer, compiler)
// over the in-memory form, re-serializes, caches the result, and serves
// it — generating an audit trail for the remote administration console.
//
// "The proxy uses a cache to avoid rewriting code shared between
// clients"; rejected classes are replaced with a VerifyError-raising
// stand-in so failures surface through the normal Java exception
// mechanism on the client (§3.1).
//
// Concurrency: simultaneous misses for the same (arch, class) are
// coalesced — one leader performs the origin fetch and the pipeline run
// while followers wait and share the result. Followers still count as
// requests and receive their own audit records, marked as coalesced
// cache hits, so the administration console sees every client. The
// result cache is a byte-budgeted LRU: hits refresh recency, replacing
// a key updates the byte accounting, and an entry larger than the whole
// budget is skipped (logged) rather than allowed to wipe the cache and
// then fail to stay resident.
//
// Failure semantics: the origin hop carries a per-attempt deadline, a
// retry policy with backoff+jitter, and a circuit breaker
// (internal/resilience). When the origin is down the proxy *fails
// open with stale data*: a cached entry past its TTL is normally
// revalidated, but if the revalidating fetch fails the stale bytes are
// served (stale-if-error, counted in Stats.StaleServed) — an
// unreachable origin degrades freshness, never availability, matching
// the paper's split between trust-critical and auxiliary services.
//
// Clustering: when Config.PeerFill is set (internal/cluster), a cache
// miss is routed through it before the origin hop. The hook implements
// the sharded-fleet protocol: if another node owns the key on the
// consistent-hash ring, the transformed bytes are filled from that peer
// (one origin fetch and one pipeline run cluster-wide); if this node is
// the owner, or the peer hop fails, the miss falls through to the local
// origin path, so a peer outage degrades sharing, never availability.
//
// Telemetry: every request runs under a telemetry.Trace — created here
// if the caller did not attach one to the ctx — and records spans for
// each stage (proxy.request, queue.wait, peer.fill, origin.fetch,
// pipeline), so the caller gets a per-stage latency breakdown even
// across peer hops. All counters and latency histograms live in a
// telemetry.Registry served on /metrics and /healthz; Stats is a
// snapshot view derived from it.
package proxy

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvm/internal/attest"
	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/resilience"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
	"dvm/internal/verifier"
)

// ErrNotFound marks an origin's definitive "no such class" answer.
// Unlike a timeout or connection error it is not evidence the origin is
// down: it is never retried, never trips the breaker, and never falls
// back to stale cache. The HTTP front end maps it to 404.
var ErrNotFound = errors.New("class not found")

// Origin supplies original (untransformed) class bytes, e.g. a web
// server on the open Internet. Fetch must honor ctx cancellation: a
// hung origin is abandoned when the per-hop deadline expires.
type Origin interface {
	Fetch(ctx context.Context, name string) ([]byte, error)
}

// MapOrigin serves classes from memory.
type MapOrigin map[string][]byte

// Fetch implements Origin.
func (m MapOrigin) Fetch(_ context.Context, name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("origin: %s: %w", name, ErrNotFound)
	}
	return b, nil
}

// DelayedOrigin wraps an origin with a per-fetch delay callback (the
// synthetic Internet).
type DelayedOrigin struct {
	Origin
	// Delay is invoked before each fetch with the class name; it may
	// sleep (scaled) or advance a simulated clock.
	Delay func(name string)
}

// Fetch implements Origin.
func (d DelayedOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	if d.Delay != nil {
		d.Delay(name)
	}
	return d.Origin.Fetch(ctx, name)
}

// RequestRecord is one entry of the proxy's audit trail.
type RequestRecord struct {
	Client    string
	Arch      string
	Class     string
	Bytes     int
	CacheHit  bool
	Coalesced bool // joined an in-flight fetch for the same class
	Rejected  bool // verification failure, replacement served
	// Stale marks a degraded response: the origin was unreachable and an
	// expired cache entry was served instead (stale-if-error).
	Stale bool
	// Peer is the cluster node that supplied the bytes when the miss was
	// filled over the peer protocol instead of from the origin.
	Peer string
	// PeerError records a failed peer-fill attempt that fell back to a
	// local origin fetch (the owner was down or unreachable).
	PeerError string
	// Shed marks an admission-control decision (see RequestInfo.Shed).
	Shed bool
	// FetchError is set when the origin fetch (or replacement
	// construction) failed; the administration console must see failed
	// and degraded fetches too. With Stale set, bytes were still served.
	FetchError string
	Duration   time.Duration
	ProxyTime  time.Duration // time spent parsing/transforming (excludes origin fetch)
}

// Config parameterizes a proxy.
type Config struct {
	// Node names this proxy in trace spans and health reports — a peer
	// URL in a cluster, "proxy" by default.
	Node string
	// Pipeline is the static service pipeline applied to every class.
	Pipeline *rewrite.Pipeline
	// CacheEnabled turns on the shared result cache.
	CacheEnabled bool
	// CacheBudget bounds cached bytes (0 = unlimited).
	CacheBudget int
	// CacheTTL is how long a cached entry is considered fresh
	// (0 = forever). An expired entry is revalidated by refetching; if
	// the origin is unreachable the stale bytes are served instead
	// (stale-if-error).
	CacheTTL time.Duration
	// DiskCacheDir, when set, backs the memory cache with files so a
	// restarted proxy recovers its transformed classes ("served from an
	// on-disk cache on the proxy", §4.1.2). Requires CacheEnabled.
	DiskCacheDir string

	// FetchTimeout bounds each origin fetch attempt (0 = no per-attempt
	// deadline; the caller's ctx still applies).
	FetchTimeout time.Duration
	// FetchRetries is the number of retries after the first failed fetch
	// attempt (0 = no retries). Not-found answers are never retried.
	FetchRetries int
	// RetryBase is the first backoff delay between retries (default 50ms).
	RetryBase time.Duration
	// RetrySeed makes the retry jitter deterministic (tests).
	RetrySeed uint64
	// BreakerThreshold is the number of consecutive origin failures that
	// trips the origin circuit breaker (0 = default 5, <0 = disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// half-open probe (default 5s).
	BreakerCooldown time.Duration

	// PeerFill, when set, is consulted on every cache miss before the
	// origin hop. A sharded cluster (internal/cluster) uses it to route
	// the miss to the ring node that owns the key and fill the cache from
	// that peer's already-transformed copy. The full Lookup is passed so
	// the hook can forward the client identity — the owner's prefetch
	// predictor learns per-client request sequences from it. See
	// PeerResult for the three possible outcomes; a nil hook (standalone
	// proxy) always behaves as PeerSelf.
	PeerFill func(ctx context.Context, l Lookup) PeerResult

	// MaxQueue bounds how many miss requests may wait for a service
	// slot before new ones are shed (429). 0 disables admission control
	// entirely: today's unbounded behavior. See admission.go for the
	// shed ordering.
	MaxQueue int
	// MaxConcurrent bounds the flights doing origin-fetch + pipeline
	// work at once when admission control is enabled (default
	// 8×GOMAXPROCS). Cache hits and coalesced followers do not count
	// against it.
	MaxConcurrent int
	// QueueDeadline bounds how long a flight may wait for a service
	// slot before it is shed (default 1s when admission is enabled).
	QueueDeadline time.Duration
	// ShedPolicy selects what to shed under overload: ShedPriority
	// (default — stale-serve before rejecting, peer fills before local
	// misses, per-client fair shares), ShedFIFO (bounded queue, tail
	// drop only), or ShedNone (admission disabled even with MaxQueue
	// set).
	ShedPolicy string

	// OnTransformed, when set, observes every class this node transformed
	// itself (origin fetch + pipeline run; peer-served and stale responses
	// are not reported). The cluster layer uses it to push freshly-owned
	// results to the key's replicas, attestation included. Called on the
	// flight goroutine, so it must not block — enqueue and return.
	OnTransformed func(arch, class string, data []byte, att *attest.Attestation)

	// Attest, when set, turns each locally transformed class into a
	// quorum-attested artifact before it is cached or served: the cluster
	// layer dispatches the origin bytes to ring successors, compares
	// output digests, and returns the sealed attestation on agreement.
	// An error fails the flight — a node must never serve bytes its own
	// fleet outvoted. Runs on the flight goroutine under the admission
	// slot, so the quorum round-trip is part of the request's service
	// time (that is the measured tax of -attest-quorum > 1).
	Attest func(ctx context.Context, arch, class string, raw, out []byte) (*attest.Attestation, error)

	// AOT, when set, turns the compiler's output into a fleet-shared
	// derived artifact: a request for AOT.Arch whose base-architecture
	// artifact is already cached locally is answered by compiling those
	// bytes directly — no origin fetch, no full pipeline run. The fleet
	// pays one origin fetch and one pipeline run per class under the
	// base key, and each compiled variant is one cheap derivation on
	// top of it. See AOTConfig.
	AOT *AOTConfig

	// MemoryBudget models the server's physical memory: when the bytes
	// held by in-flight requests exceed it, each request pays a paging
	// penalty proportional to the overshoot (reproduces the >250-client
	// degradation of Figure 10). 0 disables the model.
	MemoryBudget int64
	// PagingPenaltyPerMB is the added delay per MiB of overshoot
	// (default 2ms when MemoryBudget is set).
	PagingPenaltyPerMB time.Duration
	// OnAudit receives the audit trail (central administration console).
	OnAudit func(RequestRecord)
}

// AOTConfig parameterizes the shared ahead-of-time code cache. The
// compiled (Arch) artifact for a class is derived from the cached
// base-architecture artifact instead of re-running the whole pipeline
// over origin bytes. Every filter ahead of the compiler is
// architecture-independent, so Compile(pipeline_base(raw)) is
// byte-identical to pipeline_arch(raw): the derived artifact is exactly
// what the full pipeline would have produced, and it caches, replicates
// and attests like any other artifact.
type AOTConfig struct {
	// Arch is the derived architecture (the compiler's native format,
	// e.g. compiler.ArchDVM).
	Arch string
	// BaseArch is the architecture whose cached artifact Compile
	// consumes (the pipeline output without the compile step).
	BaseArch string
	// Compile derives the Arch artifact from a BaseArch artifact
	// (parse, quicken, re-encode). It must be deterministic: attestation
	// variants re-run it over the same base bytes and compare digests.
	Compile func(base []byte) ([]byte, error)
	// AttestCompile, when set, seals a derived artifact the way
	// Config.Attest seals a transformed one: the cluster dispatches the
	// base bytes to ring successors in compile mode, each re-derives and
	// votes with its digest (CompileDigest). An error fails the flight.
	AttestCompile func(ctx context.Context, arch, class string, base, out []byte) (*attest.Attestation, error)
}

// PeerOutcome says how a PeerFill attempt resolved.
type PeerOutcome int

const (
	// PeerSelf: this node owns the key on the ring (or no routing
	// applies); fetch from the origin and run the pipeline locally.
	PeerSelf PeerOutcome = iota
	// PeerServed: the owning peer returned the transformed class; serve
	// it without touching the origin or the pipeline.
	PeerServed
	// PeerFailed: the owning peer was down or unreachable; degrade to a
	// local origin fetch so a peer outage never fails a request.
	PeerFailed
)

// PeerResult is the outcome of routing a cache miss through the cluster
// ring (Config.PeerFill).
type PeerResult struct {
	Outcome PeerOutcome
	// Data is the transformed class (Outcome == PeerServed).
	Data []byte
	// Att is the artifact's attestation, already verified against Data
	// by the fill hook before the result is handed back.
	Att *attest.Attestation
	// CacheLocal stores the peer's bytes in this node's own cache too:
	// the cluster replicates hot keys toward their readers so the ring
	// owner does not become a hotspot.
	CacheLocal bool
	// Rejected and Stale mirror the owner's response flags so audit
	// records and client semantics survive the peer hop.
	Rejected bool
	Stale    bool
	// Peer identifies the node that served (or failed to serve) the key.
	Peer string
	// Err is the peer hop failure (Outcome == PeerFailed).
	Err error
}

// Lookup names what a request wants and for whom. It is the single
// argument of Request; the cluster, the HTTP front end, the bench
// drivers, and the examples all build one.
type Lookup struct {
	// Client identifies the requesting client (audit trail).
	Client string
	// Arch is the client's architecture (cache partitioning: the
	// compiler service specializes output per arch).
	Arch string
	// Class is the fully qualified class name.
	Class string
}

// Result is everything a request produced: the transformed bytes, the
// serving flags, and the request's cross-hop trace.
type Result struct {
	// Data is the transformed class.
	Data []byte
	// Info describes how the response was served (cache/peer/stale...).
	Info RequestInfo
	// Trace is the request's timeline — the ctx trace if the caller
	// attached one, else one created at entry. Present on errors too, so
	// a caller can see where a failed request spent its time.
	Trace *telemetry.Trace
}

// RequestInfo describes how a request was served; the peer protocol
// forwards it as response headers so flags survive the extra hop.
type RequestInfo struct {
	CacheHit  bool
	Coalesced bool
	Rejected  bool
	Stale     bool
	// Shed marks an overload decision: with Stale set the request was
	// answered from expired cache instead of queueing a refetch;
	// otherwise it was rejected (ErrOverloaded).
	Shed bool
	// Prefetched marks a cache hit whose entry was pushed speculatively
	// (prefetch piggyback) and used here for the first time — the round
	// trip this response did NOT pay is the prefetcher's win.
	Prefetched bool
	Peer       string // cluster node that supplied the bytes, if any
	// Attestation is the artifact's trust metadata when attestation is
	// enabled: the sealed digest + quorum record stored with the cache
	// entry. The peer protocol forwards it as a response header so every
	// hop can re-verify the bytes it received.
	Attestation *attest.Attestation
}

// Stats is a snapshot of proxy counters, derived from the telemetry
// registry (the registry is the source of truth; this struct is the
// ergonomic Go view of it).
type Stats struct {
	Requests      int64
	CacheHits     int64
	Coalesced     int64 // requests served by joining an in-flight fetch (subset of CacheHits)
	OriginFetches int64
	FetchRetries  int64 // retry attempts scheduled against the origin
	FetchErrors   int64
	StaleServed   int64 // degraded responses served from expired cache (stale-if-error)
	PeerFetches   int64 // misses routed to the owning cluster peer
	PeerHits      int64 // peer fetches that returned the transformed class
	OwnerFetches  int64 // origin fetches performed as the key's ring owner
	Rejections    int64
	// Shed counts requests rejected by admission control (ErrOverloaded);
	// ShedStale counts overload decisions that were instead answered from
	// expired cache (those requests still succeeded).
	Shed      int64
	ShedStale int64
	// CoalescedFailures counts followers whose shared flight failed; the
	// underlying fetch error appears once in FetchErrors.
	CoalescedFailures int64
	// FlightsAbandoned counts flights canceled because every waiting
	// client disconnected first.
	FlightsAbandoned int64
	// Attested counts artifacts sealed after a quorum round;
	// AttestFailures counts flights failed by the attest hook.
	Attested       int64
	AttestFailures int64
	// CompileHits counts AOT-arch artifacts served without a local
	// compilation (cache hit or peer fill); CompileMisses counts local
	// compilations — a cheap derivation from the cached base artifact,
	// or a full pipeline run when no base was resident.
	CompileHits    int64
	CompileMisses  int64
	BytesIn        int64
	BytesOut         int64
	ProxyTime        time.Duration
	// Breaker is the origin circuit-breaker snapshot.
	Breaker resilience.BreakerCounts
}

// cacheEntry is one LRU cache element. prefetched marks a speculative
// entry that has not been hit yet: the flag clears on first use, and an
// entry evicted or overwritten with the flag still set is counted as
// prefetch waste.
type cacheEntry struct {
	key        string
	data       []byte
	att        *attest.Attestation // trust metadata, nil when attestation is off
	storedAt   time.Time
	prefetched bool
	// rejected marks a verification-failure replacement class. The flag
	// survives caching so later hits report Rejected faithfully and the
	// AOT derive path never compiles a replacement (replacements are
	// architecture-independent; the regular path serves them as-is).
	rejected bool
}

// flight is one in-progress origin fetch + pipeline run that concurrent
// requests for the same key share. The work runs on its own detached
// context (a worker goroutine), so the client that happened to arrive
// first can disconnect without failing everyone else on the flight: the
// work is canceled only when the last waiter leaves.
type flight struct {
	done   chan struct{}      // closed when the worker finishes
	cancel context.CancelFunc // stops the worker; called on last leave

	// waiters counts the requests awaiting this flight (guarded by
	// Proxy.flightMu). When it reaches zero before done, nobody wants
	// the result anymore and the worker is canceled.
	waiters int

	// Results, published before done is closed.
	data      []byte
	att       *attest.Attestation
	rejected  bool
	stale     bool
	shed      bool   // admission control shed this flight (stale or rejected)
	peer      string // cluster node that filled the miss, if any
	peerErr   string // failed peer-fill attempt that fell back to origin
	fetchErr  string // origin failure behind a stale-if-error response
	proxyTime time.Duration
	err       error
}

// Proxy is the static-service host.
type Proxy struct {
	origin  Origin
	cfg     Config
	breaker *resilience.Breaker
	hop     resilience.Hop
	now     func() time.Time // clock hook for TTL tests

	mu         sync.Mutex
	cache      map[string]*list.Element // key: arch + "\x00" + class
	lru        *list.List               // front = most recently used
	cacheBytes int
	// prefetchResident tracks bytes of prefetched-but-not-yet-used
	// entries (guarded by mu; exported as a gauge).
	prefetchResident int

	flightMu sync.Mutex
	flights  map[string]*flight

	inFlight atomic.Int64

	// adm is the overload controller (nil = admission disabled).
	adm *admission

	reg *telemetry.Registry

	cRequests      *telemetry.Counter
	cCacheHits     *telemetry.Counter
	cCoalesced     *telemetry.Counter
	cOriginFetches *telemetry.Counter
	cFetchErrors   *telemetry.Counter
	cStaleServed   *telemetry.Counter
	cPeerFetches   *telemetry.Counter
	cPeerHits      *telemetry.Counter
	cOwnerFetches  *telemetry.Counter
	cRejections    *telemetry.Counter
	cBytesIn       *telemetry.Counter
	cBytesOut      *telemetry.Counter
	cFetchRetries  *telemetry.Counter
	// cCoalescedFailures counts followers whose shared flight failed;
	// the underlying fetch error is counted once, on the flight.
	cCoalescedFailures *telemetry.Counter
	// cFlightsAbandoned counts flights canceled because every waiter
	// disconnected before the result arrived (not an origin failure).
	cFlightsAbandoned *telemetry.Counter
	// cAttested counts artifacts that finished a quorum round and were
	// sealed; cAttestFailures counts flights failed by the attest hook
	// (local divergence, no quorum).
	cAttested       *telemetry.Counter
	cAttestFailures *telemetry.Counter
	// cCompileHits / cCompileMisses implement the AOT code cache's
	// "fleet pays one compilation per class" accounting (see Stats).
	cCompileHits   *telemetry.Counter
	cCompileMisses *telemetry.Counter

	// Batch-warm ingestion (replica push, handoff, prefetch — one path,
	// one set of counters) and the prefetch ledger. Waste is explicit:
	// prefetched bytes evicted or overwritten before first use are
	// reported, not hidden.
	cWarmed             *telemetry.Counter
	cWarmedBytes        *telemetry.Counter
	cPrefetchInserted   *telemetry.Counter
	cPrefetchHits       *telemetry.Counter
	cPrefetchSkipped    *telemetry.Counter
	cPrefetchWasteBytes *telemetry.Counter
	cPrefetchEvicted    *telemetry.Counter

	hRequest     *telemetry.Histogram // whole-request latency; count == Requests
	hOriginFetch *telemetry.Histogram
	hPipeline    *telemetry.Histogram // parse+transform time; Sum backs Stats.ProxyTime
	hAttest      *telemetry.Histogram // quorum round latency per attested artifact
}

// connectionMemory is the modeled per-connection server memory (socket
// buffers, HTTP state, worker stack) held for an in-flight request.
const connectionMemory = 256 << 10

// New creates a proxy in front of origin.
func New(origin Origin, cfg Config) *Proxy {
	if cfg.Node == "" {
		cfg.Node = "proxy"
	}
	if cfg.Pipeline == nil {
		cfg.Pipeline = rewrite.NewPipeline()
	}
	if cfg.MemoryBudget > 0 && cfg.PagingPenaltyPerMB == 0 {
		cfg.PagingPenaltyPerMB = 2 * time.Millisecond
	}
	if cfg.MaxQueue > 0 {
		if cfg.MaxConcurrent <= 0 {
			cfg.MaxConcurrent = 8 * runtime.GOMAXPROCS(0)
		}
		if cfg.QueueDeadline <= 0 {
			cfg.QueueDeadline = time.Second
		}
		if cfg.ShedPolicy == "" {
			cfg.ShedPolicy = ShedPriority
		}
	}
	p := &Proxy{
		origin:  origin,
		cfg:     cfg,
		now:     time.Now,
		cache:   make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
		reg:     telemetry.NewRegistry("proxy"),
	}
	p.cRequests = p.reg.Counter("requests_total")
	p.cCacheHits = p.reg.Counter("cache_hits_total")
	p.cCoalesced = p.reg.Counter("coalesced_total")
	p.cOriginFetches = p.reg.Counter("origin_fetches_total")
	p.cFetchErrors = p.reg.Counter("fetch_errors_total")
	p.cStaleServed = p.reg.Counter("stale_served_total")
	p.cPeerFetches = p.reg.Counter("peer_fetches_total")
	p.cPeerHits = p.reg.Counter("peer_hits_total")
	p.cOwnerFetches = p.reg.Counter("owner_fetches_total")
	p.cRejections = p.reg.Counter("rejections_total")
	p.cBytesIn = p.reg.Counter("bytes_in_total")
	p.cBytesOut = p.reg.Counter("bytes_out_total")
	p.cFetchRetries = p.reg.Counter("fetch_retries_total")
	p.cCoalescedFailures = p.reg.Counter("coalesced_failures_total")
	p.cFlightsAbandoned = p.reg.Counter("flights_abandoned_total")
	p.cAttested = p.reg.Counter("attested_keys_total")
	p.cAttestFailures = p.reg.Counter("attest_failures_total")
	p.cCompileHits = p.reg.Counter("compile_hits_total")
	p.cCompileMisses = p.reg.Counter("compile_misses_total")
	p.cWarmed = p.reg.Counter("warm_entries_total")
	p.cWarmedBytes = p.reg.Counter("warm_bytes_total")
	p.cPrefetchInserted = p.reg.Counter("prefetch_inserted_total")
	p.cPrefetchHits = p.reg.Counter("prefetch_hits_total")
	p.cPrefetchSkipped = p.reg.Counter("prefetch_skipped_total")
	p.cPrefetchWasteBytes = p.reg.Counter("prefetch_waste_bytes_total")
	p.cPrefetchEvicted = p.reg.Counter("prefetch_evicted_unused_total")
	p.reg.Gauge("prefetch_resident_unused_bytes", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(p.prefetchResident)
	})
	p.hRequest = p.reg.Histogram("request_seconds", nil)
	p.hOriginFetch = p.reg.Histogram("origin_fetch_seconds", nil)
	p.hPipeline = p.reg.Histogram("pipeline_seconds", nil)
	p.hAttest = p.reg.Histogram("attest_quorum_seconds", nil)
	if cfg.MaxQueue > 0 && cfg.ShedPolicy != ShedNone {
		// Expected service time for the deadline-aware drop: the live
		// mean origin fetch plus the live mean pipeline run.
		svc := func() time.Duration {
			return p.hOriginFetch.Snapshot().Mean() + p.hPipeline.Snapshot().Mean()
		}
		p.adm = newAdmission(cfg, p.reg, svc, p.cRequests)
	}
	p.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Threshold:     cfg.BreakerThreshold,
		Cooldown:      cfg.BreakerCooldown,
		OpenDurations: p.reg.Histogram("breaker_open_seconds", nil),
	})
	p.hop = resilience.Hop{
		Timeout: cfg.FetchTimeout,
		Retry: resilience.RetryPolicy{
			Attempts: 1 + cfg.FetchRetries,
			Base:     cfg.RetryBase,
			Seed:     cfg.RetrySeed,
		},
		Breaker: p.breaker,
		Retries: p.cFetchRetries,
	}
	p.reg.Gauge("cache_bytes", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(p.cacheBytes)
	})
	p.reg.Gauge("inflight_bytes", func() float64 { return float64(p.inFlight.Load()) })
	// The share of parsed Utf8 constants the lazy codec actually had to
	// decode (process-wide): near 0 on pass-through traffic, rising only
	// when filters touch names, descriptors, and attribute payloads.
	p.reg.Gauge("lazy_decoded_ratio", func() float64 {
		s := classfile.CodecStats()
		if s.Utf8Seen == 0 {
			return 0
		}
		return float64(s.Utf8Decoded) / float64(s.Utf8Seen)
	})
	p.reg.Gauge("descriptor_cache_hits", func() float64 {
		hits, _ := bytecode.DescriptorCacheStats()
		return float64(hits)
	})
	p.reg.Gauge("descriptor_cache_misses", func() float64 {
		_, misses := bytecode.DescriptorCacheStats()
		return float64(misses)
	})
	return p
}

// Breaker exposes the origin circuit breaker (diagnostics, shared
// upstream wiring).
func (p *Proxy) Breaker() *resilience.Breaker { return p.breaker }

// Telemetry exposes the proxy's metric registry (mounted on /metrics by
// the HTTP front end; the cluster node adds its peer counters here).
func (p *Proxy) Telemetry() *telemetry.Registry { return p.reg }

// Node returns the name this proxy uses in trace spans.
func (p *Proxy) Node() string { return p.cfg.Node }

// Health reports the shared versioned health schema: degraded while the
// origin breaker is open (requests are being answered from stale cache
// or failing), ok otherwise.
func (p *Proxy) Health() telemetry.Health {
	bc := p.breaker.Counts()
	status := telemetry.StatusOK
	if bc.State == resilience.Open.String() {
		status = telemetry.StatusDegraded
	}
	h := p.reg.Health(status)
	h.Breakers = map[string]telemetry.BreakerHealth{
		"origin": {State: bc.State, Trips: bc.Trips, Successes: bc.Successes, Failures: bc.Failures},
	}
	return h
}

// Stats returns a snapshot of the counters, read from the registry.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:      p.cRequests.Load(),
		CacheHits:     p.cCacheHits.Load(),
		Coalesced:     p.cCoalesced.Load(),
		OriginFetches: p.cOriginFetches.Load(),
		FetchRetries:  p.cFetchRetries.Load(),
		FetchErrors:   p.cFetchErrors.Load(),
		StaleServed:   p.cStaleServed.Load(),
		PeerFetches:   p.cPeerFetches.Load(),
		PeerHits:      p.cPeerHits.Load(),
		OwnerFetches:  p.cOwnerFetches.Load(),
		Rejections:    p.cRejections.Load(),
		Shed:          p.shedTotal(),
		ShedStale:     p.shedStale(),

		CoalescedFailures: p.cCoalescedFailures.Load(),
		FlightsAbandoned:  p.cFlightsAbandoned.Load(),
		Attested:          p.cAttested.Load(),
		AttestFailures:    p.cAttestFailures.Load(),
		CompileHits:       p.cCompileHits.Load(),
		CompileMisses:     p.cCompileMisses.Load(),
		BytesIn:           p.cBytesIn.Load(),
		BytesOut:          p.cBytesOut.Load(),
		ProxyTime:         p.hPipeline.Snapshot().Sum,
		Breaker:           p.breaker.Counts(),
	}
}

// shedTotal reports requests rejected by admission control.
func (p *Proxy) shedTotal() int64 {
	if p.adm == nil {
		return 0
	}
	return p.adm.shedTotal()
}

// shedStale reports overload decisions answered from expired cache.
func (p *Proxy) shedStale() int64 {
	if p.adm == nil {
		return 0
	}
	return p.adm.cShedStale.Load()
}

// RequestLatency snapshots the whole-request latency histogram; cluster
// aggregation merges these across nodes.
func (p *Proxy) RequestLatency() telemetry.HistSnapshot {
	return p.hRequest.Snapshot()
}

// Warm reasons: why a batch entry is being pushed into a node's cache.
// Replica pushes, membership handoff, and predictive prefetch all share
// the same ingestion path (Warm) and the same counters; the reason only
// changes placement policy (prefetch inserts cold and never evicts).
const (
	ReasonFill     = "fill"
	ReasonReplica  = "replica"
	ReasonHandoff  = "handoff"
	ReasonPrefetch = "prefetch"
)

// CacheEntry is one cache element on the wire or in a snapshot: batch
// Warm ingestion, membership handoff, diagnostics. Att rides along so a
// transferred artifact stays verifiable on the receiving node; Reason
// says why it is being pushed (see the Reason* constants).
type CacheEntry struct {
	Arch   string
	Class  string
	Data   []byte
	Att    *attest.Attestation `json:",omitempty"`
	Reason string              `json:",omitempty"`
	// Rejected marks a verification-failure replacement so the flag
	// survives warm pushes and handoffs (see cacheEntry.rejected).
	Rejected bool `json:",omitempty"`
}

// CachedEntry is the old name of CacheEntry.
//
// Deprecated: use CacheEntry.
type CachedEntry = CacheEntry

// CacheSnapshot returns cached entries most-recently-used first —
// recency is the proxy's hotness signal — stopping once the entries'
// data exceeds maxBytes (0 = unbounded). keep filters entries (nil =
// all). The cluster handoff path uses it to offer a new owner its
// hottest inherited keys first.
func (p *Proxy) CacheSnapshot(maxBytes int, keep func(arch, class string) bool) []CacheEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []CacheEntry
	bytes := 0
	for el := p.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		arch, class := splitKey(ent.key)
		if keep != nil && !keep(arch, class) {
			continue
		}
		if maxBytes > 0 && bytes+len(ent.data) > maxBytes && len(out) > 0 {
			break
		}
		out = append(out, CacheEntry{Arch: arch, Class: class, Data: ent.data, Att: ent.att, Rejected: ent.rejected})
		bytes += len(ent.data)
		if maxBytes > 0 && bytes >= maxBytes {
			break
		}
	}
	return out
}

// Warm inserts already-transformed classes into the cache without a
// request: replication pushes, membership handoffs, and predictive
// prefetch all seed a node's cache with results another node paid for,
// through this one ingestion path with one set of counters. The caller
// (the cluster layer) verifies each entry's attestation against its
// bytes before warming; the proxy just stores them together.
//
// Entries with Reason == ReasonPrefetch are speculative: they enter at
// the cold end of the LRU and never evict resident entries — a guess
// must not displace bytes a client actually asked for. Entries that do
// not fit the remaining budget (or are already cached) are skipped and
// counted, not forced.
//
// Returns the number of entries stored. No-op when caching is disabled.
func (p *Proxy) Warm(entries []CacheEntry) int {
	if !p.cfg.CacheEnabled {
		return 0
	}
	stored := 0
	for _, e := range entries {
		key := e.Arch + "\x00" + e.Class
		if e.Reason == ReasonPrefetch {
			if p.storePrefetch(key, e.Data, e.Att, e.Rejected) {
				p.cWarmed.Inc()
				p.cWarmedBytes.Add(int64(len(e.Data)))
				stored++
			}
			continue
		}
		p.storeMem(key, e.Data, e.Att, e.Rejected)
		p.diskCachePut(key, e.Data, e.Att)
		p.cWarmed.Inc()
		p.cWarmedBytes.Add(int64(len(e.Data)))
		stored++
	}
	return stored
}

// storePrefetch inserts a speculative entry at the cold end of the LRU.
// It refuses rather than evicts when the budget is full: recency is the
// proxy's hotness signal, so anything resident is by definition hotter
// than a guess — this is the LRU pressure guard ("prefetch never evicts
// a hotter key than it inserts"). The disk cache is not touched; a
// guess does not deserve durable bytes.
func (p *Proxy) storePrefetch(key string, data []byte, att *attest.Attestation, rejected bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.cache[key]; ok {
		p.cPrefetchSkipped.Inc()
		return false
	}
	if p.cfg.CacheBudget > 0 && p.cacheBytes+len(data) > p.cfg.CacheBudget {
		p.cPrefetchSkipped.Inc()
		return false
	}
	p.cache[key] = p.lru.PushBack(&cacheEntry{key: key, data: data, att: att, storedAt: p.now(), prefetched: true, rejected: rejected})
	p.cacheBytes += len(data)
	p.prefetchResident += len(data)
	p.cPrefetchInserted.Inc()
	return true
}

// PrefetchStats reports the prefetch ledger: entries inserted, hits on
// prefetched entries, entries skipped (already cached or no budget
// headroom), bytes evicted or overwritten before first use (waste), and
// bytes currently resident but not yet used.
func (p *Proxy) PrefetchStats() (inserted, hits, skipped, wasteBytes, residentBytes int64) {
	p.mu.Lock()
	resident := int64(p.prefetchResident)
	p.mu.Unlock()
	return p.cPrefetchInserted.Load(), p.cPrefetchHits.Load(), p.cPrefetchSkipped.Load(),
		p.cPrefetchWasteBytes.Load(), resident
}

// UnderPressure reports whether the admission queue is at least half
// full — the same threshold at which stale entries are served instead
// of queued. Auxiliary work (handoff serving, replication intake) is
// shed at this point so overload never competes with client traffic.
func (p *Proxy) UnderPressure() bool { return p.adm.pressured() }

// CacheEntries returns the cached keys, sorted (diagnostics).
func (p *Proxy) CacheEntries() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.cache))
	for k := range p.cache {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Request serves one class to one client: the full intercept path. The
// ctx bounds the whole request (client disconnect, caller deadline);
// per-attempt origin deadlines come from Config.FetchTimeout. If the
// ctx carries a telemetry trace the request joins it; otherwise a fresh
// trace is created. Either way Result.Trace holds the timeline,
// populated with a span per stage.
func (p *Proxy) Request(ctx context.Context, l Lookup) (Result, error) {
	tr := telemetry.FromContext(ctx)
	if tr == nil {
		tr = telemetry.NewTrace()
		ctx = telemetry.WithTrace(ctx, tr)
	}
	span := tr.StartSpan(p.cfg.Node, "proxy.request")
	p.cRequests.Inc()
	data, info, err := p.serve(ctx, tr, span, l)
	p.hRequest.Observe(span.End())
	return Result{Data: data, Info: info, Trace: tr}, err
}

// serve is the request body under the root span: cache probe, miss
// coalescing, and the leader path.
func (p *Proxy) serve(ctx context.Context, tr *telemetry.Trace, span *telemetry.SpanTimer, l Lookup) ([]byte, RequestInfo, error) {
	key := l.Arch + "\x00" + l.Class

	var staleData []byte // expired cache entry kept for stale-if-error
	var staleAtt *attest.Attestation
	var haveStale bool
	if p.cfg.CacheEnabled {
		data, att, fresh, prefetched, rejected, ok := p.memGet(key)
		if !ok {
			// Second level: the on-disk cache (survives proxy restarts).
			// Only a fresh disk entry is promoted to memory; a stale one
			// is kept solely as the stale-if-error fallback so it still
			// gets revalidated on the next request.
			if d, datt, diskFresh, hit := p.diskCacheGet(key); hit {
				data, att, fresh, ok = d, datt, diskFresh, true
				if diskFresh {
					p.storeMem(key, d, datt, false)
				}
			}
		}
		if ok && fresh {
			p.cCacheHits.Inc()
			if a := p.cfg.AOT; a != nil && l.Arch == a.Arch {
				// A resident compiled artifact: nobody compiles anything.
				p.cCompileHits.Inc()
			}
			p.cBytesOut.Add(int64(len(data)))
			p.audit(RequestRecord{
				Client: l.Client, Arch: l.Arch, Class: l.Class, Bytes: len(data),
				CacheHit: true, Rejected: rejected, Duration: span.Elapsed(),
			})
			return data, RequestInfo{CacheHit: true, Prefetched: prefetched, Rejected: rejected, Attestation: att}, nil
		}
		if ok {
			staleData, staleAtt, haveStale = data, att, true
		}
	}

	// Coalesce concurrent misses: if another request is already fetching
	// and transforming this key, join it instead of duplicating the
	// origin fetch and the pipeline run.
	p.flightMu.Lock()
	if f, ok := p.flights[key]; ok {
		f.waiters++
		p.flightMu.Unlock()
		return p.awaitFlight(ctx, tr, span, key, f, l, false)
	}
	// First request for this key: start the flight on a context detached
	// from this client. The client's disconnect must not fail the other
	// clients that coalesce onto the flight; the work is canceled only
	// when the last waiter leaves (leaveFlight).
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	p.flights[key] = f
	p.flightMu.Unlock()

	// The detached context drops the client's deadline, so capture the
	// remaining budget here for the admission controller's deadline-aware
	// drop (<0 = no deadline).
	budget := time.Duration(-1)
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
	}
	go p.runFlight(fctx, tr, f, key, l, staleData, staleAtt, haveStale, budget)
	return p.awaitFlight(ctx, tr, span, key, f, l, true)
}

// leaveFlight drops one waiter from a flight. The last waiter to leave
// cancels the detached work — nobody wants the result anymore — and
// unpublishes the flight so the next request for the key starts fresh
// instead of joining a canceled fetch.
func (p *Proxy) leaveFlight(key string, f *flight) {
	p.flightMu.Lock()
	f.waiters--
	last := f.waiters == 0
	if last && p.flights[key] == f {
		delete(p.flights, key)
	}
	p.flightMu.Unlock()
	if last {
		f.cancel()
	}
}

// awaitFlight is the waiter path every request takes once a flight
// exists for its key: hold connection memory (the client is a live
// connection even while it waits), share the flight's result, and emit
// this client's own audit record. The request that started the flight
// (leader) waits without a span — the flight's own spans are already on
// its trace; a follower's wait is a "queue.wait" span, because
// coalescing trades duplicated work for queueing delay and the trace
// shows exactly how much.
func (p *Proxy) awaitFlight(ctx context.Context, tr *telemetry.Trace, span *telemetry.SpanTimer, key string, f *flight, l Lookup, leader bool) ([]byte, RequestInfo, error) {
	var wait *telemetry.SpanTimer
	if !leader {
		// The flight worker models its own connection memory; followers
		// are additional live connections.
		p.inFlight.Add(connectionMemory)
		defer p.inFlight.Add(-connectionMemory)
		wait = tr.StartSpan(p.cfg.Node, "queue.wait")
	}
	select {
	case <-f.done:
		if wait != nil {
			wait.End()
		}
	case <-ctx.Done():
		if wait != nil {
			wait.End()
		}
		// This client gave up (disconnect or deadline); the flight
		// continues for the others — unless this was the last waiter,
		// in which case leaveFlight cancels the work.
		p.leaveFlight(key, f)
		err := ctx.Err()
		p.audit(RequestRecord{
			Client: l.Client, Arch: l.Arch, Class: l.Class,
			Coalesced: !leader, FetchError: err.Error(), Duration: span.Elapsed(),
		})
		return nil, RequestInfo{Coalesced: !leader}, err
	}
	if f.err != nil {
		if !leader {
			// The fetch error itself was counted once, on the flight;
			// followers count separately so one bad origin fetch with N
			// waiters does not inflate fetch_errors_total by N+1.
			p.cCoalescedFailures.Inc()
		}
		p.audit(RequestRecord{
			Client: l.Client, Arch: l.Arch, Class: l.Class, Coalesced: !leader,
			Shed: f.shed, FetchError: f.err.Error(), PeerError: f.peerErr,
			Duration: span.Elapsed(),
		})
		return nil, RequestInfo{Coalesced: !leader, Shed: f.shed}, f.err
	}
	info := RequestInfo{
		Coalesced: !leader, Rejected: f.rejected, Stale: f.stale,
		Shed: f.shed, Peer: f.peer, Attestation: f.att,
	}
	// A follower shares bytes another request paid for — a cache hit in
	// all but storage; so does any waiter served a stale entry from this
	// node's own cache (stale-if-error or a shed onto the stale copy).
	info.CacheHit = !leader || (f.stale && f.peer == "")
	if !leader {
		p.cCacheHits.Inc()
		p.cCoalesced.Inc()
	}
	if f.stale {
		p.cStaleServed.Inc()
	}
	p.cBytesOut.Add(int64(len(f.data)))
	rec := RequestRecord{
		Client: l.Client, Arch: l.Arch, Class: l.Class, Bytes: len(f.data),
		CacheHit: info.CacheHit, Coalesced: !leader, Rejected: f.rejected,
		Stale: f.stale, Shed: f.shed, Peer: f.peer, Duration: span.Elapsed(),
	}
	if leader {
		// Flight-level detail rides the leader's record, as it did when
		// the leader ran the fetch inline.
		rec.PeerError = f.peerErr
		rec.FetchError = f.fetchErr
		rec.ProxyTime = f.proxyTime
	}
	p.audit(rec)
	return f.data, info, nil
}

// runFlight is the miss path, run by one worker goroutine per flight on
// a context detached from the clients: admission control, peer fill
// (sharded cluster), origin fetch (deadline + retry + breaker), memory
// model, pipeline, caching. The result is published into f for the
// waiters, who emit their own per-request counters and audit records.
// When the origin is unreachable and a stale cache entry exists, it is
// served instead (stale-if-error). ctx is canceled only when every
// waiter has left (leaveFlight).
func (p *Proxy) runFlight(ctx context.Context, tr *telemetry.Trace, f *flight, key string, l Lookup, staleData []byte, staleAtt *attest.Attestation, haveStale bool, budget time.Duration) {
	defer func() {
		// Unpublish before waking the waiters so a new request finds
		// either the cached entry or no flight at all; leaveFlight may
		// already have removed an abandoned flight.
		p.flightMu.Lock()
		if p.flights[key] == f {
			delete(p.flights, key)
		}
		p.flightMu.Unlock()
		close(f.done)
		f.cancel()
	}()

	// Memory model: the flight holds connection state and transfer
	// buffers for its whole lifetime (including the upstream fetch),
	// plus the parsed class afterwards.
	held := int64(connectionMemory)
	p.inFlight.Add(held)
	defer func() { p.inFlight.Add(-held) }()

	// Admission: a flight is one unit of origin+pipeline work; cache
	// hits and followers never reach this point. The controller may
	// grant a slot, shed the flight onto its stale copy, or reject it.
	if p.adm != nil {
		wspan := tr.StartSpan(p.cfg.Node, "admission.wait")
		outcome, aerr := p.adm.acquire(ctx, l.Client, haveStale, budget)
		wspan.End()
		switch outcome {
		case admitStale:
			f.data, f.att, f.stale, f.shed = staleData, staleAtt, true, true
			p.touchStale(key)
			return
		case admitShed:
			if errors.Is(aerr, ErrOverloaded) {
				f.err, f.shed = aerr, true
			} else {
				// ctx expired while queued: every waiter left.
				p.flightError(f, aerr)
			}
			return
		}
		defer p.adm.release()
	}

	// Sharded cluster: ask the key's ring owner before the origin. A
	// peer-served miss skips both the origin fetch and the pipeline run —
	// the owner already paid for them once on behalf of the whole fleet.
	if p.cfg.PeerFill != nil {
		fill := tr.StartSpan(p.cfg.Node, "peer.fill")
		res := p.cfg.PeerFill(ctx, l)
		fill.End()
		switch res.Outcome {
		case PeerServed:
			p.cPeerFetches.Inc()
			p.cPeerHits.Inc()
			if a := p.cfg.AOT; a != nil && l.Arch == a.Arch {
				// The owner paid the compilation; this node serves it free.
				p.cCompileHits.Inc()
			}
			if p.cfg.CacheEnabled && res.CacheLocal {
				// Hot key: replicate the owner's copy into the local LRU
				// (and disk cache) so this node stops round-tripping for it.
				// The fill hook already verified res.Att against res.Data.
				p.storeMem(key, res.Data, res.Att, res.Rejected)
				p.diskCachePut(key, res.Data, res.Att)
			}
			f.data, f.att, f.rejected, f.stale, f.peer = res.Data, res.Att, res.Rejected, res.Stale, res.Peer
			return
		case PeerFailed:
			// Owner down or unreachable: degrade to a local origin fetch.
			// Sharing is lost for this key, availability is not.
			p.cPeerFetches.Inc()
			if res.Err != nil {
				f.peerErr = res.Err.Error()
			}
		default: // PeerSelf: this node owns the key
			p.cOwnerFetches.Inc()
		}
	}

	// Shared AOT code cache: a miss for the compiled architecture whose
	// base-architecture artifact is already resident is answered by
	// compiling those bytes directly — the origin fetch and the full
	// pipeline run were paid once, under the base key; this request adds
	// only the (cheap, deterministic) derivation. Rejected bases are
	// skipped: a rejection replacement is architecture-independent and
	// the regular path reproduces it exactly.
	if a := p.cfg.AOT; a != nil && a.Compile != nil && l.Arch == a.Arch {
		if base, baseRejected, ok := p.peekEntry(a.BaseArch, l.Class); ok && !baseRejected {
			dspan := tr.StartSpan(p.cfg.Node, "aot.derive")
			out, derr := a.Compile(base)
			f.proxyTime = dspan.End()
			p.hPipeline.Observe(f.proxyTime)
			if derr == nil {
				p.cCompileMisses.Inc()
				var att *attest.Attestation
				if a.AttestCompile != nil {
					aspan := tr.StartSpan(p.cfg.Node, "attest.compile")
					sealed, aerr := a.AttestCompile(ctx, l.Arch, l.Class, base, out)
					p.hAttest.Observe(aspan.End())
					if aerr != nil {
						p.cAttestFailures.Inc()
						p.flightError(f, fmt.Errorf("proxy: attesting compiled %s: %w", l.Class, aerr))
						return
					}
					att = sealed
					p.cAttested.Inc()
				}
				if p.cfg.CacheEnabled {
					p.storeMem(key, out, att, false)
					p.diskCachePut(key, out, att)
				}
				if p.cfg.OnTransformed != nil {
					p.cfg.OnTransformed(l.Arch, l.Class, out, att)
				}
				f.data, f.att = out, att
				return
			}
			// A base artifact the compiler cannot consume degrades to the
			// full path below; the origin fetch re-derives from scratch.
			log.Printf("proxy: aot: deriving %s from cached %s artifact: %v", l.Class, a.BaseArch, derr)
		}
	}

	p.cOriginFetches.Inc()
	fetch := tr.StartSpan(p.cfg.Node, "origin.fetch")
	var raw []byte
	err := p.hop.Do(ctx, func(actx context.Context) error {
		b, ferr := p.origin.Fetch(actx, l.Class)
		if ferr != nil {
			if errors.Is(ferr, ErrNotFound) {
				// A definitive answer, not an outage: no retry, no
				// breaker penalty, no stale fallback.
				return resilience.Permanent(ferr)
			}
			return ferr
		}
		raw = b
		return nil
	})
	p.hOriginFetch.Observe(fetch.End())
	if err != nil {
		if haveStale && !errors.Is(err, ErrNotFound) {
			// Degraded mode: the origin is down but we still hold the
			// previous transformation. Freshness degrades; availability
			// does not.
			f.data, f.att, f.stale, f.fetchErr = staleData, staleAtt, true, err.Error()
			p.touchStale(key)
			return
		}
		p.flightError(f, err)
		return
	}
	p.cBytesIn.Add(int64(len(raw)))
	extra := int64(len(raw)) * 4 // parsed form is a few times the wire size
	held += extra
	total := p.inFlight.Add(extra)
	if p.cfg.MemoryBudget > 0 && total > p.cfg.MemoryBudget {
		overMB := float64(total-p.cfg.MemoryBudget) / (1 << 20)
		penalty := time.Duration(overMB * float64(p.cfg.PagingPenaltyPerMB))
		if penalty > 0 {
			time.Sleep(penalty)
		}
	}

	pipe := tr.StartSpan(p.cfg.Node, "pipeline")
	rctx := rewrite.NewContext()
	rctx.ClientID = l.Client
	rctx.ClientArch = l.Arch
	rctx.Trace = tr
	rctx.Node = p.cfg.Node
	out, perr := p.cfg.Pipeline.Process(raw, rctx)
	rejected := false
	if perr != nil {
		// A verification (or other service) rejection becomes a
		// replacement class that raises VerifyError on the client.
		rejected = true
		p.cRejections.Inc()
		repl, rerr := verifier.MakeErrorClass(l.Class, perr.Error())
		if rerr != nil {
			p.hPipeline.Observe(pipe.End())
			p.flightError(f, fmt.Errorf("proxy: building replacement for %s: %v (original error: %w)", l.Class, rerr, perr))
			return
		}
		out = repl
	}
	f.proxyTime = pipe.End()
	p.hPipeline.Observe(f.proxyTime)
	if a := p.cfg.AOT; a != nil && l.Arch == a.Arch && !rejected {
		// Full pipeline run for the compiled architecture: the compile
		// step ran inside it (no resident base artifact to derive from).
		p.cCompileMisses.Inc()
	}

	// Quorum attestation: before the artifact is cached or served, the
	// hook cross-checks the output digest against ring successors and
	// seals the agreement. A hook error fails the flight — divergence
	// means these bytes cannot be trusted, and no client may see them.
	var att *attest.Attestation
	if p.cfg.Attest != nil {
		aspan := tr.StartSpan(p.cfg.Node, "attest.quorum")
		a, aerr := p.cfg.Attest(ctx, l.Arch, l.Class, raw, out)
		p.hAttest.Observe(aspan.End())
		if aerr != nil {
			p.cAttestFailures.Inc()
			p.flightError(f, fmt.Errorf("proxy: attesting %s: %w", l.Class, aerr))
			return
		}
		att = a
		p.cAttested.Inc()
	}

	if p.cfg.CacheEnabled {
		p.storeMem(key, out, att, rejected)
		p.diskCachePut(key, out, att)
	}
	if p.cfg.OnTransformed != nil {
		p.cfg.OnTransformed(l.Arch, l.Class, out, att)
	}
	f.data, f.att, f.rejected = out, att, rejected
}

// flightError records a failed flight. A flight canceled because every
// waiter already disconnected is an abandonment, not an origin failure:
// nobody was refused service, so it gets its own counter instead of
// inflating fetch_errors_total.
func (p *Proxy) flightError(f *flight, err error) {
	f.err = err
	p.flightMu.Lock()
	abandoned := f.waiters == 0
	p.flightMu.Unlock()
	if abandoned && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		p.cFlightsAbandoned.Inc()
		return
	}
	p.cFetchErrors.Inc()
}

// memGet looks up the in-memory cache; a hit refreshes LRU recency.
// fresh reports whether the entry is within CacheTTL (always true when
// no TTL is configured). prefetched reports that this hit was the first
// use of a speculatively pushed entry — the prefetch paid off; the flag
// clears so the entry's later eviction is not miscounted as waste.
func (p *Proxy) memGet(key string) (data []byte, att *attest.Attestation, fresh, prefetched, rejected, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.cache[key]
	if !ok {
		return nil, nil, false, false, false, false
	}
	p.lru.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	if ent.prefetched {
		ent.prefetched = false
		prefetched = true
		p.prefetchResident -= len(ent.data)
		p.cPrefetchHits.Inc()
	}
	fresh = p.cfg.CacheTTL <= 0 || p.now().Sub(ent.storedAt) <= p.cfg.CacheTTL
	return ent.data, ent.att, fresh, prefetched, ent.rejected, true
}

// Peek returns the fresh cached bytes for (arch, class) without touching
// LRU recency, the prefetch ledger, or any counter — the owner-side read
// used to assemble a prefetch piggyback without distorting its own
// hotness signal. Stale entries are not returned: pushing bytes due for
// revalidation would spread staleness to peers.
func (p *Proxy) Peek(arch, class string) (data []byte, att *attest.Attestation, ok bool) {
	if !p.cfg.CacheEnabled {
		return nil, nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.cache[arch+"\x00"+class]
	if !ok {
		return nil, nil, false
	}
	ent := el.Value.(*cacheEntry)
	if p.cfg.CacheTTL > 0 && p.now().Sub(ent.storedAt) > p.cfg.CacheTTL {
		return nil, nil, false
	}
	return ent.data, ent.att, true
}

// peekEntry is Peek plus the rejection flag, for the AOT derive path:
// same no-recency, fresh-only semantics, but the caller also learns
// whether the resident bytes are a rejection replacement (which must
// not be fed to the compiler).
func (p *Proxy) peekEntry(arch, class string) (data []byte, rejected, ok bool) {
	if !p.cfg.CacheEnabled {
		return nil, false, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.cache[arch+"\x00"+class]
	if !ok {
		return nil, false, false
	}
	ent := el.Value.(*cacheEntry)
	if p.cfg.CacheTTL > 0 && p.now().Sub(ent.storedAt) > p.cfg.CacheTTL {
		return nil, false, false
	}
	return ent.data, ent.rejected, true
}

// touchStale refreshes the timestamp on a stale entry that was just
// served via stale-if-error, so a down origin is re-probed once per TTL
// window per key instead of on every request (the breaker bounds the
// damage regardless; this bounds audit noise).
func (p *Proxy) touchStale(key string) {
	if p.cfg.CacheTTL <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.cache[key]; ok {
		el.Value.(*cacheEntry).storedAt = p.now()
	}
}

// storeMem inserts or replaces an entry in the in-memory cache with LRU
// eviction. A replacement (e.g. a fresher transform after a pipeline
// config change, or a disk/memory disagreement) overwrites the stale
// bytes and fixes the byte accounting.
func (p *Proxy) storeMem(key string, data []byte, att *attest.Attestation, rejected bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.CacheBudget > 0 && len(data) > p.cfg.CacheBudget {
		// Caching this would evict everything and the entry still could
		// not stay resident; serve it uncached instead.
		log.Printf("proxy: cache: entry %q (%d bytes) exceeds cache budget (%d); not cached",
			keyClass(key), len(data), p.cfg.CacheBudget)
		return
	}
	if el, ok := p.cache[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.prefetched {
			// Overwritten before first use (e.g. a TTL refetch landed on a
			// speculative entry): the pushed bytes were waste.
			p.notePrefetchWaste(ent)
		}
		p.cacheBytes += len(data) - len(ent.data)
		ent.data = data
		ent.att = att
		ent.storedAt = p.now()
		ent.rejected = rejected
		p.lru.MoveToFront(el)
	} else {
		p.cache[key] = p.lru.PushFront(&cacheEntry{key: key, data: data, att: att, storedAt: p.now(), rejected: rejected})
		p.cacheBytes += len(data)
	}
	for p.cfg.CacheBudget > 0 && p.cacheBytes > p.cfg.CacheBudget {
		back := p.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		if ent.prefetched {
			p.notePrefetchWaste(ent)
		}
		p.lru.Remove(back)
		delete(p.cache, ent.key)
		p.cacheBytes -= len(ent.data)
	}
}

// notePrefetchWaste records a speculative entry leaving the cache (or
// being overwritten) before its first use. Caller holds p.mu.
func (p *Proxy) notePrefetchWaste(ent *cacheEntry) {
	ent.prefetched = false
	p.prefetchResident -= len(ent.data)
	p.cPrefetchWasteBytes.Add(int64(len(ent.data)))
	p.cPrefetchEvicted.Inc()
}

// splitKey splits an arch\x00class cache key into its parts.
func splitKey(key string) (arch, class string) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:]
		}
	}
	return "", key
}

// keyClass extracts the class name from an arch\x00class cache key for
// human-readable logs.
func keyClass(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[i+1:]
		}
	}
	return key
}

func (p *Proxy) audit(r RequestRecord) {
	if p.cfg.OnAudit != nil {
		p.cfg.OnAudit(r)
	}
}

// TransformDigest runs the pipeline over raw origin bytes and returns
// the canonical digest of what this node would serve for (arch, class) —
// the variant half of quorum attestation (/peer/attest). It shares the
// serving path's rejection-replacement semantics (a deterministic
// pipeline produces a deterministic rejection, so replacements attest
// like any other artifact) but touches neither the cache nor the
// origin: the dispatching owner supplies the raw bytes, and only the
// digest goes back on the wire.
func (p *Proxy) TransformDigest(ctx context.Context, arch, class string, raw []byte) (string, error) {
	rctx := rewrite.NewContext()
	rctx.ClientArch = arch
	rctx.Node = p.cfg.Node
	rctx.Trace = telemetry.FromContext(ctx)
	out, perr := p.cfg.Pipeline.Process(raw, rctx)
	if perr != nil {
		repl, rerr := verifier.MakeErrorClass(class, perr.Error())
		if rerr != nil {
			return "", fmt.Errorf("proxy: building replacement for %s: %v (original error: %w)", class, rerr, perr)
		}
		out = repl
	}
	return attest.Digest(out), nil
}

// CompileDigest derives the compiled artifact from already-transformed
// base-architecture bytes and returns its digest — the compile-mode
// variant vote of quorum attestation. The dispatching owner supplies
// the base artifact it derived from; this node answers with the digest
// of what its own compiler produces from the same input, so a corrupt
// compiler (or memory) on either side shows up as divergence exactly
// like a corrupt pipeline does on the transform route.
func (p *Proxy) CompileDigest(ctx context.Context, arch, class string, base []byte) (string, error) {
	a := p.cfg.AOT
	if a == nil || a.Compile == nil {
		return "", fmt.Errorf("proxy: no AOT compiler configured")
	}
	if arch != a.Arch {
		return "", fmt.Errorf("proxy: AOT arch %q cannot vote for %q", a.Arch, arch)
	}
	_ = ctx
	out, err := a.Compile(base)
	if err != nil {
		return "", fmt.Errorf("proxy: deriving %s: %w", class, err)
	}
	return attest.Digest(out), nil
}
