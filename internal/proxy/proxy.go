// Package proxy implements the DVM's service proxy (paper §3): a
// transparent interceptor on the path between clients and code origins.
// It fetches requested classes, parses them once, runs the static
// service pipeline (verifier, security, auditor, optimizer, compiler)
// over the in-memory form, re-serializes, caches the result, and serves
// it — generating an audit trail for the remote administration console.
//
// "The proxy uses a cache to avoid rewriting code shared between
// clients"; rejected classes are replaced with a VerifyError-raising
// stand-in so failures surface through the normal Java exception
// mechanism on the client (§3.1).
//
// Concurrency: simultaneous misses for the same (arch, class) are
// coalesced — one leader performs the origin fetch and the pipeline run
// while followers wait and share the result. Followers still count as
// requests and receive their own audit records, marked as coalesced
// cache hits, so the administration console sees every client. The
// result cache is a byte-budgeted LRU: hits refresh recency, replacing
// a key updates the byte accounting, and an entry larger than the whole
// budget is skipped (logged) rather than allowed to wipe the cache and
// then fail to stay resident.
package proxy

import (
	"container/list"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

// Origin supplies original (untransformed) class bytes, e.g. a web
// server on the open Internet.
type Origin interface {
	Fetch(name string) ([]byte, error)
}

// MapOrigin serves classes from memory.
type MapOrigin map[string][]byte

// Fetch implements Origin.
func (m MapOrigin) Fetch(name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("origin: %s not found", name)
	}
	return b, nil
}

// DelayedOrigin wraps an origin with a per-fetch delay callback (the
// synthetic Internet).
type DelayedOrigin struct {
	Origin
	// Delay is invoked before each fetch with the class name; it may
	// sleep (scaled) or advance a simulated clock.
	Delay func(name string)
}

// Fetch implements Origin.
func (d DelayedOrigin) Fetch(name string) ([]byte, error) {
	if d.Delay != nil {
		d.Delay(name)
	}
	return d.Origin.Fetch(name)
}

// RequestRecord is one entry of the proxy's audit trail.
type RequestRecord struct {
	Client    string
	Arch      string
	Class     string
	Bytes     int
	CacheHit  bool
	Coalesced bool // joined an in-flight fetch for the same class
	Rejected  bool // verification failure, replacement served
	// FetchError is set when the origin fetch (or replacement
	// construction) failed and no bytes were served; the administration
	// console must see failed fetches too.
	FetchError string
	Duration   time.Duration
	ProxyTime  time.Duration // time spent parsing/transforming (excludes origin fetch)
}

// Config parameterizes a proxy.
type Config struct {
	// Pipeline is the static service pipeline applied to every class.
	Pipeline *rewrite.Pipeline
	// CacheEnabled turns on the shared result cache.
	CacheEnabled bool
	// CacheBudget bounds cached bytes (0 = unlimited).
	CacheBudget int
	// DiskCacheDir, when set, backs the memory cache with files so a
	// restarted proxy recovers its transformed classes ("served from an
	// on-disk cache on the proxy", §4.1.2). Requires CacheEnabled.
	DiskCacheDir string
	// MemoryBudget models the server's physical memory: when the bytes
	// held by in-flight requests exceed it, each request pays a paging
	// penalty proportional to the overshoot (reproduces the >250-client
	// degradation of Figure 10). 0 disables the model.
	MemoryBudget int64
	// PagingPenaltyPerMB is the added delay per MiB of overshoot
	// (default 2ms when MemoryBudget is set).
	PagingPenaltyPerMB time.Duration
	// OnAudit receives the audit trail (central administration console).
	OnAudit func(RequestRecord)
}

// Stats is a snapshot of proxy counters.
type Stats struct {
	Requests      int64
	CacheHits     int64
	Coalesced     int64 // requests served by joining an in-flight fetch (subset of CacheHits)
	OriginFetches int64
	FetchErrors   int64
	Rejections    int64
	BytesIn       int64
	BytesOut      int64
	ProxyTime     time.Duration
}

// cacheEntry is one LRU cache element.
type cacheEntry struct {
	key  string
	data []byte
}

// flight is one in-progress origin fetch + pipeline run that concurrent
// requests for the same key share.
type flight struct {
	done     chan struct{} // closed when the leader finishes
	data     []byte
	rejected bool
	err      error
}

// Proxy is the static-service host.
type Proxy struct {
	origin Origin
	cfg    Config

	mu         sync.Mutex
	cache      map[string]*list.Element // key: arch + "\x00" + class
	lru        *list.List               // front = most recently used
	cacheBytes int

	flightMu sync.Mutex
	flights  map[string]*flight

	inFlight atomic.Int64

	statRequests      atomic.Int64
	statCacheHits     atomic.Int64
	statCoalesced     atomic.Int64
	statOriginFetches atomic.Int64
	statFetchErrors   atomic.Int64
	statRejections    atomic.Int64
	statBytesIn       atomic.Int64
	statBytesOut      atomic.Int64
	statProxyTime     atomic.Int64 // nanoseconds
}

// connectionMemory is the modeled per-connection server memory (socket
// buffers, HTTP state, worker stack) held for an in-flight request.
const connectionMemory = 256 << 10

// New creates a proxy in front of origin.
func New(origin Origin, cfg Config) *Proxy {
	if cfg.Pipeline == nil {
		cfg.Pipeline = rewrite.NewPipeline()
	}
	if cfg.MemoryBudget > 0 && cfg.PagingPenaltyPerMB == 0 {
		cfg.PagingPenaltyPerMB = 2 * time.Millisecond
	}
	return &Proxy{
		origin:  origin,
		cfg:     cfg,
		cache:   make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:      p.statRequests.Load(),
		CacheHits:     p.statCacheHits.Load(),
		Coalesced:     p.statCoalesced.Load(),
		OriginFetches: p.statOriginFetches.Load(),
		FetchErrors:   p.statFetchErrors.Load(),
		Rejections:    p.statRejections.Load(),
		BytesIn:       p.statBytesIn.Load(),
		BytesOut:      p.statBytesOut.Load(),
		ProxyTime:     time.Duration(p.statProxyTime.Load()),
	}
}

// CacheEntries returns the cached keys, sorted (diagnostics).
func (p *Proxy) CacheEntries() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.cache))
	for k := range p.cache {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Request serves one class to one client: the full intercept path.
func (p *Proxy) Request(client, arch, class string) ([]byte, error) {
	start := time.Now()
	p.statRequests.Add(1)
	key := arch + "\x00" + class

	if p.cfg.CacheEnabled {
		data, ok := p.memGet(key)
		if !ok {
			// Second level: the on-disk cache (survives proxy restarts).
			if d, hit := p.diskCacheGet(key); hit {
				data, ok = d, true
				p.storeMem(key, d)
			}
		}
		if ok {
			p.statCacheHits.Add(1)
			p.statBytesOut.Add(int64(len(data)))
			p.audit(RequestRecord{
				Client: client, Arch: arch, Class: class, Bytes: len(data),
				CacheHit: true, Duration: time.Since(start),
			})
			return data, nil
		}
	}

	// Coalesce concurrent misses: if another request is already fetching
	// and transforming this key, join it instead of duplicating the
	// origin fetch and the pipeline run.
	p.flightMu.Lock()
	if f, ok := p.flights[key]; ok {
		p.flightMu.Unlock()
		return p.awaitFlight(f, client, arch, class, start)
	}
	f := &flight{done: make(chan struct{})}
	p.flights[key] = f
	p.flightMu.Unlock()

	data, err := p.lead(f, key, client, arch, class, start)
	// Publish the outcome only after the cache holds the result (success
	// path inside lead), so new requests find either the flight or the
	// cached entry; then wake the followers.
	p.flightMu.Lock()
	delete(p.flights, key)
	p.flightMu.Unlock()
	close(f.done)
	return data, err
}

// awaitFlight is the follower path: hold connection memory (the client
// is a live connection even while it waits), share the leader's result,
// and emit this client's own audit record marked as a coalesced hit.
func (p *Proxy) awaitFlight(f *flight, client, arch, class string, start time.Time) ([]byte, error) {
	p.inFlight.Add(connectionMemory)
	defer p.inFlight.Add(-connectionMemory)
	<-f.done
	if f.err != nil {
		p.statFetchErrors.Add(1)
		p.audit(RequestRecord{
			Client: client, Arch: arch, Class: class,
			Coalesced: true, FetchError: f.err.Error(), Duration: time.Since(start),
		})
		return nil, f.err
	}
	p.statCacheHits.Add(1)
	p.statCoalesced.Add(1)
	p.statBytesOut.Add(int64(len(f.data)))
	p.audit(RequestRecord{
		Client: client, Arch: arch, Class: class, Bytes: len(f.data),
		CacheHit: true, Coalesced: true, Rejected: f.rejected,
		Duration: time.Since(start),
	})
	return f.data, nil
}

// lead is the miss path run by exactly one request per key: origin
// fetch, memory model, pipeline, caching, auditing. The result is left
// in f for the followers.
func (p *Proxy) lead(f *flight, key, client, arch, class string, start time.Time) ([]byte, error) {
	// Memory model: an in-flight request holds connection state and
	// transfer buffers for its whole lifetime (including the upstream
	// fetch), plus the parsed class afterwards.
	held := int64(connectionMemory)
	p.inFlight.Add(held)
	defer func() { p.inFlight.Add(-held) }()

	p.statOriginFetches.Add(1)
	raw, err := p.origin.Fetch(class)
	if err != nil {
		f.err = err
		p.statFetchErrors.Add(1)
		p.audit(RequestRecord{
			Client: client, Arch: arch, Class: class,
			FetchError: err.Error(), Duration: time.Since(start),
		})
		return nil, err
	}
	p.statBytesIn.Add(int64(len(raw)))
	extra := int64(len(raw)) * 4 // parsed form is a few times the wire size
	held += extra
	total := p.inFlight.Add(extra)
	if p.cfg.MemoryBudget > 0 && total > p.cfg.MemoryBudget {
		overMB := float64(total-p.cfg.MemoryBudget) / (1 << 20)
		penalty := time.Duration(overMB * float64(p.cfg.PagingPenaltyPerMB))
		if penalty > 0 {
			time.Sleep(penalty)
		}
	}

	tstart := time.Now()
	ctx := rewrite.NewContext()
	ctx.ClientID = client
	ctx.ClientArch = arch
	out, perr := p.cfg.Pipeline.Process(raw, ctx)
	rejected := false
	if perr != nil {
		// A verification (or other service) rejection becomes a
		// replacement class that raises VerifyError on the client.
		rejected = true
		p.statRejections.Add(1)
		repl, rerr := verifier.MakeErrorClass(class, perr.Error())
		if rerr != nil {
			err := fmt.Errorf("proxy: building replacement for %s: %v (original error: %w)", class, rerr, perr)
			f.err = err
			p.statFetchErrors.Add(1)
			p.audit(RequestRecord{
				Client: client, Arch: arch, Class: class, Rejected: true,
				FetchError: err.Error(), Duration: time.Since(start),
			})
			return nil, err
		}
		out = repl
	}
	proxyTime := time.Since(tstart)
	p.statProxyTime.Add(int64(proxyTime))

	if p.cfg.CacheEnabled {
		p.storeMem(key, out)
		p.diskCachePut(key, out)
	}
	f.data, f.rejected = out, rejected

	p.statBytesOut.Add(int64(len(out)))
	p.audit(RequestRecord{
		Client: client, Arch: arch, Class: class, Bytes: len(out),
		Rejected: rejected, Duration: time.Since(start), ProxyTime: proxyTime,
	})
	return out, nil
}

// memGet looks up the in-memory cache; a hit refreshes LRU recency.
func (p *Proxy) memGet(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.cache[key]
	if !ok {
		return nil, false
	}
	p.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// storeMem inserts or replaces an entry in the in-memory cache with LRU
// eviction. A replacement (e.g. a fresher transform after a pipeline
// config change, or a disk/memory disagreement) overwrites the stale
// bytes and fixes the byte accounting.
func (p *Proxy) storeMem(key string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.CacheBudget > 0 && len(data) > p.cfg.CacheBudget {
		// Caching this would evict everything and the entry still could
		// not stay resident; serve it uncached instead.
		log.Printf("proxy: cache: entry %q (%d bytes) exceeds cache budget (%d); not cached",
			keyClass(key), len(data), p.cfg.CacheBudget)
		return
	}
	if el, ok := p.cache[key]; ok {
		ent := el.Value.(*cacheEntry)
		p.cacheBytes += len(data) - len(ent.data)
		ent.data = data
		p.lru.MoveToFront(el)
	} else {
		p.cache[key] = p.lru.PushFront(&cacheEntry{key: key, data: data})
		p.cacheBytes += len(data)
	}
	for p.cfg.CacheBudget > 0 && p.cacheBytes > p.cfg.CacheBudget {
		back := p.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		p.lru.Remove(back)
		delete(p.cache, ent.key)
		p.cacheBytes -= len(ent.data)
	}
}

// keyClass extracts the class name from an arch\x00class cache key for
// human-readable logs.
func keyClass(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[i+1:]
		}
	}
	return key
}

func (p *Proxy) audit(r RequestRecord) {
	if p.cfg.OnAudit != nil {
		p.cfg.OnAudit(r)
	}
}
