package proxy

// Unit tests for the admission engine itself: shed ordering, fair
// shares, deadline-aware drops, and the queue mechanics. End-to-end
// overload behavior through Proxy.Request lives in
// overload_chaos_test.go.

import (
	"context"
	"errors"
	"testing"
	"time"

	"dvm/internal/telemetry"
)

func newTestAdmission(limit, maxQueue int, deadline time.Duration, policy string, svc func() time.Duration) *admission {
	reg := telemetry.NewRegistry("proxy")
	if svc == nil {
		svc = func() time.Duration { return 0 }
	}
	return newAdmission(Config{
		MaxConcurrent: limit,
		MaxQueue:      maxQueue,
		QueueDeadline: deadline,
		ShedPolicy:    policy,
	}, reg, svc, reg.Counter("requests_total"))
}

// waitQueued polls until the admission queue holds want waiters.
func waitQueued(t *testing.T, a *admission, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		q := a.queued
		a.mu.Unlock()
		if q == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters", want)
}

func mustAdmit(t *testing.T, a *admission, client string) {
	t.Helper()
	out, err := a.acquire(context.Background(), client, false, -1)
	if out != admitOK || err != nil {
		t.Fatalf("acquire(%s) = %v, %v; want admitOK", client, out, err)
	}
}

func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *admission
	for i := 0; i < 100; i++ {
		if out, err := a.acquire(context.Background(), "c", false, -1); out != admitOK || err != nil {
			t.Fatalf("nil admission refused: %v, %v", out, err)
		}
		a.release()
	}
}

func TestAdmissionGrantsFreedSlotToWaiter(t *testing.T) {
	a := newTestAdmission(1, 4, 0, ShedFIFO, nil)
	mustAdmit(t, a, "c1")
	got := make(chan error, 1)
	go func() {
		out, err := a.acquire(context.Background(), "c2", false, -1)
		if out != admitOK {
			err = errors.New("waiter not admitted")
		}
		got <- err
	}()
	waitQueued(t, a, 1)
	a.release()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	if n := a.cAdmitted.Load(); n != 2 {
		t.Errorf("admitted_total = %d, want 2", n)
	}
	a.release()
}

func TestAdmissionQueueFullRejects(t *testing.T) {
	a := newTestAdmission(1, 1, 0, ShedFIFO, nil)
	mustAdmit(t, a, "c1")
	go a.acquire(context.Background(), "c2", false, -1)
	waitQueued(t, a, 1)
	out, err := a.acquire(context.Background(), "c3", false, -1)
	if out != admitShed || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire over full queue = %v, %v; want admitShed/ErrOverloaded", out, err)
	}
	if n := a.cShedFull.Load(); n != 1 {
		t.Errorf("shed_queue_full_total = %d, want 1", n)
	}
	a.release() // drain the queued waiter
	a.release()
}

// TestAdmissionStaleBeforeReject is the shed ordering contract: under
// queue pressure a request that a stale cache entry could answer is
// shed onto that entry (still served) before anyone is rejected.
func TestAdmissionStaleBeforeReject(t *testing.T) {
	a := newTestAdmission(1, 2, 0, ShedPriority, nil)
	mustAdmit(t, a, "c1")
	go a.acquire(context.Background(), "c2", false, -1)
	waitQueued(t, a, 1) // queued*2 >= maxQueue: pressured

	out, err := a.acquire(context.Background(), "c3", true, -1)
	if out != admitStale || err != nil {
		t.Fatalf("pressured acquire with stale = %v, %v; want admitStale", out, err)
	}
	if n := a.cShedStale.Load(); n != 1 {
		t.Errorf("shed_stale_served_total = %d, want 1", n)
	}
	// The same request without a stale fallback queues (not pressured
	// past full), and with a full queue is rejected.
	go a.acquire(context.Background(), "c4", false, -1)
	waitQueued(t, a, 2)
	if out, err := a.acquire(context.Background(), "c5", true, -1); out != admitStale || err != nil {
		t.Fatalf("full-queue acquire with stale = %v, %v; want admitStale (stale outranks reject)", out, err)
	}
	if out, err := a.acquire(context.Background(), "c6", false, -1); out != admitShed || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full-queue acquire without stale = %v, %v; want rejection", out, err)
	}
	a.release()
	a.release()
	a.release()
}

// TestAdmissionFIFOIgnoresStale: the fifo policy has no priority
// tricks — a stale fallback does not change the tail-drop decision.
func TestAdmissionFIFOIgnoresStale(t *testing.T) {
	a := newTestAdmission(1, 1, 0, ShedFIFO, nil)
	mustAdmit(t, a, "c1")
	go a.acquire(context.Background(), "c2", false, -1)
	waitQueued(t, a, 1)
	if out, err := a.acquire(context.Background(), "c3", true, -1); out != admitShed || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fifo full-queue acquire = %v, %v; want rejection despite stale", out, err)
	}
	a.release()
	a.release()
}

// TestAdmissionFairShare: a client hogging the queue is shed once it
// exceeds its share of the slots while other clients still get in.
func TestAdmissionFairShare(t *testing.T) {
	a := newTestAdmission(1, 4, 0, ShedPriority, nil)
	mustAdmit(t, a, "holder")
	// hog queues two flights, other one: active clients = 2, share = 2.
	go a.acquire(context.Background(), "hog", false, -1)
	waitQueued(t, a, 1)
	go a.acquire(context.Background(), "hog", false, -1)
	waitQueued(t, a, 2)
	go a.acquire(context.Background(), "other", false, -1)
	waitQueued(t, a, 3)

	out, err := a.acquire(context.Background(), "hog", false, -1)
	if out != admitShed || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("hog over share = %v, %v; want rejection", out, err)
	}
	if n := a.cShedFair.Load(); n != 1 {
		t.Errorf("shed_fair_share_total = %d, want 1", n)
	}
	// A second distinct client still fits (queue not full, share 1 used 0).
	go a.acquire(context.Background(), "third", false, -1)
	waitQueued(t, a, 4)
	for i := 0; i < 4; i++ {
		a.release()
	}
	a.release()
}

// TestAdmissionPeerShedBeforeClients: once the queue is 3/4 full, a
// cluster sibling's fill (which has its own origin fallback) is shed
// while a local client with the same timing still queues.
func TestAdmissionPeerShedBeforeClients(t *testing.T) {
	a := newTestAdmission(1, 4, 0, ShedPriority, nil)
	mustAdmit(t, a, "holder")
	for i, c := range []string{"a", "b", "c"} {
		go a.acquire(context.Background(), c, false, -1)
		waitQueued(t, a, i+1)
	}
	out, err := a.acquire(context.Background(), "peer:http://sibling", false, -1)
	if out != admitShed || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("peer fill at 3/4 pressure = %v, %v; want rejection", out, err)
	}
	if n := a.cShedPeer.Load(); n != 1 {
		t.Errorf("shed_backpressure_total = %d, want 1", n)
	}
	// A local client in the same state is still admitted to the queue.
	got := make(chan admitOutcome, 1)
	go func() {
		out, _ := a.acquire(context.Background(), "local", false, -1)
		got <- out
	}()
	waitQueued(t, a, 4)
	for i := 0; i < 4; i++ {
		a.release()
	}
	if out := <-got; out != admitOK {
		t.Errorf("local client = %v, want admitOK", out)
	}
	for i := 0; i < 4; i++ {
		a.release()
	}
}

// TestAdmissionDeadlineAwareDrop: a request whose remaining budget
// cannot cover the expected wait plus service time is refused at the
// door instead of queued to die.
func TestAdmissionDeadlineAwareDrop(t *testing.T) {
	a := newTestAdmission(1, 10, 0, ShedPriority, func() time.Duration { return 100 * time.Millisecond })
	mustAdmit(t, a, "c1")
	out, err := a.acquire(context.Background(), "c2", false, 10*time.Millisecond)
	if out != admitShed || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("doomed request = %v, %v; want rejection", out, err)
	}
	if n := a.cShedDeadline.Load(); n != 1 {
		t.Errorf("shed_deadline_total = %d, want 1", n)
	}
	// With a stale fallback the doomed request degrades instead.
	if out, err := a.acquire(context.Background(), "c3", true, 10*time.Millisecond); out != admitStale || err != nil {
		t.Fatalf("doomed request with stale = %v, %v; want admitStale", out, err)
	}
	// A generous budget queues normally.
	got := make(chan admitOutcome, 1)
	go func() {
		out, _ := a.acquire(context.Background(), "c4", false, 10*time.Second)
		got <- out
	}()
	waitQueued(t, a, 1)
	a.release()
	if out := <-got; out != admitOK {
		t.Errorf("well-budgeted request = %v, want admitOK", out)
	}
	a.release()
}

// TestAdmissionQueueDeadline: a waiter stuck past QueueDeadline is shed.
func TestAdmissionQueueDeadline(t *testing.T) {
	a := newTestAdmission(1, 4, 20*time.Millisecond, ShedPriority, nil)
	mustAdmit(t, a, "c1")
	out, err := a.acquire(context.Background(), "c2", false, -1)
	if out != admitShed || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired waiter = %v, %v; want rejection", out, err)
	}
	if n := a.cShedDeadline.Load(); n != 1 {
		t.Errorf("shed_deadline_total = %d, want 1", n)
	}
	// With a stale fallback the expired waiter degrades instead.
	if out, err := a.acquire(context.Background(), "c3", true, -1); out != admitStale || err != nil {
		t.Fatalf("expired waiter with stale = %v, %v; want admitStale", out, err)
	}
	a.release()
}

// TestAdmissionCanceledWaiter: a waiter whose ctx dies while queued is
// an abandonment (ctx error), not a shed.
func TestAdmissionCanceledWaiter(t *testing.T) {
	a := newTestAdmission(1, 4, 0, ShedPriority, nil)
	mustAdmit(t, a, "c1")
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		out, err := a.acquire(ctx, "c2", false, -1)
		if out != admitShed {
			err = errors.New("canceled waiter not reported as shed outcome")
		}
		got <- err
	}()
	waitQueued(t, a, 1)
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter error = %v, want context.Canceled", err)
	}
	if n := a.shedTotal(); n != 0 {
		t.Errorf("shed counters = %d after a cancellation, want 0", n)
	}
	a.release()
}

// TestAdmissionRoundRobinAcrossClients: freed slots rotate over the
// queued clients instead of draining one client's backlog first.
func TestAdmissionRoundRobinAcrossClients(t *testing.T) {
	a := newTestAdmission(1, 8, 0, ShedFIFO, nil)
	mustAdmit(t, a, "holder")
	order := make(chan string, 3)
	enqueue := func(name, client string, depth int) {
		go func() {
			if out, _ := a.acquire(context.Background(), client, false, -1); out == admitOK {
				order <- name
				a.release()
			}
		}()
		waitQueued(t, a, depth)
	}
	enqueue("A1", "clientA", 1)
	enqueue("A2", "clientA", 2)
	enqueue("B1", "clientB", 3)
	a.release()
	got := []string{<-order, <-order, <-order}
	want := []string{"A1", "B1", "A2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (round-robin over clients)", got, want)
		}
	}
}
