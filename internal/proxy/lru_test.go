package proxy

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// White-box tests for the LRU result cache: eviction order, byte
// accounting under replacement, and oversized-entry handling.

func lruProxy(budget int) *Proxy {
	return New(MapOrigin{}, Config{CacheEnabled: true, CacheBudget: budget})
}

func TestLRUCache(t *testing.T) {
	pad := func(n int) []byte { return bytes.Repeat([]byte{'x'}, n) }
	tests := []struct {
		name   string
		budget int
		run    func(p *Proxy)
		want   []string // surviving keys, sorted
		bytes  int
	}{
		{
			name:   "fifo order without access",
			budget: 200,
			run: func(p *Proxy) {
				p.storeMem("a", pad(100), nil, false)
				p.storeMem("b", pad(100), nil, false)
				p.storeMem("c", pad(100), nil, false) // evicts a (oldest)
			},
			want:  []string{"b", "c"},
			bytes: 200,
		},
		{
			name:   "hit refreshes recency",
			budget: 200,
			run: func(p *Proxy) {
				p.storeMem("a", pad(100), nil, false)
				p.storeMem("b", pad(100), nil, false)
				p.memGet("a")             // a now most recent
				p.storeMem("c", pad(100), nil, false) // evicts b, not a
			},
			want:  []string{"a", "c"},
			bytes: 200,
		},
		{
			name:   "re-store refreshes recency",
			budget: 200,
			run: func(p *Proxy) {
				p.storeMem("a", pad(100), nil, false)
				p.storeMem("b", pad(100), nil, false)
				p.storeMem("a", pad(100), nil, false) // replacement also refreshes
				p.storeMem("c", pad(100), nil, false) // evicts b
			},
			want:  []string{"a", "c"},
			bytes: 200,
		},
		{
			name:   "replacement fixes byte accounting",
			budget: 300,
			run: func(p *Proxy) {
				p.storeMem("a", pad(100), nil, false)
				p.storeMem("a", pad(50), nil, false) // shrink: 100 -> 50
				p.storeMem("b", pad(100), nil, false)
				p.storeMem("a", pad(150), nil, false) // grow: 50 -> 150
			},
			want:  []string{"a", "b"},
			bytes: 250,
		},
		{
			name:   "replacement growth can evict others",
			budget: 200,
			run: func(p *Proxy) {
				p.storeMem("a", pad(100), nil, false)
				p.storeMem("b", pad(100), nil, false)
				p.storeMem("b", pad(150), nil, false) // grows over budget; evicts a
			},
			want:  []string{"b"},
			bytes: 150,
		},
		{
			name:   "oversized entry skipped, cache intact",
			budget: 200,
			run: func(p *Proxy) {
				p.storeMem("a", pad(100), nil, false)
				p.storeMem("big", pad(500), nil, false) // larger than the whole budget
			},
			want:  []string{"a"},
			bytes: 100,
		},
		{
			name:   "oversized replacement of resident key skipped",
			budget: 200,
			run: func(p *Proxy) {
				p.storeMem("a", pad(100), nil, false)
				p.storeMem("a", pad(500), nil, false) // stale entry stays; oversized skipped
			},
			want:  []string{"a"},
			bytes: 100,
		},
		{
			name:   "unlimited budget never evicts",
			budget: 0,
			run: func(p *Proxy) {
				for i := 0; i < 10; i++ {
					p.storeMem(fmt.Sprintf("k%d", i), pad(100), nil, false)
				}
			},
			want:  []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9"},
			bytes: 1000,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := lruProxy(tc.budget)
			tc.run(p)
			got := p.CacheEntries()
			if len(got) != len(tc.want) {
				t.Fatalf("entries = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("entries = %v, want %v", got, tc.want)
				}
			}
			if p.cacheBytes != tc.bytes {
				t.Errorf("cacheBytes = %d, want %d", p.cacheBytes, tc.bytes)
			}
		})
	}
}

func TestLRUReplacementServesFreshBytes(t *testing.T) {
	p := lruProxy(0)
	p.storeMem("k", []byte("stale"), nil, false)
	p.storeMem("k", []byte("fresh"), nil, false)
	got, _, _, _, _, ok := p.memGet("k")
	if !ok || string(got) != "fresh" {
		t.Fatalf("memGet = %q, %v; want fresh entry", got, ok)
	}
}

func TestDiskCacheConcurrentWritersSameKey(t *testing.T) {
	p := New(MapOrigin{}, Config{CacheEnabled: true, DiskCacheDir: t.TempDir()})
	const writers = 16
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 4096)
	}
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.diskCachePut("k", payload(i), nil)
			if data, _, _, ok := p.diskCacheGet("k"); ok {
				// Any complete write is acceptable; torn bytes are not.
				if len(data) != 4096 || bytes.Count(data, data[:1]) != 4096 {
					t.Errorf("torn read: len=%d first=%q", len(data), data[0])
				}
			}
		}(i)
	}
	wg.Wait()
	data, _, _, ok := p.diskCacheGet("k")
	if !ok {
		t.Fatal("no entry after concurrent writes")
	}
	if len(data) != 4096 || bytes.Count(data, data[:1]) != 4096 {
		t.Fatalf("final entry torn: len=%d", len(data))
	}
}
