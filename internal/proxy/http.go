package proxy

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"dvm/internal/jvm"
)

// HTTP front end: clients fetch classes with
//
//	GET /classes/<internal/class/Name>.class
//	X-DVM-Client: <client id>      (from the handshake)
//	X-DVM-Arch:   <native format>  (e.g. "dvm" or "x86-jdk")
//
// The path mirrors how 1999-era browsers fetched applets through an HTTP
// proxy; the DVM headers carry what the paper's handshake protocol
// established out of band.

const classPathPrefix = "/classes/"

// Handler returns the proxy's HTTP interface.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(classPathPrefix, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, classPathPrefix)
		name = strings.TrimSuffix(name, ".class")
		if name == "" || strings.Contains(name, "..") {
			http.Error(w, "bad class name", http.StatusBadRequest)
			return
		}
		client := r.Header.Get("X-DVM-Client")
		arch := r.Header.Get("X-DVM-Arch")
		data, err := p.Request(client, arch, name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/java-vm")
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s := p.Stats()
		fmt.Fprintf(w, "requests=%d cacheHits=%d coalesced=%d fetchErrors=%d rejections=%d bytesOut=%d\n",
			s.Requests, s.CacheHits, s.Coalesced, s.FetchErrors, s.Rejections, s.BytesOut)
	})
	return mux
}

// Loader returns an in-process jvm.ClassLoader that resolves classes
// through the proxy directly (no HTTP hop) — the configuration used by
// most experiments, where client and proxy share a benchmark process.
func (p *Proxy) Loader(client, arch string) jvm.ClassLoader {
	return jvm.FuncLoader(func(name string) ([]byte, error) {
		return p.Request(client, arch, name)
	})
}

// HTTPLoader returns a jvm.ClassLoader that fetches classes over HTTP
// from a proxy at baseURL (e.g. "http://127.0.0.1:8642").
func HTTPLoader(baseURL, client, arch string) jvm.ClassLoader {
	httpClient := &http.Client{}
	return jvm.FuncLoader(func(name string) ([]byte, error) {
		req, err := http.NewRequest(http.MethodGet, baseURL+classPathPrefix+name+".class", nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-DVM-Client", client)
		req.Header.Set("X-DVM-Arch", arch)
		resp, err := httpClient.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return nil, fmt.Errorf("proxy: %s: %s: %s", name, resp.Status, strings.TrimSpace(string(body)))
		}
		return io.ReadAll(resp.Body)
	})
}
