package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dvm/internal/jvm"
	"dvm/internal/resilience"
	"dvm/internal/telemetry"
)

// HTTP front end: clients fetch classes with
//
//	GET /classes/<internal/class/Name>.class
//	X-DVM-Client: <client id>      (from the handshake)
//	X-DVM-Arch:   <native format>  (e.g. "dvm" or "x86-jdk")
//
// The path mirrors how 1999-era browsers fetched applets through an HTTP
// proxy; the DVM headers carry what the paper's handshake protocol
// established out of band.
//
// Failures map to distinct statuses so clients can react correctly:
// origin deadline exceeded -> 504, origin breaker open -> 503 with
// Retry-After, shed by admission control -> 429 with Retry-After,
// class unknown -> 404, other upstream failures -> 502.

const classPathPrefix = "/classes/"

// retryAfterSeconds is the hint sent with a 503 while the origin
// breaker is open: roughly the breaker cooldown.
const retryAfterSeconds = 5

// shedRetryAfterSeconds is the hint sent with a 429 when admission
// control sheds the request: overload is expected to clear on the queue
// drain timescale, much faster than a breaker cooldown.
const shedRetryAfterSeconds = 1

// StatusFor maps a Request error to its HTTP status. Exported so the
// cluster peer protocol serves the same status semantics as the
// client-facing front end.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, resilience.ErrOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound), errors.Is(err, fs.ErrNotExist):
		return http.StatusNotFound
	default:
		return http.StatusBadGateway
	}
}

// Handler returns the proxy's HTTP interface.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(classPathPrefix, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, classPathPrefix)
		name = strings.TrimSuffix(name, ".class")
		if name == "" || strings.Contains(name, "..") {
			http.Error(w, "bad class name", http.StatusBadRequest)
			return
		}
		client := r.Header.Get("X-DVM-Client")
		arch := r.Header.Get("X-DVM-Arch")
		// Continue the caller's trace (or start one) so the response can
		// carry this hop's per-stage spans back to the requester.
		tr := telemetry.JoinTrace(r.Header.Get(telemetry.TraceHeader))
		ctx := telemetry.WithTrace(r.Context(), tr)
		res, err := p.Request(ctx, Lookup{Client: client, Arch: arch, Class: name})
		w.Header().Set(telemetry.TraceHeader, tr.ID())
		w.Header().Set(telemetry.TraceSpansHeader, telemetry.EncodeSpans(tr.Spans()))
		if err != nil {
			status := StatusFor(err)
			if status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
			}
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", fmt.Sprint(shedRetryAfterSeconds))
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/java-vm")
		w.Header().Set("Content-Length", fmt.Sprint(len(res.Data)))
		_, _ = w.Write(res.Data)
	})
	mux.Handle("/healthz", telemetry.HealthHandler(p.Health))
	mux.Handle("/metrics", p.reg.Handler())
	return mux
}

// Loader returns an in-process jvm.ClassLoader that resolves classes
// through the proxy directly (no HTTP hop) — the configuration used by
// most experiments, where client and proxy share a benchmark process.
func (p *Proxy) Loader(client, arch string) jvm.ClassLoader {
	return p.LoaderContext(context.Background(), client, arch)
}

// LoaderContext is Loader with a caller-supplied base context: every
// class resolution inherits its cancellation and deadline.
func (p *Proxy) LoaderContext(ctx context.Context, client, arch string) jvm.ClassLoader {
	return jvm.FuncLoader(func(name string) ([]byte, error) {
		res, err := p.Request(ctx, Lookup{Client: client, Arch: arch, Class: name})
		return res.Data, err
	})
}

// maxClassBytes bounds a class response read by HTTPLoader: a
// misbehaving or compromised proxy must not be able to OOM the client.
// The largest classfiles in the paper's corpus are well under 1 MiB;
// 16 MiB leaves room for embedded resources.
const maxClassBytes = 16 << 20

// LoaderOptions parameterizes HTTPLoaderWith.
type LoaderOptions struct {
	// Timeout bounds each class fetch attempt (default 30s).
	Timeout time.Duration
	// Retries is the number of retries after a failed attempt.
	Retries int
	// BreakerThreshold trips the proxy-hop breaker after that many
	// consecutive failures (0 = default 5, <0 = disabled).
	BreakerThreshold int
	// BreakerCooldown is the open-state cooldown (default 5s).
	BreakerCooldown time.Duration
	// Context, when non-nil, is the base context for all fetches.
	Context context.Context
	// Transport overrides the HTTP transport (fault injection via
	// netsim in tests; custom dialers in deployments).
	Transport http.RoundTripper
	// ProbeInterval is how long HTTPLoaderMulti leaves a failed endpoint
	// ejected before re-probing it with live traffic (default 2s).
	ProbeInterval time.Duration
}

// HTTPLoader returns a jvm.ClassLoader that fetches classes over HTTP
// from a proxy at baseURL (e.g. "http://127.0.0.1:8642") with default
// resilience settings.
func HTTPLoader(baseURL, client, arch string) jvm.ClassLoader {
	return HTTPLoaderWith(baseURL, client, arch, LoaderOptions{})
}

// HTTPLoaderWith is HTTPLoader with explicit per-hop deadline, retry,
// and breaker settings. The class-load hop is availability-critical for
// the client (no class, no execution), so failures surface as load
// errors — the JVM turns them into NoClassDefFoundError.
func HTTPLoaderWith(baseURL, client, arch string, opts LoaderOptions) jvm.ClassLoader {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	base := opts.Context
	if base == nil {
		base = context.Background()
	}
	hop := resilience.Hop{
		Timeout: opts.Timeout,
		Retry:   resilience.RetryPolicy{Attempts: 1 + opts.Retries},
		Breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: opts.BreakerThreshold,
			Cooldown:  opts.BreakerCooldown,
		}),
	}
	httpClient := &http.Client{Timeout: opts.Timeout, Transport: opts.Transport}
	return jvm.FuncLoader(func(name string) ([]byte, error) {
		var data []byte
		err := hop.Do(base, func(ctx context.Context) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+classPathPrefix+name+".class", nil)
			if err != nil {
				return resilience.Permanent(err)
			}
			req.Header.Set("X-DVM-Client", client)
			req.Header.Set("X-DVM-Arch", arch)
			resp, err := httpClient.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
				err := fmt.Errorf("proxy: %s: %s: %s", name, resp.Status, strings.TrimSpace(string(body)))
				if resp.StatusCode == http.StatusNotFound {
					return resilience.Permanent(fmt.Errorf("%v: %w", err, ErrNotFound))
				}
				if resp.StatusCode >= 400 && resp.StatusCode < 500 {
					return resilience.Permanent(err) // our request is wrong; retrying won't fix it
				}
				return err
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, maxClassBytes+1))
			if err != nil {
				return err
			}
			if len(b) > maxClassBytes {
				return resilience.Permanent(fmt.Errorf("proxy: %s: response exceeds %d bytes", name, maxClassBytes))
			}
			data = b
			return nil
		})
		if err != nil {
			return nil, err
		}
		return data, nil
	})
}

// MultiLoader spreads class fetches round-robin across several proxy
// endpoints (a replica fleet or a sharded cluster) and fails over to
// the remaining endpoints when one is down. On top of the per-endpoint
// circuit breakers it tracks endpoint health explicitly: an endpoint
// whose load failed is ejected from the rotation for ProbeInterval,
// then re-probed with one live request — success restores it, failure
// re-ejects it. So a dead endpoint costs each client at most one failed
// attempt per probe interval instead of one per rotation pass, and a
// recovered endpoint rejoins within one interval without any operator
// action. A not-found answer is definitive (every cluster node can
// resolve every class) and stops the failover sweep.
type MultiLoader struct {
	urls    []string
	loaders []jvm.ClassLoader
	probe   time.Duration
	now     func() time.Time
	next    atomic.Uint64

	mu        sync.Mutex
	downUntil []time.Time
}

// HTTPLoaderMulti builds a MultiLoader over the endpoints.
func HTTPLoaderMulti(baseURLs []string, client, arch string, opts LoaderOptions) (*MultiLoader, error) {
	if len(baseURLs) == 0 {
		return nil, fmt.Errorf("proxy: HTTPLoaderMulti needs at least one endpoint")
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	m := &MultiLoader{
		urls:      append([]string(nil), baseURLs...),
		loaders:   make([]jvm.ClassLoader, len(baseURLs)),
		probe:     opts.ProbeInterval,
		now:       time.Now,
		downUntil: make([]time.Time, len(baseURLs)),
	}
	for i, u := range baseURLs {
		m.loaders[i] = HTTPLoaderWith(u, client, arch, opts)
	}
	return m, nil
}

// Down reports which endpoints are currently ejected from the rotation
// (by endpoint index, matching the constructor's baseURLs order).
func (m *MultiLoader) Down() []bool {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]bool, len(m.downUntil))
	for i, t := range m.downUntil {
		out[i] = now.Before(t)
	}
	return out
}

// ejected reports whether endpoint i is out of rotation at now.
func (m *MultiLoader) ejected(i int, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return now.Before(m.downUntil[i])
}

// noteResult updates endpoint i's health after one load attempt.
func (m *MultiLoader) noteResult(i int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.downUntil[i] = time.Time{}
	} else {
		m.downUntil[i] = m.now().Add(m.probe)
	}
}

// Load implements jvm.ClassLoader: try endpoints in rotation order,
// healthy ones first; fall back to the ejected ones only when every
// healthy endpoint has failed (an all-down fleet must still be retried
// — the tracker can be wrong, a request cannot be dropped on a guess).
func (m *MultiLoader) Load(name string) ([]byte, error) {
	start := int(m.next.Add(1)-1) % len(m.loaders)
	now := m.now()
	var firstErr error
	tried := make([]bool, len(m.loaders))
	attempt := func(i int) ([]byte, error, bool) {
		tried[i] = true
		data, err := m.loaders[i].Load(name)
		if err == nil {
			m.noteResult(i, true)
			return data, nil, true
		}
		if errors.Is(err, ErrNotFound) {
			m.noteResult(i, true) // the endpoint answered; the class is the problem
			return nil, err, true
		}
		m.noteResult(i, false)
		if firstErr == nil {
			firstErr = err
		}
		return nil, err, false
	}
	for i := 0; i < len(m.loaders); i++ {
		j := (start + i) % len(m.loaders)
		if m.ejected(j, now) {
			continue
		}
		if data, err, done := attempt(j); done {
			return data, err
		}
	}
	for i := 0; i < len(m.loaders); i++ {
		j := (start + i) % len(m.loaders)
		if tried[j] {
			continue
		}
		if data, err, done := attempt(j); done {
			return data, err
		}
	}
	return nil, firstErr
}
