package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"dvm/internal/jvm"
	"dvm/internal/resilience"
	"dvm/internal/telemetry"
)

// HTTP front end: clients fetch classes with
//
//	GET /classes/<internal/class/Name>.class
//	X-DVM-Client: <client id>      (from the handshake)
//	X-DVM-Arch:   <native format>  (e.g. "dvm" or "x86-jdk")
//
// The path mirrors how 1999-era browsers fetched applets through an HTTP
// proxy; the DVM headers carry what the paper's handshake protocol
// established out of band.
//
// Failures map to distinct statuses so clients can react correctly:
// origin deadline exceeded -> 504, origin breaker open -> 503 with
// Retry-After, shed by admission control -> 429 with Retry-After,
// class unknown -> 404, other upstream failures -> 502.

const classPathPrefix = "/classes/"

// retryAfterSeconds is the hint sent with a 503 while the origin
// breaker is open: roughly the breaker cooldown.
const retryAfterSeconds = 5

// shedRetryAfterSeconds is the hint sent with a 429 when admission
// control sheds the request: overload is expected to clear on the queue
// drain timescale, much faster than a breaker cooldown.
const shedRetryAfterSeconds = 1

// StatusFor maps a Request error to its HTTP status. Exported so the
// cluster peer protocol serves the same status semantics as the
// client-facing front end.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, resilience.ErrOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound), errors.Is(err, fs.ErrNotExist):
		return http.StatusNotFound
	default:
		return http.StatusBadGateway
	}
}

// Handler returns the proxy's HTTP interface.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(classPathPrefix, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, classPathPrefix)
		name = strings.TrimSuffix(name, ".class")
		if name == "" || strings.Contains(name, "..") {
			http.Error(w, "bad class name", http.StatusBadRequest)
			return
		}
		client := r.Header.Get("X-DVM-Client")
		arch := r.Header.Get("X-DVM-Arch")
		// Continue the caller's trace (or start one) so the response can
		// carry this hop's per-stage spans back to the requester.
		tr := telemetry.JoinTrace(r.Header.Get(telemetry.TraceHeader))
		ctx := telemetry.WithTrace(r.Context(), tr)
		res, err := p.Request(ctx, Lookup{Client: client, Arch: arch, Class: name})
		w.Header().Set(telemetry.TraceHeader, tr.ID())
		w.Header().Set(telemetry.TraceSpansHeader, telemetry.EncodeSpans(tr.Spans()))
		if err != nil {
			status := StatusFor(err)
			if status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
			}
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", fmt.Sprint(shedRetryAfterSeconds))
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/java-vm")
		w.Header().Set("Content-Length", fmt.Sprint(len(res.Data)))
		_, _ = w.Write(res.Data)
	})
	mux.Handle("/healthz", telemetry.HealthHandler(p.Health))
	mux.Handle("/metrics", p.reg.Handler())
	return mux
}

// Loader returns an in-process jvm.ClassLoader that resolves classes
// through the proxy directly (no HTTP hop) — the configuration used by
// most experiments, where client and proxy share a benchmark process.
func (p *Proxy) Loader(client, arch string) jvm.ClassLoader {
	return p.LoaderContext(context.Background(), client, arch)
}

// LoaderContext is Loader with a caller-supplied base context: every
// class resolution inherits its cancellation and deadline.
func (p *Proxy) LoaderContext(ctx context.Context, client, arch string) jvm.ClassLoader {
	return jvm.FuncLoader(func(name string) ([]byte, error) {
		res, err := p.Request(ctx, Lookup{Client: client, Arch: arch, Class: name})
		return res.Data, err
	})
}

// maxClassBytes bounds a class response read by HTTPLoader: a
// misbehaving or compromised proxy must not be able to OOM the client.
// The largest classfiles in the paper's corpus are well under 1 MiB;
// 16 MiB leaves room for embedded resources.
const maxClassBytes = 16 << 20

// LoaderOptions parameterizes HTTPLoaderWith.
type LoaderOptions struct {
	// Timeout bounds each class fetch attempt (default 30s).
	Timeout time.Duration
	// Retries is the number of retries after a failed attempt.
	Retries int
	// BreakerThreshold trips the proxy-hop breaker after that many
	// consecutive failures (0 = default 5, <0 = disabled).
	BreakerThreshold int
	// BreakerCooldown is the open-state cooldown (default 5s).
	BreakerCooldown time.Duration
	// Context, when non-nil, is the base context for all fetches.
	Context context.Context
}

// HTTPLoader returns a jvm.ClassLoader that fetches classes over HTTP
// from a proxy at baseURL (e.g. "http://127.0.0.1:8642") with default
// resilience settings.
func HTTPLoader(baseURL, client, arch string) jvm.ClassLoader {
	return HTTPLoaderWith(baseURL, client, arch, LoaderOptions{})
}

// HTTPLoaderWith is HTTPLoader with explicit per-hop deadline, retry,
// and breaker settings. The class-load hop is availability-critical for
// the client (no class, no execution), so failures surface as load
// errors — the JVM turns them into NoClassDefFoundError.
func HTTPLoaderWith(baseURL, client, arch string, opts LoaderOptions) jvm.ClassLoader {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	base := opts.Context
	if base == nil {
		base = context.Background()
	}
	hop := resilience.Hop{
		Timeout: opts.Timeout,
		Retry:   resilience.RetryPolicy{Attempts: 1 + opts.Retries},
		Breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: opts.BreakerThreshold,
			Cooldown:  opts.BreakerCooldown,
		}),
	}
	httpClient := &http.Client{Timeout: opts.Timeout}
	return jvm.FuncLoader(func(name string) ([]byte, error) {
		var data []byte
		err := hop.Do(base, func(ctx context.Context) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+classPathPrefix+name+".class", nil)
			if err != nil {
				return resilience.Permanent(err)
			}
			req.Header.Set("X-DVM-Client", client)
			req.Header.Set("X-DVM-Arch", arch)
			resp, err := httpClient.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
				err := fmt.Errorf("proxy: %s: %s: %s", name, resp.Status, strings.TrimSpace(string(body)))
				if resp.StatusCode == http.StatusNotFound {
					return resilience.Permanent(fmt.Errorf("%v: %w", err, ErrNotFound))
				}
				if resp.StatusCode >= 400 && resp.StatusCode < 500 {
					return resilience.Permanent(err) // our request is wrong; retrying won't fix it
				}
				return err
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, maxClassBytes+1))
			if err != nil {
				return err
			}
			if len(b) > maxClassBytes {
				return resilience.Permanent(fmt.Errorf("proxy: %s: response exceeds %d bytes", name, maxClassBytes))
			}
			data = b
			return nil
		})
		if err != nil {
			return nil, err
		}
		return data, nil
	})
}

// HTTPLoaderMulti returns a jvm.ClassLoader that spreads class fetches
// round-robin across several proxy endpoints (a replica fleet or a
// sharded cluster) and fails over to the remaining endpoints when one
// is down. Each endpoint keeps its own circuit breaker, so a dead proxy
// is skipped cheaply after a few failures. A not-found answer is
// definitive (every cluster node can resolve every class) and stops the
// failover sweep.
func HTTPLoaderMulti(baseURLs []string, client, arch string, opts LoaderOptions) (jvm.ClassLoader, error) {
	if len(baseURLs) == 0 {
		return nil, fmt.Errorf("proxy: HTTPLoaderMulti needs at least one endpoint")
	}
	if len(baseURLs) == 1 {
		return HTTPLoaderWith(baseURLs[0], client, arch, opts), nil
	}
	loaders := make([]jvm.ClassLoader, len(baseURLs))
	for i, u := range baseURLs {
		loaders[i] = HTTPLoaderWith(u, client, arch, opts)
	}
	var next atomic.Uint64
	return jvm.FuncLoader(func(name string) ([]byte, error) {
		start := int(next.Add(1)-1) % len(loaders)
		var firstErr error
		for i := 0; i < len(loaders); i++ {
			data, err := loaders[(start+i)%len(loaders)].Load(name)
			if err == nil {
				return data, nil
			}
			if errors.Is(err, ErrNotFound) {
				return nil, err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return nil, firstErr
	}), nil
}
