package proxy_test

// Overload chaos suite: detached coalesced flights under client
// disconnects, bounded-queue rejection, and shed-before-reject
// ordering, end to end through Proxy.Request and the HTTP front end.
// Deterministic gates instead of sleeps wherever possible; safe under
// -race.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
)

// overloadCorpus builds n distinct single-class applets so each request
// is its own flight.
func overloadCorpus(t *testing.T, n int) proxy.MapOrigin {
	t.Helper()
	out := make(proxy.MapOrigin, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("app/Load%03d", i)
		b := classgen.NewClass(name, "java/lang/Object")
		b.DefaultInit()
		m := b.Method(classfile.AccPublic|classfile.AccStatic, "val", "()I")
		m.IConst(int32(i)).IReturn()
		data, err := b.BuildBytes()
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// gateOrigin blocks fetches (while blocking is set) until release is
// closed or the fetch context dies, and counts the fetches that reached
// the gate — the deterministic way to hold a flight mid-fetch.
type gateOrigin struct {
	inner    proxy.Origin
	blocking atomic.Bool
	entered  atomic.Int64
	release  chan struct{}
}

func newGateOrigin(inner proxy.Origin) *gateOrigin {
	g := &gateOrigin{inner: inner, release: make(chan struct{})}
	g.blocking.Store(true)
	return g
}

func (g *gateOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	g.entered.Add(1)
	if g.blocking.Load() {
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.Fetch(ctx, name)
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func queueDepth(p *proxy.Proxy) float64 { return p.Health().Gauges["queue_depth"] }

// TestCoalescedFlightSurvivesLeaderCancel is the regression test for
// the detached-flight bugfix: the client that happened to start the
// flight disconnects mid-fetch, and a follower with a generous deadline
// must still get the bytes — the flight's work no longer runs on the
// leader's request context.
func TestCoalescedFlightSurvivesLeaderCancel(t *testing.T) {
	g := newGateOrigin(origin(t))
	p := proxy.New(g, proxy.Config{Pipeline: rewrite.NewPipeline(), CacheEnabled: true})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan error, 1)
	go func() {
		_, err := p.Request(leaderCtx, proxy.Lookup{Client: "leader", Arch: "dvm", Class: "app/Dep"})
		leaderDone <- err
	}()
	waitFor(t, "flight to reach the origin", func() bool { return g.entered.Load() == 1 })

	type followerResult struct {
		res proxy.Result
		err error
	}
	followerDone := make(chan followerResult, 1)
	go func() {
		res, err := p.Request(context.Background(), proxy.Lookup{Client: "follower", Arch: "dvm", Class: "app/Dep"})
		followerDone <- followerResult{res, err}
	}()
	// The worker holds one connection's memory; the follower joining the
	// flight holds a second.
	waitFor(t, "follower to join the flight", func() bool {
		return p.Health().Gauges["inflight_bytes"] >= 2*256<<10
	})

	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader err = %v, want context.Canceled", err)
	}

	close(g.release)
	fr := <-followerDone
	if fr.err != nil {
		t.Fatalf("follower failed after leader disconnect: %v", fr.err)
	}
	if len(fr.res.Data) == 0 || !fr.res.Info.Coalesced {
		t.Fatalf("follower result = %d bytes, coalesced=%v; want coalesced bytes", len(fr.res.Data), fr.res.Info.Coalesced)
	}
	s := p.Stats()
	if s.OriginFetches != 1 || s.FetchErrors != 0 || s.FlightsAbandoned != 0 {
		t.Errorf("stats = fetches %d / errors %d / abandoned %d, want 1/0/0", s.OriginFetches, s.FetchErrors, s.FlightsAbandoned)
	}
}

// TestFlightAbandonedWhenAllWaitersLeave: when the only client of a
// flight disconnects, the detached work is canceled and counted as an
// abandonment, not an origin failure.
func TestFlightAbandonedWhenAllWaitersLeave(t *testing.T) {
	g := newGateOrigin(origin(t))
	p := proxy.New(g, proxy.Config{Pipeline: rewrite.NewPipeline(), CacheEnabled: true})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Request(ctx, proxy.Lookup{Client: "only", Arch: "dvm", Class: "app/Dep"})
		done <- err
	}()
	waitFor(t, "flight to reach the origin", func() bool { return g.entered.Load() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The worker finishes asynchronously; the cancellation must land in
	// flights_abandoned_total, not fetch_errors_total.
	waitFor(t, "flight abandonment to be counted", func() bool {
		return p.Stats().FlightsAbandoned == 1
	})
	if s := p.Stats(); s.FetchErrors != 0 {
		t.Errorf("FetchErrors = %d after abandonment, want 0", s.FetchErrors)
	}
	// The key is clean: a fresh request starts a new flight and succeeds.
	close(g.release)
	res, err := p.Request(context.Background(), proxy.Lookup{Client: "next", Arch: "dvm", Class: "app/Dep"})
	if err != nil || len(res.Data) == 0 {
		t.Fatalf("request after abandoned flight: %d bytes, %v", len(res.Data), err)
	}
}

// TestSlowClientsHoldCoalescedFlight: a mixed crowd — patient clients
// and slow-to-die ones with tight deadlines — piles onto one gated
// flight. The impatient half leaves without failing the flight; the
// patient half shares the single fetch.
func TestSlowClientsHoldCoalescedFlight(t *testing.T) {
	const patient, impatient = 16, 8
	g := newGateOrigin(origin(t))
	p := proxy.New(g, proxy.Config{Pipeline: rewrite.NewPipeline(), CacheEnabled: true})

	var wg sync.WaitGroup
	var served, expired, unexpected atomic.Int64
	for i := 0; i < patient; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Request(context.Background(), proxy.Lookup{Client: fmt.Sprintf("patient-%d", i), Arch: "dvm", Class: "app/Dep"})
			if err == nil && len(res.Data) > 0 {
				served.Add(1)
			} else {
				unexpected.Add(1)
			}
		}(i)
	}
	for i := 0; i < impatient; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			_, err := p.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("impatient-%d", i), Arch: "dvm", Class: "app/Dep"})
			if errors.Is(err, context.DeadlineExceeded) {
				expired.Add(1)
			} else {
				unexpected.Add(1)
			}
		}(i)
	}
	waitFor(t, "flight to reach the origin", func() bool { return g.entered.Load() >= 1 })
	waitFor(t, "impatient clients to expire", func() bool { return expired.Load() == impatient })
	close(g.release)
	wg.Wait()

	if served.Load() != patient || unexpected.Load() != 0 {
		t.Fatalf("served=%d expired=%d unexpected=%d; want %d/%d/0",
			served.Load(), expired.Load(), unexpected.Load(), patient, impatient)
	}
	s := p.Stats()
	if s.OriginFetches != 1 {
		t.Errorf("OriginFetches = %d, want 1 (everyone coalesced)", s.OriginFetches)
	}
	if s.FetchErrors != 0 || s.CoalescedFailures != 0 {
		t.Errorf("FetchErrors=%d CoalescedFailures=%d, want 0/0", s.FetchErrors, s.CoalescedFailures)
	}
}

// TestOverloadQueueFullRejects drives the bounded admission queue to
// its limit end to end: the overflow request is refused with
// ErrOverloaded (429 + Retry-After over HTTP), the shed is visible in
// /metrics and /healthz, and the queued requests still complete.
func TestOverloadQueueFullRejects(t *testing.T) {
	corp := overloadCorpus(t, 8)
	g := newGateOrigin(corp)
	p := proxy.New(g, proxy.Config{
		Pipeline:      rewrite.NewPipeline(),
		MaxQueue:      2,
		MaxConcurrent: 1,
		QueueDeadline: 5 * time.Second,
		ShedPolicy:    proxy.ShedFIFO,
	})

	results := make(chan error, 3)
	request := func(i int) {
		_, err := p.Request(context.Background(), proxy.Lookup{
			Client: fmt.Sprintf("c%d", i), Arch: "dvm", Class: fmt.Sprintf("app/Load%03d", i),
		})
		results <- err
	}
	go request(0) // admitted, held at the gate
	waitFor(t, "first flight to reach the origin", func() bool { return g.entered.Load() == 1 })
	go request(1)
	go request(2) // both queue
	waitFor(t, "queue to fill", func() bool { return queueDepth(p) == 2 })

	// Overflow: direct API and HTTP front end agree on the semantics.
	_, err := p.Request(context.Background(), proxy.Lookup{Client: "c3", Arch: "dvm", Class: "app/Load003"})
	if !errors.Is(err, proxy.ErrOverloaded) {
		t.Fatalf("overflow err = %v, want ErrOverloaded", err)
	}
	if got := proxy.StatusFor(err); got != http.StatusTooManyRequests {
		t.Fatalf("StatusFor(overloaded) = %d, want 429", got)
	}
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/classes/app/Load004.class")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP overflow status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}

	// Shed and queue state are visible on both monitoring surfaces.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"dvm_proxy_shed_queue_full_total 2",
		"dvm_proxy_queue_depth 2",
		"dvm_proxy_queue_limit 2",
		"dvm_proxy_slo_burn_ratio",
		"dvm_proxy_admission_wait_seconds",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	h := p.Health()
	if h.Counters["shed_queue_full_total"] != 2 {
		t.Errorf("healthz shed_queue_full_total = %d, want 2", h.Counters["shed_queue_full_total"])
	}
	if h.Gauges["queue_depth"] != 2 || h.Gauges["slo_burn_ratio"] <= 0 {
		t.Errorf("healthz gauges queue_depth=%v slo_burn_ratio=%v, want 2 and >0",
			h.Gauges["queue_depth"], h.Gauges["slo_burn_ratio"])
	}

	// Draining the gate completes every admitted request.
	close(g.release)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
	if s := p.Stats(); s.Shed != 2 {
		t.Errorf("Stats.Shed = %d, want 2", s.Shed)
	}
}

// TestOverloadShedsStaleBeforeReject: under queue pressure a request
// whose key has an expired cache entry is answered from that entry —
// degraded freshness — instead of being rejected, and the response is
// flagged Stale+Shed.
func TestOverloadShedsStaleBeforeReject(t *testing.T) {
	corp := overloadCorpus(t, 4)
	g := newGateOrigin(corp)
	g.blocking.Store(false)
	p := proxy.New(g, proxy.Config{
		Pipeline:      rewrite.NewPipeline(),
		CacheEnabled:  true,
		CacheTTL:      time.Millisecond,
		MaxQueue:      2,
		MaxConcurrent: 1,
		QueueDeadline: 5 * time.Second,
		ShedPolicy:    proxy.ShedPriority,
	})

	// Prime the key, then let it expire.
	prime, err := p.Request(context.Background(), proxy.Lookup{Client: "warm", Arch: "dvm", Class: "app/Load000"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)

	// Saturate: one flight holds the only slot, one waiter pressures the
	// queue (depth 1 of 2).
	g.blocking.Store(true)
	entered := g.entered.Load()
	results := make(chan error, 2)
	go func() {
		_, err := p.Request(context.Background(), proxy.Lookup{Client: "c1", Arch: "dvm", Class: "app/Load001"})
		results <- err
	}()
	waitFor(t, "slot holder to reach the origin", func() bool { return g.entered.Load() == entered+1 })
	go func() {
		_, err := p.Request(context.Background(), proxy.Lookup{Client: "c2", Arch: "dvm", Class: "app/Load002"})
		results <- err
	}()
	waitFor(t, "queue pressure", func() bool { return queueDepth(p) == 1 })

	res, err := p.Request(context.Background(), proxy.Lookup{Client: "degraded", Arch: "dvm", Class: "app/Load000"})
	if err != nil {
		t.Fatalf("request with stale fallback was rejected: %v", err)
	}
	if !res.Info.Stale || !res.Info.Shed || !res.Info.CacheHit {
		t.Fatalf("info = %+v, want Stale+Shed+CacheHit", res.Info)
	}
	if string(res.Data) != string(prime.Data) {
		t.Fatal("stale shed served different bytes than the cached transformation")
	}
	s := p.Stats()
	if s.ShedStale != 1 {
		t.Errorf("ShedStale = %d, want 1", s.ShedStale)
	}
	if s.Shed != 0 {
		t.Errorf("Shed = %d, want 0 (nobody was rejected)", s.Shed)
	}
	if s.StaleServed != 1 {
		t.Errorf("StaleServed = %d, want 1", s.StaleServed)
	}

	close(g.release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
}
