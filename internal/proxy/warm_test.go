package proxy

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// White-box tests for the batch Warm ingestion path and the prefetch
// placement policy (cold-end insert, never-evict, waste accounting).

func warmEntry(class string, n int, reason string) CacheEntry {
	return CacheEntry{Arch: "x86", Class: class, Data: bytes.Repeat([]byte{'x'}, n), Reason: reason}
}

func TestWarmBatchStoresAllReasons(t *testing.T) {
	p := lruProxy(0)
	stored := p.Warm([]CacheEntry{
		warmEntry("app/R", 100, ReasonReplica),
		warmEntry("app/H", 100, ReasonHandoff),
		warmEntry("app/P", 100, ReasonPrefetch),
	})
	if stored != 3 {
		t.Fatalf("stored = %d, want 3", stored)
	}
	for _, class := range []string{"app/R", "app/H", "app/P"} {
		if _, _, ok := p.Peek("x86", class); !ok {
			t.Errorf("%s not cached", class)
		}
	}
	if got := p.cWarmed.Load(); got != 3 {
		t.Errorf("warm_entries_total = %d, want 3", got)
	}
	if got := p.cWarmedBytes.Load(); got != 300 {
		t.Errorf("warm_bytes_total = %d, want 300", got)
	}
}

func TestWarmDisabledCache(t *testing.T) {
	p := New(MapOrigin{}, Config{})
	if n := p.Warm([]CacheEntry{warmEntry("app/A", 10, ReasonReplica)}); n != 0 {
		t.Fatalf("stored = %d on disabled cache", n)
	}
}

func TestPrefetchInsertsColdAndNeverEvicts(t *testing.T) {
	p := lruProxy(300)
	// Two resident entries a client actually asked for.
	p.storeMem("x86\x00app/A", bytes.Repeat([]byte{'a'}, 100), nil, false)
	p.storeMem("x86\x00app/B", bytes.Repeat([]byte{'b'}, 100), nil, false)
	// Prefetch fits in the remaining 100 bytes: inserted at the cold end.
	if n := p.Warm([]CacheEntry{warmEntry("app/P1", 100, ReasonPrefetch)}); n != 1 {
		t.Fatalf("fitting prefetch not stored")
	}
	// A second prefetch does not fit: skipped, nothing evicted.
	if n := p.Warm([]CacheEntry{warmEntry("app/P2", 100, ReasonPrefetch)}); n != 0 {
		t.Fatalf("over-budget prefetch was stored")
	}
	for _, class := range []string{"app/A", "app/B", "app/P1"} {
		if _, _, ok := p.Peek("x86", class); !ok {
			t.Errorf("%s missing after over-budget prefetch", class)
		}
	}
	if got := p.cPrefetchSkipped.Load(); got != 1 {
		t.Errorf("prefetch_skipped_total = %d, want 1", got)
	}
	// A real store under pressure evicts the unused prefetched entry
	// first (it sits at the cold end) and counts its bytes as waste.
	p.storeMem("x86\x00app/C", bytes.Repeat([]byte{'c'}, 100), nil, false)
	if _, _, ok := p.Peek("x86", "app/P1"); ok {
		t.Error("unused prefetched entry survived a real store under pressure")
	}
	if got := p.cPrefetchWasteBytes.Load(); got != 100 {
		t.Errorf("prefetch_waste_bytes_total = %d, want 100", got)
	}
	if got := p.cPrefetchEvicted.Load(); got != 1 {
		t.Errorf("prefetch_evicted_unused_total = %d, want 1", got)
	}
	if p.prefetchResident != 0 {
		t.Errorf("prefetchResident = %d, want 0", p.prefetchResident)
	}
}

func TestPrefetchHitClearsLedgerAndPromotes(t *testing.T) {
	p := lruProxy(300)
	p.Warm([]CacheEntry{warmEntry("app/P", 100, ReasonPrefetch)})
	if p.prefetchResident != 100 {
		t.Fatalf("prefetchResident = %d, want 100", p.prefetchResident)
	}
	data, _, fresh, prefetched, _, ok := p.memGet("x86\x00app/P")
	if !ok || !fresh || !prefetched || len(data) != 100 {
		t.Fatalf("memGet = ok=%v fresh=%v prefetched=%v", ok, fresh, prefetched)
	}
	if got := p.cPrefetchHits.Load(); got != 1 {
		t.Errorf("prefetch_hits_total = %d, want 1", got)
	}
	if p.prefetchResident != 0 {
		t.Errorf("prefetchResident = %d after hit, want 0", p.prefetchResident)
	}
	// Second access is an ordinary hit, and later eviction is not waste.
	if _, _, _, again, _, _ := p.memGet("x86\x00app/P"); again {
		t.Error("second hit still flagged prefetched")
	}
	p.storeMem("x86\x00app/A", bytes.Repeat([]byte{'a'}, 150), nil, false)
	p.storeMem("x86\x00app/B", bytes.Repeat([]byte{'b'}, 150), nil, false) // evicts app/P
	if got := p.cPrefetchWasteBytes.Load(); got != 0 {
		t.Errorf("used prefetch counted as waste: %d bytes", got)
	}
}

func TestPrefetchSkipsAlreadyCached(t *testing.T) {
	p := lruProxy(0)
	p.storeMem("x86\x00app/A", []byte("resident"), nil, false)
	if n := p.Warm([]CacheEntry{warmEntry("app/A", 100, ReasonPrefetch)}); n != 0 {
		t.Fatal("prefetch overwrote a resident entry")
	}
	if data, _, _ := mustPeek(t, p, "x86", "app/A"); string(data) != "resident" {
		t.Errorf("resident bytes replaced: %q", data)
	}
}

func mustPeek(t *testing.T, p *Proxy, arch, class string) ([]byte, int, bool) {
	t.Helper()
	data, _, ok := p.Peek(arch, class)
	if !ok {
		t.Fatalf("Peek(%s/%s) missed", arch, class)
	}
	return data, len(data), ok
}

// Property: across any interleaving of real stores, hits, and prefetch
// pushes, a prefetch insertion never evicts an entry that is hotter
// than itself. With LRU, "hotter" is "more recently touched" — so the
// invariant is that the set of resident non-prefetched keys (and of
// previously hit prefetched keys) is exactly what it would have been
// had the prefetch pushes never happened.
func TestPrefetchNeverEvictsHotterKeysProperty(t *testing.T) {
	const budget = 1000
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		real := lruProxy(budget)     // sees only the real traffic
		mixed := lruProxy(budget)    // sees real traffic + prefetch pushes
		realKeys := map[string]bool{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // real store (a client-driven fill)
				class := fmt.Sprintf("app/R%02d", rng.Intn(20))
				size := 50 + rng.Intn(100)
				data := bytes.Repeat([]byte{'r'}, size)
				real.storeMem("x86\x00"+class, data, nil, false)
				mixed.storeMem("x86\x00"+class, data, nil, false)
				realKeys[class] = true
			case 1: // real hit (recency touch)
				class := fmt.Sprintf("app/R%02d", rng.Intn(20))
				real.memGet("x86\x00" + class)
				mixed.memGet("x86\x00" + class)
			case 2: // speculative push, mixed proxy only
				class := fmt.Sprintf("app/P%02d", rng.Intn(40))
				if realKeys[class] {
					continue
				}
				mixed.Warm([]CacheEntry{warmEntry(class, 50+rng.Intn(100), ReasonPrefetch)})
			}
		}
		// Every real key resident in the clean proxy must be resident in
		// the mixed proxy too: prefetch never cost a real key its slot.
		for _, key := range real.CacheEntries() {
			found := false
			for _, mk := range mixed.CacheEntries() {
				if mk == key {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: real key %q evicted by prefetch traffic", trial, key)
			}
		}
	}
}
