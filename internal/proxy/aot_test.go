package proxy_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"dvm/internal/attest"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/compiler"
	"dvm/internal/proxy"
)

// aotProxy builds a cached proxy whose AOT layer derives compiler.ArchDVM
// artifacts from the "jvm" base architecture.
func aotProxy(t *testing.T, o proxy.Origin, hook func(ctx context.Context, arch, class string, base, out []byte) (*attest.Attestation, error)) *proxy.Proxy {
	t.Helper()
	return proxy.New(o, proxy.Config{
		Pipeline:     fullPipeline(t),
		CacheEnabled: true,
		AOT: &proxy.AOTConfig{
			Arch:          compiler.ArchDVM,
			BaseArch:      "jvm",
			Compile:       compiler.CompileArtifact,
			AttestCompile: hook,
		},
	})
}

// TestAOTDeriveMatchesFullPipeline is the AOT cache's core invariant:
// deriving the compiled artifact from the cached base-architecture
// artifact produces byte-identical output to running the full pipeline
// with the DVM architecture — and does so without a second origin fetch.
func TestAOTDeriveMatchesFullPipeline(t *testing.T) {
	o := origin(t)

	// Reference: a plain proxy runs the full pipeline for the DVM arch.
	ref := proxy.New(o, proxy.Config{Pipeline: fullPipeline(t), CacheEnabled: true})
	want, err := ref.Request(context.Background(), proxy.Lookup{Client: "c", Arch: compiler.ArchDVM, Class: "app/Main"})
	if err != nil {
		t.Fatalf("reference request: %v", err)
	}

	p := aotProxy(t, o, nil)
	// First, the base-architecture artifact lands in the cache.
	base, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "jvm", Class: "app/Main"})
	if err != nil {
		t.Fatalf("base request: %v", err)
	}
	if got := p.Stats().OriginFetches; got != 1 {
		t.Fatalf("base request made %d origin fetches, want 1", got)
	}

	// The DVM-arch miss must be served by derivation: no origin hop.
	res, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: compiler.ArchDVM, Class: "app/Main"})
	if err != nil {
		t.Fatalf("derive request: %v", err)
	}
	st := p.Stats()
	if st.OriginFetches != 1 {
		t.Errorf("derive path fetched from origin (%d fetches, want 1)", st.OriginFetches)
	}
	if st.CompileMisses != 1 {
		t.Errorf("compile_misses = %d, want 1", st.CompileMisses)
	}
	if !bytes.Equal(res.Data, want.Data) {
		t.Fatalf("derived artifact differs from full-pipeline output (%d vs %d bytes)", len(res.Data), len(want.Data))
	}
	if bytes.Equal(res.Data, base.Data) {
		t.Fatal("derived artifact is identical to the base artifact: compiler did not run")
	}

	// A second DVM-arch request is a cache hit: no new compilation.
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: compiler.ArchDVM, Class: "app/Main"}); err != nil {
		t.Fatalf("hit request: %v", err)
	}
	st = p.Stats()
	if st.CompileMisses != 1 || st.CompileHits != 1 {
		t.Errorf("after hit: compile_misses=%d compile_hits=%d, want 1/1", st.CompileMisses, st.CompileHits)
	}
}

// badClassOrigin serves one class whose verification must fail: run()
// declares ()I but returns nothing on a falling-off code path.
func badClassOrigin(t *testing.T) proxy.MapOrigin {
	t.Helper()
	b := classgen.NewClass("app/Bad", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "run", "()I")
	m.Return() // void return from an int method: phase-3 rejection
	raw, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return proxy.MapOrigin{"app/Bad": raw}
}

// TestAOTSkipsRejectedBase: a rejection replacement must never be fed to
// the compiler. The DVM-arch request takes the regular path (origin +
// pipeline) and serves the same replacement; no compilation is counted
// for it, and the cached rejection flag survives later hits.
func TestAOTSkipsRejectedBase(t *testing.T) {
	p := aotProxy(t, badClassOrigin(t), nil)

	baseRes, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "jvm", Class: "app/Bad"})
	if err != nil {
		t.Fatalf("base request: %v", err)
	}
	if !baseRes.Info.Rejected {
		t.Fatal("base request was not rejected")
	}

	res, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: compiler.ArchDVM, Class: "app/Bad"})
	if err != nil {
		t.Fatalf("dvm request: %v", err)
	}
	if !res.Info.Rejected {
		t.Fatal("dvm request lost the rejection flag")
	}
	st := p.Stats()
	if st.OriginFetches != 2 {
		t.Errorf("origin fetches = %d, want 2 (rejected base must not be derived from)", st.OriginFetches)
	}
	if st.CompileMisses != 0 {
		t.Errorf("compile_misses = %d, want 0 for a rejected class", st.CompileMisses)
	}
	if !bytes.Equal(res.Data, baseRes.Data) {
		t.Error("rejection replacement differs between architectures")
	}

	// The rejection flag must survive the cache: a later hit reports it.
	hit, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "jvm", Class: "app/Bad"})
	if err != nil {
		t.Fatalf("hit request: %v", err)
	}
	if !hit.Info.CacheHit || !hit.Info.Rejected {
		t.Errorf("cache hit lost flags: CacheHit=%v Rejected=%v, want true/true", hit.Info.CacheHit, hit.Info.Rejected)
	}
}

// TestAOTAttestCompileFailureFailsFlight: the derive path honors the
// same trust rule as the transform path — if the compile-mode quorum
// rejects the derived bytes, the flight fails and nothing is cached.
func TestAOTAttestCompileFailureFailsFlight(t *testing.T) {
	wantErr := errors.New("fleet outvoted local compiler")
	p := aotProxy(t, origin(t), func(ctx context.Context, arch, class string, base, out []byte) (*attest.Attestation, error) {
		return nil, wantErr
	})
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "jvm", Class: "app/Main"}); err != nil {
		t.Fatalf("base request: %v", err)
	}
	_, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: compiler.ArchDVM, Class: "app/Main"})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("derive with failing attestation returned %v, want wrapped %v", err, wantErr)
	}
	st := p.Stats()
	if st.AttestFailures != 1 {
		t.Errorf("attest_failures = %d, want 1", st.AttestFailures)
	}
	if _, _, ok := p.Peek(compiler.ArchDVM, "app/Main"); ok {
		t.Error("unattested derived artifact was cached")
	}
}

// TestCompileDigestVotesMatchDerivation: a variant's compile-mode vote
// equals the digest of the owner's derived artifact when both compilers
// agree, and the route refuses to vote for an architecture it does not
// compile.
func TestCompileDigestVotesMatchDerivation(t *testing.T) {
	p := aotProxy(t, origin(t), nil)
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "jvm", Class: "app/Main"}); err != nil {
		t.Fatalf("base request: %v", err)
	}
	base, _, ok := p.Peek("jvm", "app/Main")
	if !ok {
		t.Fatal("base artifact not cached")
	}
	res, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: compiler.ArchDVM, Class: "app/Main"})
	if err != nil {
		t.Fatalf("derive request: %v", err)
	}
	d, err := p.CompileDigest(context.Background(), compiler.ArchDVM, "app/Main", base)
	if err != nil {
		t.Fatalf("CompileDigest: %v", err)
	}
	if want := attest.Digest(res.Data); d != want {
		t.Errorf("compile vote %.12s != served artifact digest %.12s", d, want)
	}
	if _, err := p.CompileDigest(context.Background(), "sparc", "app/Main", base); err == nil {
		t.Error("CompileDigest voted for an architecture it does not compile")
	}
}
