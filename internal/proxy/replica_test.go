package proxy_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

func TestReplicaGroupRoundRobin(t *testing.T) {
	org := origin(t)
	g, err := proxy.NewReplicaGroup(org, 3, func(i int) proxy.Config {
		return proxy.Config{Pipeline: rewrite.NewPipeline(verifier.Filter()), CacheEnabled: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("Size = %d", g.Size())
	}
	for i := 0; i < 9; i++ {
		if _, err := g.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
			t.Fatal(err)
		}
	}
	// Round-robin: every replica saw 3 requests.
	for i := 0; i < 3; i++ {
		if got := g.Replica(i).Stats().Requests; got != 3 {
			t.Errorf("replica %d requests = %d, want 3", i, got)
		}
	}
	if g.Stats().Requests != 9 {
		t.Errorf("aggregate requests = %d", g.Stats().Requests)
	}
	// The fleet latency view is the replicas' histograms merged
	// bucket-wise: its count must equal the aggregate request count.
	if lat := g.RequestLatency(); lat.Count() != 9 {
		t.Errorf("merged latency histogram count = %d, want 9", lat.Count())
	}
}

func TestReplicaGroupFailover(t *testing.T) {
	org := origin(t)
	// Replica 0 fronts a broken origin; every request must fail over to
	// the healthy replica regardless of which one round-robin picks.
	broken := proxy.MapOrigin{}
	group, err := proxy.NewReplicaGroupMixed(
		[]proxy.Origin{broken, org},
		func(i int) proxy.Config { return proxy.Config{Pipeline: rewrite.NewPipeline()} })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := group.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
			t.Fatalf("request %d failed despite healthy replica: %v", i, err)
		}
	}
	// A class no replica can supply still errors.
	if _, err := group.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Nope"}); err == nil {
		t.Fatal("nonexistent class served")
	}
}

func TestReplicaGroupConcurrent(t *testing.T) {
	org := origin(t)
	g, err := proxy.NewReplicaGroup(org, 4, func(i int) proxy.Config {
		return proxy.Config{Pipeline: rewrite.NewPipeline(verifier.Filter()), CacheEnabled: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "app/Main"
			if i%2 == 0 {
				name = "app/Dep"
			}
			if _, err := g.Request(context.Background(), proxy.Lookup{Client: fmt.Sprintf("c%d", i), Arch: "dvm", Class: name}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if g.Stats().Requests != 64 {
		t.Errorf("requests = %d", g.Stats().Requests)
	}
}

func TestReplicaGroupRejectsEmpty(t *testing.T) {
	if _, err := proxy.NewReplicaGroup(origin(t), 0, func(int) proxy.Config { return proxy.Config{} }); err == nil {
		t.Fatal("accepted zero replicas")
	}
}
