package proxy_test

import (
	"context"
	"testing"

	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

func TestDiskCacheSurvivesProxyRestart(t *testing.T) {
	dir := t.TempDir()
	org := origin(t)
	cfg := proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter()),
		CacheEnabled: true,
		DiskCacheDir: dir,
	}
	p1 := proxy.New(org, cfg)
	first, err := p1.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Stats().OriginFetches != 1 {
		t.Fatalf("stats = %+v", p1.Stats())
	}

	// "Restart": a fresh proxy over the same disk cache — but a broken
	// origin, proving the class is served from disk, not refetched.
	p2 := proxy.New(proxy.MapOrigin{}, cfg)
	second, err := p2.Request(context.Background(), proxy.Lookup{Client: "c2", Arch: "dvm", Class: "app/Dep"})
	if err != nil {
		t.Fatalf("restarted proxy could not serve from disk: %v", err)
	}
	if string(first.Data) != string(second.Data) {
		t.Fatal("disk-cached bytes differ")
	}
	st := p2.Stats()
	if st.CacheHits != 1 || st.OriginFetches != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskCacheKeyedByArch(t *testing.T) {
	dir := t.TempDir()
	org := origin(t)
	cfg := proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter()),
		CacheEnabled: true,
		DiskCacheDir: dir,
	}
	p := proxy.New(org, cfg)
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	// A different arch must not hit the dvm entry.
	p2 := proxy.New(org, cfg)
	if _, err := p2.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "x86-jdk", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	if p2.Stats().OriginFetches != 1 {
		t.Errorf("arch keying broken: %+v", p2.Stats())
	}
}

func TestDiskCacheUnwritableDegradesGracefully(t *testing.T) {
	org := origin(t)
	cfg := proxy.Config{
		Pipeline:     rewrite.NewPipeline(),
		CacheEnabled: true,
		DiskCacheDir: "/dev/null/impossible", // cannot mkdir here
	}
	p := proxy.New(org, cfg)
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatalf("unwritable disk cache failed the request: %v", err)
	}
	// Memory cache still works.
	if _, err := p.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: "app/Dep"}); err != nil {
		t.Fatal(err)
	}
	if p.Stats().CacheHits != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}
