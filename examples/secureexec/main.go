// Secureexec demonstrates the distributed security service (§3.2): an
// organization-wide XML policy drives binary rewriting on the proxy, the
// client-side enforcement manager resolves the injected checks, and a
// central policy update propagates to clients through the
// cache-invalidation protocol — without touching the client.
//
//	go run ./examples/secureexec
package main

import (
	"fmt"
	"log"
	"os"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/verifier"
)

const policyV1 = `
<policy>
  <domain id="apps">
    <grant permission="file.open" target="/data/*"/>
    <grant permission="file.read" target="*"/>
  </domain>
  <assign domain="apps" codebase="demo/*"/>
  <operation permission="file.open" class="java/io/FileInputStream" method="&lt;init&gt;" desc="(Ljava/lang/String;)V" target="arg"/>
  <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
</policy>`

const policyV2 = `
<policy>
  <domain id="apps">
    <grant permission="file.open" target="/data/*"/>
  </domain>
  <assign domain="apps" codebase="demo/*"/>
  <operation permission="file.open" class="java/io/FileInputStream" method="&lt;init&gt;" desc="(Ljava/lang/String;)V" target="arg"/>
  <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
</policy>`

func buildReader() ([]byte, error) {
	b := classgen.NewClass("demo/Reader", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "readFirst", "(Ljava/lang/String;)I")
	m.NewDup("java/io/FileInputStream")
	m.ALoad(0)
	m.InvokeSpecial("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
	m.InvokeVirtual("java/io/FileInputStream", "read", "()I")
	m.IReturn()
	return b.BuildBytes()
}

func main() {
	pol, err := security.ParsePolicy([]byte(policyV1))
	if err != nil {
		log.Fatal(err)
	}
	raw, err := buildReader()
	if err != nil {
		log.Fatal(err)
	}
	p := proxy.New(proxy.MapOrigin{"demo/Reader": raw}, proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter(), security.Filter(pol)),
		CacheEnabled: true,
	})
	srv := security.NewServer(pol)

	vm, err := jvm.New(p.Loader("client-A", "dvm"), os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	mgr := security.NewManager(srv, "apps")
	vm.CheckAccess = mgr
	vm.VFS.Write("/data/report.txt", []byte("R"))
	vm.VFS.Write("/etc/secret", []byte("S"))

	read := func(path string) {
		v, thrown, err := vm.MainThread().InvokeByName(
			"demo/Reader", "readFirst", "(Ljava/lang/String;)I",
			[]jvm.Value{jvm.RefV(vm.InternString(path))})
		switch {
		case err != nil:
			log.Fatal(err)
		case thrown != nil:
			fmt.Printf("  read %-18s -> DENIED: %s\n", path, jvm.ThrowableMessage(thrown))
		default:
			fmt.Printf("  read %-18s -> byte %q\n", path, rune(v.Int()))
		}
	}

	fmt.Println("policy v1 (apps may open /data/* and read):")
	read("/data/report.txt")
	read("/etc/secret")

	fmt.Println("central policy update: revoke file.read for everyone...")
	pol2, err := security.ParsePolicy([]byte(policyV2))
	if err != nil {
		log.Fatal(err)
	}
	srv.UpdatePolicy(pol2)

	fmt.Println("policy v2 (no file.read grant), same client, no restart:")
	read("/data/report.txt")
	fmt.Printf("enforcement manager: %d cache hits, %d misses, %d downloads\n",
		mgr.CacheHits, mgr.CacheMisses, mgr.Downloads)
	fmt.Printf("client executed %d injected security checks\n", vm.Stats.SecurityChecks)
}
