// Quickstart: build a class, push it through the DVM's static service
// pipeline (verify → rewrite into self-verifying form → sign), and run
// it on the client runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/signing"
	"dvm/internal/verifier"
)

func main() {
	// 1. An "application" arrives from the Internet: here we synthesize
	// hello-world with classgen (normally this is any Java 1.2 class).
	b := classgen.NewClass("demo/Hello", "java/lang/Object")
	b.DefaultInit()
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	m.GetStatic("java/lang/System", "out", "Ljava/io/PrintStream;")
	m.LdcString("hello from a distributed virtual machine")
	m.InvokeVirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
	m.Return()
	raw, err := b.BuildBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origin class: %d bytes\n", len(raw))

	// 2. The network proxy intercepts the class and runs the static
	// services over it: verification plus the signing step of §2.
	signer := signing.NewSigner([]byte("organization-service-key"))
	p := proxy.New(
		proxy.MapOrigin{"demo/Hello": raw},
		proxy.Config{
			Pipeline:     rewrite.NewPipeline(verifier.Filter(), signer.Filter()),
			CacheEnabled: true,
		},
	)

	// 3. The client resolves classes through the proxy and runs main.
	// Its loader checks the service signature before defining anything.
	loader := p.Loader("quickstart-client", "dvm")
	vm, err := jvm.New(jvm.FuncLoader(func(name string) ([]byte, error) {
		data, err := loader.Load(name)
		if err != nil {
			return nil, err
		}
		if err := signer.VerifyBytes(data); err != nil {
			return nil, fmt.Errorf("unsigned or tampered class %s: %w", name, err)
		}
		return data, nil
	}), os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	thrown, err := vm.RunMain("demo/Hello", nil)
	if err != nil {
		log.Fatal(err)
	}
	if thrown != nil {
		log.Fatalf("uncaught exception: %s", jvm.DescribeThrowable(thrown))
	}

	st := p.Stats()
	fmt.Printf("proxy: %d requests, %d origin fetches, %d bytes served\n",
		st.Requests, st.OriginFetches, st.BytesOut)
	fmt.Printf("client: %d instructions, %d link checks executed (self-verifying code)\n",
		vm.Stats.InstructionsExecuted, vm.Stats.LinkChecks)
}
