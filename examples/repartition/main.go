// Repartition demonstrates the §5 optimization service for mobile code
// on low-bandwidth links: profile an application's first execution,
// split its classes at method granularity, and compare start-up time
// over a 28.8 Kb/s link.
//
//	go run ./examples/repartition
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/netsim"
	"dvm/internal/optimize"
	"dvm/internal/rewrite"
	"dvm/internal/workload"
)

func main() {
	// A Figure 11-style graphical applet, generated at modest size.
	spec := workload.Applets()[5] // "Animated UI"
	spec.Classes = 12
	spec.TargetBytes = 96 * 1024
	app, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d classes, %d bytes, %d cold methods\n",
		spec.Name, len(app.Classes), app.TotalBytes, app.ColdMethods)

	// 1. Profile pass: the proxy instruments the app with first-use
	// probes and collects the profile from its first execution.
	instrumented := map[string][]byte{}
	pipe := rewrite.NewPipeline(monitor.Filter(monitor.Config{FirstUse: true}))
	for name, data := range app.Classes {
		out, err := pipe.Process(data, nil)
		if err != nil {
			log.Fatal(err)
		}
		instrumented[name] = out
	}
	vm, err := jvm.New(jvm.MapLoader(instrumented), io.Discard)
	if err != nil {
		log.Fatal(err)
	}
	coll := monitor.NewCollector()
	session := monitor.Attach(vm, coll, monitor.ClientInfo{User: "profiler"})
	if thrown, err := vm.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
		log.Fatalf("profile run: %v %v", err, jvm.DescribeThrowable(thrown))
	}
	prof := optimize.FromFirstUse(coll.FirstUseOrder(session))
	fmt.Printf("profile: %d methods used on the startup path\n", len(prof.Hot))

	// 2. Repartition on the server.
	split, rep, err := optimize.Repartition(app.Classes, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repartitioned: %d/%d classes split, %d cold methods factored out\n",
		rep.Split, rep.Classes, rep.ColdMethods)
	fmt.Printf("  bytes: %d -> %d carrier + %d cold (loaded only on demand)\n",
		rep.BytesBefore, rep.CarrierBytes, rep.ColdBytes)

	// 3. Compare startup over the wireless link.
	link := netsim.Modem28k8
	measure := func(classes map[string][]byte) (time.Duration, int64) {
		clock := &netsim.Clock{}
		var bytes int64
		loader := jvm.FuncLoader(func(name string) ([]byte, error) {
			data, ok := classes[name]
			if !ok {
				return nil, fmt.Errorf("%s not found", name)
			}
			clock.Advance(link.TransferTime(len(data)))
			bytes += int64(len(data))
			return data, nil
		})
		vm, err := jvm.New(loader, io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		if thrown, err := vm.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
			log.Fatalf("startup run: %v %v", err, jvm.DescribeThrowable(thrown))
		}
		return clock.Now(), bytes
	}
	base, baseBytes := measure(app.Classes)
	opt, optBytes := measure(split)
	fmt.Printf("startup over 28.8 Kb/s:\n")
	fmt.Printf("  original:      %6.1f s  (%d bytes transferred)\n", base.Seconds(), baseBytes)
	fmt.Printf("  repartitioned: %6.1f s  (%d bytes transferred)\n", opt.Seconds(), optBytes)
	fmt.Printf("  improvement:   %.1f%%\n", (1-opt.Seconds()/base.Seconds())*100)
}
