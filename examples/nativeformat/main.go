// Nativeformat demonstrates the centralized compilation service (§3.4):
// the proxy translates bytecode ahead of time into the client runtime's
// quickened native format — per client architecture, as described in the
// handshake — so every client in the organization benefits from one
// compiler investment. A strict-JVM client asking for the same class
// receives standard bytecode.
//
//	go run ./examples/nativeformat
package main

import (
	"fmt"
	"io"
	"log"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/compiler"
	"dvm/internal/jvm"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

func buildHotLoop() ([]byte, error) {
	b := classgen.NewClass("demo/Hot", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "sum", "(I)I")
	m.IConst(0).IStore(1)
	m.IConst(0).IStore(2)
	head := m.Here()
	exit := m.NewLabel()
	m.ILoad(2).ILoad(0).Branch(bytecode.IfIcmpge, exit) // fuses to ext_cmp_branch
	m.ILoad(1).ILoad(2).IAdd().IStore(1)                // fuses to ext_load_add
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(exit)
	m.ILoad(1).IReturn()
	return b.BuildBytes()
}

func main() {
	raw, err := buildHotLoop()
	if err != nil {
		log.Fatal(err)
	}
	p := proxy.New(proxy.MapOrigin{"demo/Hot": raw}, proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter(), compiler.Filter()),
		CacheEnabled: true,
	})

	run := func(arch string) (int32, int64, int) {
		vm, err := jvm.New(p.Loader("client-"+arch, arch), io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		v, thrown, err := vm.MainThread().InvokeByName("demo/Hot", "sum", "(I)I",
			[]jvm.Value{jvm.IntV(100000)})
		if err != nil || thrown != nil {
			log.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
		}
		return v.Int(), vm.Stats.InstructionsExecuted, int(vm.Stats.BytesLoaded)
	}

	vJDK, instJDK, _ := run("x86-jdk")
	vDVM, instDVM, _ := run(compiler.ArchDVM)
	if vJDK != vDVM {
		log.Fatalf("results differ: %d vs %d", vJDK, vDVM)
	}
	fmt.Printf("sum(100000) = %d on both architectures\n", vJDK)
	fmt.Printf("strict JVM client:  %d interpreter dispatches (standard bytecode)\n", instJDK)
	fmt.Printf("DVM client:         %d interpreter dispatches (quickened native format)\n", instDVM)
	fmt.Printf("dispatch reduction: %.1f%%\n", (1-float64(instDVM)/float64(instJDK))*100)
}
