// Audittrail demonstrates the remote monitoring service (§3.3): the
// proxy rewrites an application to emit audit events at method
// boundaries; clients hand the events to the central administration
// console, which reconstructs dynamic call graphs — logs an intruder on
// the client cannot tamper with.
//
//	go run ./examples/audittrail
package main

import (
	"fmt"
	"log"
	"os"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

func buildApp() ([]byte, error) {
	b := classgen.NewClass("demo/App", "java/lang/Object")
	leaf := b.Method(classfile.AccPublic|classfile.AccStatic, "leaf", "(I)I")
	leaf.ILoad(0).IConst(2).IMul().IReturn()
	mid := b.Method(classfile.AccPublic|classfile.AccStatic, "mid", "(I)I")
	mid.ILoad(0).InvokeStatic("demo/App", "leaf", "(I)I")
	mid.ILoad(0).InvokeStatic("demo/App", "leaf", "(I)I")
	mid.IAdd().IReturn()
	mn := b.Method(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	mn.IConst(5).InvokeStatic("demo/App", "mid", "(I)I")
	mn.Pop()
	mn.Return()
	return b.BuildBytes()
}

func main() {
	raw, err := buildApp()
	if err != nil {
		log.Fatal(err)
	}
	p := proxy.New(proxy.MapOrigin{"demo/App": raw}, proxy.Config{
		Pipeline: rewrite.NewPipeline(
			verifier.Filter(),
			monitor.Filter(monitor.Config{Methods: true, Skip: monitor.SkipInitializers}),
		),
		CacheEnabled: true,
	})

	console := monitor.NewCollector()
	for _, user := range []string{"alice", "bob"} {
		vm, err := jvm.New(p.Loader(user, "dvm"), os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
		session := monitor.Attach(vm, console, monitor.ClientInfo{
			User: user, Hardware: "pentiumpro-200", Arch: "x86", JVMVersion: "1.2-dvm",
		})
		if thrown, err := vm.RunMain("demo/App", nil); err != nil || thrown != nil {
			log.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
		}
		fmt.Printf("client %s ran as session %s (%d audit events emitted)\n",
			user, session, vm.Stats.AuditEvents)
	}

	fmt.Printf("\nadministration console: %d sessions, %d events\n",
		len(console.Sessions()), console.EventCount())
	for _, s := range console.Sessions() {
		info, _ := console.Info(s)
		fmt.Printf("  %s user=%s hw=%s\n", s, info.User, info.Hardware)
		for _, e := range console.CallGraph(s) {
			fmt.Printf("    %s -> %s (x%d)\n", e.Caller, e.Callee, e.Count)
		}
	}
}
