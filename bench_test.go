package dvm

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§4 and §5), plus the ablations DESIGN.md calls
// out. Each benchmark executes the corresponding experiment from
// internal/eval and reports its headline numbers as benchmark metrics;
// run with -v to also see the rendered tables.
//
//	go test -bench=. -benchmem                # scaled suite (divisor 4)
//	DVM_BENCH_SCALE=1 go test -bench=Fig      # paper-scale workloads
//
// Use -benchtime=1x for a single pass per experiment.

import (
	"os"
	"strconv"
	"testing"
	"time"

	"dvm/internal/eval"
	"dvm/internal/workload"
)

// benchScale returns the workload divisor (1 = paper scale).
func benchScale() int {
	if s := os.Getenv("DVM_BENCH_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return 4
}

func benchSpecs() []workload.Spec {
	return eval.ScaleSpecs(workload.Benchmarks(), benchScale())
}

func benchApplets() []workload.Spec {
	return eval.ScaleSpecs(workload.Applets(), benchScale())
}

// BenchmarkFig5WorkloadInventory regenerates the Figure 5 benchmark
// table (application suite inventory).
func BenchmarkFig5WorkloadInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, text, err := eval.Fig5(benchSpecs())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			total := 0
			for _, r := range rows {
				total += r.SizeBytes
			}
			b.ReportMetric(float64(total), "suite-bytes")
		}
	}
}

// BenchmarkFig6EndToEnd regenerates Figure 6: end-to-end application
// performance under monolithic and distributed service architectures.
func BenchmarkFig6EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, text, err := eval.Fig6(benchSpecs())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			var mono, dvm, cached time.Duration
			for _, r := range rows {
				mono += r.Monolithic
				dvm += r.DVM
				cached += r.DVMCached
			}
			b.ReportMetric(float64(dvm)/float64(mono), "dvm-vs-mono-ratio")
			b.ReportMetric(float64(cached)/float64(mono), "cached-vs-mono-ratio")
		}
	}
}

// BenchmarkFig7ClientVerification regenerates Figure 7: client-side
// verification overhead.
func BenchmarkFig7ClientVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, text, err := eval.Fig7(benchSpecs())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			var mono, dvm time.Duration
			for _, r := range rows {
				mono += r.MonolithicCost
				dvm += r.DVMCost
			}
			b.ReportMetric(mono.Seconds()*1000, "mono-verify-ms")
			b.ReportMetric(dvm.Seconds()*1000, "dvm-client-ms")
		}
	}
}

// BenchmarkFig8CheckCensus regenerates the Figure 8 table: static vs
// dynamic verifier checks.
func BenchmarkFig8CheckCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, text, err := eval.Fig8(benchSpecs())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			var static, dynamic int64
			for _, r := range rows {
				static += int64(r.StaticChecks)
				dynamic += r.DynamicChecks
			}
			b.ReportMetric(float64(static), "static-checks")
			b.ReportMetric(float64(dynamic), "dynamic-checks")
		}
	}
}

// BenchmarkFig9SecurityMicro regenerates the Figure 9 security
// microbenchmark table.
func BenchmarkFig9SecurityMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, text, err := eval.Fig9(2000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			for _, r := range rows {
				if r.Operation == "Open File" && r.JDKCheck > 0 && r.DVMCheck > 0 {
					b.ReportMetric(float64(r.JDKCheck)/float64(r.DVMCheck), "openfile-jdk-over-dvm")
				}
			}
		}
	}
}

// BenchmarkFig10ProxyScaling regenerates Figure 10: sustained proxy
// throughput versus number of simultaneous clients (caching disabled —
// the worst case).
func BenchmarkFig10ProxyScaling(b *testing.B) {
	counts := []int{1, 10, 25, 50, 100, 150, 200, 250, 300}
	if benchScale() > 1 {
		counts = []int{1, 10, 25, 50, 100}
	}
	cfg := eval.DefaultFig10Config()
	for i := 0; i < b.N; i++ {
		rows, text, err := eval.Fig10(counts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			last := rows[len(rows)-1]
			b.ReportMetric(last.ThroughputBps/1024, "peak-KBps")
		}
	}
}

// BenchmarkAppletFetch regenerates the §4.1.2 applet-download
// measurement (Internet latency vs proxy overhead vs cached fetch).
func BenchmarkAppletFetch(b *testing.B) {
	n := 100
	if benchScale() > 1 {
		n = 25
	}
	for i := 0; i < b.N; i++ {
		row, text, err := eval.AppletFetch(n)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			b.ReportMetric(row.OverheadPercent, "proxy-overhead-pct")
		}
	}
}

// BenchmarkFig11Startup regenerates Figure 11: application start-up
// time as a function of network bandwidth.
func BenchmarkFig11Startup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, text, err := eval.Fig11(benchApplets(), eval.StandardBandwidthsKBps)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			b.ReportMetric(float64(len(points)), "points")
		}
	}
}

// BenchmarkFig12Repartition regenerates Figure 12: percent improvement
// in start-up time with the repartitioning optimization service.
func BenchmarkFig12Repartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, text, err := eval.Fig12(benchApplets(), eval.StandardBandwidthsKBps)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			best := 0.0
			for _, p := range points {
				if p.ImprovementPct > best {
					best = p.ImprovementPct
				}
			}
			b.ReportMetric(best, "best-improvement-pct")
		}
	}
}

// BenchmarkAblationRPCVerification quantifies the §2 strawman: moving
// verification "intact" behind per-check RPCs instead of factoring it.
func BenchmarkAblationRPCVerification(b *testing.B) {
	spec := benchSpecs()[0]
	for i := 0; i < b.N; i++ {
		res, text, err := eval.AblationRPC(spec, 2*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			b.ReportMetric(res.Slowdown, "naive-slowdown-x")
		}
	}
}

// BenchmarkAblationEagerLink contrasts lazy per-method link checks with
// eager whole-class checking (§3.1's lazy scheme).
func BenchmarkAblationEagerLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, text, err := eval.AblationEager()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			b.ReportMetric(float64(res.EagerClassesLoaded-res.LazyClassesLoaded), "classes-saved")
		}
	}
}

// BenchmarkAblationSecurityCache contrasts the enforcement manager's
// client-side cache with per-check remote decisions.
func BenchmarkAblationSecurityCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, text, err := eval.AblationSecurityCache(2000, 200*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			b.ReportMetric(res.Slowdown, "remote-slowdown-x")
		}
	}
}

// BenchmarkAblationReplication shows the §2 remedy for the Figure 10
// collapse: replicated proxies restore throughput once one server's
// memory saturates.
func BenchmarkAblationReplication(b *testing.B) {
	clients := 300
	reps := []int{1, 2}
	cfg := eval.DefaultFig10Config()
	cfg.Duration = 2 * time.Second
	if benchScale() > 1 {
		// Scaled run: fewer clients, so shrink the memory budget to keep
		// one replica saturated (the effect under measurement).
		clients = 40
		cfg.MemoryBudget = 4 << 20
	}
	for i := 0; i < b.N; i++ {
		rows, text, err := eval.AblationReplication(clients, reps, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			if len(rows) >= 2 && rows[0].ThroughputBps > 0 {
				b.ReportMetric(rows[len(rows)-1].ThroughputBps/rows[0].ThroughputBps, "replication-speedup-x")
			}
		}
	}
}

// BenchmarkAblationReflection reproduces the §4.3 anecdote: the
// reflective RTVerifier the authors abandoned vs the self-describing
// attribute path.
func BenchmarkAblationReflection(b *testing.B) {
	spec := benchSpecs()[0]
	for i := 0; i < b.N; i++ {
		res, text, err := eval.AblationReflection(spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", text)
			b.ReportMetric(res.Slowdown, "reflective-slowdown-x")
		}
	}
}
