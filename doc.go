// Package dvm is a from-scratch Go implementation of the distributed
// virtual machine architecture of Sirer, Grimm, Gregory, and Bershad,
// "Design and implementation of a distributed virtual machine for
// networked computers" (SOSP'99).
//
// The system factors virtual machine services — verification, security
// enforcement, auditing, compilation, and optimization — out of clients
// and onto network servers, splitting each service into a static
// component (run once on a proxy, implemented by binary rewriting) and a
// small dynamic component hosted by the client runtime.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for the paper-vs-measured
// comparison. The library lives under internal/; the runnable entry
// points are the commands under cmd/ and the programs under examples/.
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation.
package dvm
